"""E8: voice control vs the acoustic environment."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_e8_noise_sweep(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E8"), iterations=1, rounds=1)
    record_table(result)
    wers = result.column("word_error_rate")
    assert wers == sorted(wers)  # monotone in ambient level
    assert wers[0] < 0.2 and wers[-1] > 0.95
    social = result.column("socially_ok")
    # Quiet rooms: recognisable but socially inappropriate; loud rooms:
    # acceptable to speak but unrecognisable — the paper's double bind.
    assert social[0] < 0.5 and social[-1] > 0.5


def test_e8_conversation_distance(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E8-conversation"), iterations=1, rounds=1)
    record_table(result)
    wers = result.column("word_error_rate")
    assert wers == sorted(wers, reverse=True)  # farther chatter, better ASR
