"""E4: service discovery latency, stale sessions and hijack prevention."""

from __future__ import annotations

import math

from repro.experiments import run_experiment


def test_e4_discovery_latency(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E4-discovery", repeats=4),
        iterations=1, rounds=1)
    record_table(result)
    rows = {row["distance_m"]: row for row in result.rows}
    # Comfortably in range: milliseconds.
    assert rows[20.0]["mean_latency_s"] < 0.1
    # At the edge and beyond: failures appear.
    assert rows[230.0]["failures"] >= 1


def test_e4_stale_session_recovery(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E4-stale"), iterations=1, rounds=1)
    record_table(result)
    for lease_s in (10.0, 30.0, 60.0):
        row = result.select(policy=f"lease={lease_s:.0f}s")[0]
        assert row["wait_s"] <= lease_s + 4.0
    assert math.isinf(result.select(policy="no lease, no admin")[0]["wait_s"])


def test_e4_hijack_prevention(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E4-hijack", attempts=200),
        iterations=1, rounds=1)
    record_table(result)
    assert result.rows[0]["hijacks_succeeded"] == 0
