"""E6: faculty assumptions inside vs outside the laboratory."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_e6_population_usability(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E6", population_size=100),
        iterations=1, rounds=1)
    record_table(result)
    adapter_lab = result.select(platform="research-adapter",
                                population="lab")[0]
    adapter_public = result.select(platform="research-adapter",
                                   population="public")[0]
    soc_public = result.select(platform="commercial-soc",
                               population="public")[0]
    assert adapter_lab["usable_fraction"] > 0.9
    assert adapter_public["usable_fraction"] < 0.2
    assert soc_public["usable_fraction"] > 0.8


def test_e6_fault_recovery(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E6-recovery"), iterations=1, rounds=1)
    record_table(result)
    for fault in ("adapter", "registry"):
        rows = result.select(fault=fault)
        auto = next(r for r in rows if r["remedy"] == "diagnostics")
        unskilled = next(r for r in rows if "0.15" in r["remedy"])
        assert auto["recovered"] and auto["outage_s"] < 15.0
        assert not unskilled["recovered"]
