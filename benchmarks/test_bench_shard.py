"""Sharded multi-cell simulation: conservative parallel DES vs oracle.

The 1.2k-station disjoint cell grid runs once in a single culled
simulator and once as one forked shard per cell; outcomes and merged
telemetry must be byte-identical, and the wall-clock ratio is the
headline speedup (gated in `repro.cli bench` on >=4-cpu hosts via
``BENCH_shard.json``).  The boundary-coupled configuration checks the
multi-process coordinator against its in-process twin.
"""

from __future__ import annotations

from repro.experiments.bench import (SHARD_MIN_CPUS_FOR_GATE,
                                     SHARD_MIN_SPEEDUP, bench_shard)
from repro.experiments.harness import ExperimentResult


def test_sharded_grid_vs_oracle(benchmark, record_table):
    shard = benchmark.pedantic(bench_shard, iterations=1, rounds=1)
    result = ExperimentResult(
        "BENCH-shard",
        "sharded multi-cell grid vs single-process culled oracle",
        ["config", "stations", "mode", "wall_s", "rounds"])
    result.add_row(config="disjoint", stations=shard["stations"],
                   mode="oracle", wall_s=shard["oracle_wall_s"],
                   rounds=1)
    result.add_row(config="disjoint", stations=shard["stations"],
                   mode=f"{shard['shards']}-shard/{shard['mode']}",
                   wall_s=shard["sharded_wall_s"], rounds=shard["rounds"])
    coupled = shard["coupled"]
    result.add_row(config="coupled", stations=coupled["stations"],
                   mode="inline", wall_s=coupled["inline_wall_s"],
                   rounds=coupled["rounds"])
    result.add_row(config="coupled", stations=coupled["stations"],
                   mode="processes", wall_s=coupled["process_wall_s"],
                   rounds=coupled["rounds"])
    result.notes.append(
        f"speedup {shard['speedup']:.2f}x on {shard['cpus']} cpus "
        f"(floor {SHARD_MIN_SPEEDUP:.0f}x gated at "
        f">={SHARD_MIN_CPUS_FOR_GATE} cpus), outcomes identical: "
        f"{shard['outcomes_identical']}, telemetry identical: "
        f"{shard['telemetry_identical']}; coupled routed "
        f"{coupled['boundary_events']} boundary events over "
        f"{coupled['rounds']} rounds, multiprocess == inline: "
        f"{coupled['outcomes_identical']}")
    record_table(result)
    # Identity is machine-independent: assert it unconditionally.
    assert shard["outcomes_identical"]
    assert shard["telemetry_identical"]
    assert coupled["outcomes_identical"]
    # The speedup floor only means something with real cores to fan
    # out over (same gate as `repro.cli bench`).
    if (shard["cpus"] >= SHARD_MIN_CPUS_FOR_GATE
            and shard["mode"] == "processes"):
        assert shard["speedup"] >= SHARD_MIN_SPEEDUP
