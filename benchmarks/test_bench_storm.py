"""Kernel batched-execution storm: batched vs legacy timer throughput.

The homogeneous-timer storm (100 k slot-quantised MAC backoffs + 10 k
self-rescheduling lease-renewal chains) is the regime the batched event
engine targets; `repro.cli bench` gates it via `BENCH_storm.json`, and
this table-regenerating bench records the same figures in
``results.txt`` alongside the paper tables.
"""

from __future__ import annotations

from repro.experiments.bench import STORM_MIN_SPEEDUP, bench_storm
from repro.experiments.harness import ExperimentResult


def test_batched_storm_vs_legacy(benchmark, record_table):
    storm = benchmark.pedantic(lambda: bench_storm(repeats=2),
                               iterations=1, rounds=1)
    result = ExperimentResult(
        "BENCH-storm",
        "batched vs legacy kernel on the homogeneous-timer storm",
        ["mode", "events", "wall_s", "events_per_sec"])
    result.add_row(mode="batched", events=storm["events"],
                   wall_s=storm["batched_wall_s"],
                   events_per_sec=storm["batched_events_per_sec"])
    result.add_row(mode="legacy", events=storm["events"],
                   wall_s=storm["legacy_wall_s"],
                   events_per_sec=storm["legacy_events_per_sec"])
    result.notes.append(
        f"speedup {storm['speedup']:.1f}x "
        f"(floor {STORM_MIN_SPEEDUP:.0f}x), outcomes identical: "
        f"{storm['outcomes_identical']} — {storm['backoffs']} backoffs + "
        f"{storm['renewals']} renewal chains over {storm['horizon_s']:.0f}s")
    record_table(result)
    assert storm["outcomes_identical"]
    assert storm["speedup"] >= STORM_MIN_SPEEDUP
