"""E3: ranging — range tables, distance sweeps and mobility."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_e3_range_table(benchmark, record_table):
    result = benchmark.pedantic(lambda: run_experiment("E3-range-table"),
                                iterations=1, rounds=1)
    record_table(result)
    ranges = result.column("range_m")
    assert ranges == sorted(ranges, reverse=True)
    assert ranges[0] > 150.0  # 1 Mb/s DSSS reaches well past 150 m indoors


def test_e3_distance_sweep(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E3", duration=8.0), iterations=1, rounds=1)
    record_table(result)
    adaptive = {row["distance_m"]: row for row in result.select(mode="adaptive")}
    pinned = {row["distance_m"]: row for row in result.select(mode="11Mbps")}
    # Graceful degradation vs cliff.
    assert adaptive[120]["goodput_kbps"] > 5 * pinned[120]["goodput_kbps"]
    assert pinned[40]["delivery_ratio"] > 0.9


def test_e3_mobility(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E3-mobility"), iterations=1, rounds=1)
    record_table(result)
    adaptive = result.select(mode="adaptive")[0]
    pinned = result.select(mode="11Mbps")[0]
    # Rate adaptation rides out the walk; the pinned rate suffers outages.
    assert adaptive["delivery_ratio"] > 0.95
    assert pinned["delivery_ratio"] < adaptive["delivery_ratio"]
