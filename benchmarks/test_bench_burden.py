"""E5: conceptual burden vs task completion."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_e5_burden_sweep(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E5", users_per_cell=40),
        iterations=1, rounds=1)
    record_table(result)
    for population in ("lab", "casual"):
        rows = {row["burden"]: row
                for row in result.select(population=population)}
        assert rows[2]["completed"] > 0.9
        assert rows[12]["completed"] < 0.2
    # Casual users collapse earlier (at burden 8).
    assert result.select(population="lab", burden=8)[0]["completed"] > \
        result.select(population="casual", burden=8)[0]["completed"]


def test_e5_prototype_vs_product(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E5-prototype", users_per_cell=60),
        iterations=1, rounds=1)
    record_table(result)
    assert result.select(variant="commercial-product")[0]["completed"] > 0.9
    assert result.select(variant="research-prototype")[0]["completed"] < 0.4
