"""E1: VNC projection vs wireless bandwidth (the paper's physical-layer
finding that low-bandwidth adapters prevent rapid animation)."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_e1_bandwidth_sweep(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E1", duration=40.0), iterations=1, rounds=1)
    record_table(result)
    # Shape assertions: slides survive everywhere...
    for row in result.select(content="slides"):
        assert row["delivery_ratio"] >= 0.8
    # ...while animation needs bandwidth.
    animation = {row["rate"]: row for row in result.select(content="animation")}
    assert animation["11Mbps"]["displayed_fps"] > \
        4 * animation["2Mbps"]["displayed_fps"]
    assert animation["1Mbps"]["displayed_fps"] < 1.0


def test_e1_encoding_ablation(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E1-ablation", duration=30.0),
        iterations=1, rounds=1)
    record_table(result)
    dirty = result.select(encoding="dirty-rect")[0]
    full = result.select(encoding="full-frame")[0]
    assert full["bytes_per_update"] > 2 * dirty["bytes_per_update"]
