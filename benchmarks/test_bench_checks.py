"""Static pass cold vs warm: the incremental cache must keep paying.

``bench_checks`` runs the full-tree ``repro.cli check`` once cold (every
file parsed, the fork pool fanned out) and repeatedly warm (all source
digests match, zero files re-parsed, only the cheap cross-file layer and
flow passes execute).  Findings must be byte-identical between the two,
an unchanged tree must re-parse nothing, and the warm path must clear
the machine-independent speedup floor (gated in ``repro.cli bench`` via
``BENCH_checks.json`` against ``baseline_checks.json``).
"""

from __future__ import annotations

from repro.checks.bench import (CHECKS_MIN_WARM_SPEEDUP, bench_checks,
                                check_checks_regression)
from repro.experiments.harness import ExperimentResult


def test_checks_cold_vs_warm(benchmark, record_table):
    checks = benchmark.pedantic(bench_checks, iterations=1, rounds=1)
    result = ExperimentResult(
        "BENCH-checks",
        "static pass: cold full parse vs warm incremental re-run",
        ["mode", "files", "jobs", "wall_s", "reparsed"])
    result.add_row(mode="cold", files=checks["files"], jobs=checks["jobs"],
                   wall_s=checks["cold_wall_s"], reparsed=checks["files"])
    result.add_row(mode="warm", files=checks["files"], jobs=checks["jobs"],
                   wall_s=checks["warm_wall_s"],
                   reparsed=checks["warm_analyzed"])
    result.notes.append(
        f"warm speedup {checks['warm_speedup']:.1f}x "
        f"(floor {CHECKS_MIN_WARM_SPEEDUP:.0f}x), findings identical: "
        f"{checks['findings_identical']}")
    record_table(result)
    # The full gate (identity + zero re-parses + speedup floor) is
    # machine-independent apart from the baseline fraction, which only
    # applies when a like-sourced baseline is passed; here it is not.
    assert check_checks_regression(checks, None) == []
