"""E2: effect of a high concentration of 2.4 GHz devices."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_e2_density_sweep(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E2", densities=(0, 2, 4, 8, 16, 32),
                               duration=12.0),
        iterations=1, rounds=1)
    record_table(result)
    cochannel = {row["interferer_pairs"]: row
                 for row in result.select(channel_plan="cochannel")}
    spread = {row["interferer_pairs"]: row
              for row in result.select(channel_plan="spread")}
    # Goodput collapses with co-channel density...
    assert cochannel[32]["goodput_kbps"] < 0.7 * cochannel[0]["goodput_kbps"]
    # ...contention overhead rises monotonically in the sweep's tail...
    assert cochannel[32]["backoffs_per_frame"] > \
        cochannel[4]["backoffs_per_frame"]
    # ...and the 1/6/11 plan recovers most of the loss.
    assert spread[32]["goodput_kbps"] > cochannel[32]["goodput_kbps"]
