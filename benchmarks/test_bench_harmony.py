"""E7: intentional-layer harmony and adoption."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_e7_harmony_matrix(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E7", population_size=100),
        iterations=1, rounds=1)
    record_table(result)
    cell = lambda p, pop: result.select(purpose=p, population=pop)[0]
    # The paper's diagonal: each design serves its intended users.
    assert cell("research-prototype", "researchers")["in_harmony_fraction"] > 0.9
    assert cell("commercial-product",
                "casual-presenters")["in_harmony_fraction"] > 0.9
    # And the paper's admission about its own prototype.
    assert cell("research-prototype",
                "casual-presenters")["in_harmony_fraction"] < 0.1
    # Adoption tracks harmony.
    assert cell("commercial-product", "casual-presenters")["mean_adoption"] > \
        cell("research-prototype", "casual-presenters")["mean_adoption"]
