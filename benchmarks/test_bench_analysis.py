"""E9: regenerating the paper's Smart Projector analysis from observation,
plus the user-column ablation."""

from __future__ import annotations

from repro.experiments import run_experiment


def test_e9_coverage_and_ablation(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E9"), iterations=1, rounds=1)
    record_table(result)
    full = result.rows[0]
    ablated = result.rows[1]
    assert full["coverage"] >= 0.85
    # The paper's core argument quantified: removing the user column loses
    # roughly half of the inventory.
    assert ablated["coverage"] <= full["coverage"] - 0.3


def test_e9_layer_report(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E9-report"), iterations=1, rounds=1)
    record_table(result)
    by_layer = {row["layer"]: row["concerns"] for row in result.rows}
    # Every layer surfaced at least one concern in the scripted week.
    assert all(count >= 1 for count in by_layer.values())
    # The abstract layer is the busiest, as in the paper's analysis.
    assert by_layer["Abstract"] >= max(
        v for k, v in by_layer.items() if k != "Abstract") - 3
