"""F1–F5: regenerate the paper's five conceptual-model figures."""

from __future__ import annotations

from repro.core.figures import figure1, figure2, figure3, figure4, figure5
from repro.core.layers import Layer, RELATIONS
from repro.experiments import run_experiment


def test_figure1(benchmark, record_table):
    text = benchmark(figure1)
    print("\n" + text)
    assert "Design Purpose" in text and "User Goals" in text
    assert "Environment" in text
    assert "temporal specificity" in text


def test_figure2(benchmark):
    text = benchmark(figure2)
    print("\n" + text)
    assert RELATIONS[Layer.PHYSICAL] in text


def test_figure3(benchmark):
    text = benchmark(figure3)
    print("\n" + text)
    for box in ("Mem", "Sto", "Exe", "UI", "Net"):
        assert box in text


def test_figure4(benchmark):
    text = benchmark(figure4)
    print("\n" + text)
    assert RELATIONS[Layer.ABSTRACT] in text


def test_figure5(benchmark):
    text = benchmark(figure5)
    print("\n" + text)
    assert RELATIONS[Layer.INTENTIONAL] in text


def test_all_figures_summary(benchmark, record_table):
    result = benchmark.pedantic(lambda: run_experiment("F1-F5"),
                                iterations=1, rounds=1)
    record_table(result)
    assert all(row["mentions_relation"] for row in result.rows)
