"""Telemetry export and streaming aggregation: JSONL vs columnar vs live.

The columnar exporter exists for million-event runs; this
table-regenerating bench runs the same synthetic workload through both
writers at a CI-friendly scale and records bytes-on-disk, writer-only
wall time, and the streaming-aggregation memory bound alongside the
paper tables in ``results.txt``.  ``repro.cli bench`` gates the full
1M-event figures via ``BENCH_telemetry.json``.
"""

from __future__ import annotations

from repro.experiments.bench import (
    TELEMETRY_MAX_MEMORY_RATIO,
    TELEMETRY_MIN_SIZE_RATIO,
    TELEMETRY_MIN_WRITE_SPEEDUP,
    bench_telemetry,
    check_telemetry_regression,
)
from repro.experiments.harness import ExperimentResult

#: CI-friendly event count — gates are ratios, so they hold at any scale.
BENCH_EVENTS = 200_000


def test_telemetry_columnar_vs_jsonl(benchmark, record_table):
    telemetry = benchmark.pedantic(
        lambda: bench_telemetry(events=BENCH_EVENTS),
        iterations=1, rounds=1)
    result = ExperimentResult(
        "BENCH-telemetry",
        "telemetry export formats and streaming aggregation",
        ["path", "events", "wall_s", "bytes"])
    result.add_row(path="jsonl", events=telemetry["events"],
                   wall_s=telemetry["jsonl_wall_s"],
                   bytes=telemetry["jsonl_bytes"])
    result.add_row(path="columnar", events=telemetry["events"],
                   wall_s=telemetry["columnar_wall_s"],
                   bytes=telemetry["columnar_bytes"])
    result.notes.append(
        f"columnar {telemetry['size_ratio']:.1f}x smaller "
        f"(floor {TELEMETRY_MIN_SIZE_RATIO:.0f}x), "
        f"{telemetry['write_speedup']:.1f}x faster "
        f"(floor {TELEMETRY_MIN_WRITE_SPEEDUP:.0f}x); streaming peak "
        f"{telemetry['stream_memory_ratio']:.2%} of replay "
        f"(ceiling {TELEMETRY_MAX_MEMORY_RATIO:.0%}), summaries "
        f"identical: {telemetry['summary_identical']}")
    record_table(result)
    assert telemetry["summary_identical"]
    assert telemetry["stream_stored_records"] == 0
    assert check_telemetry_regression(telemetry, None) == []
