"""Shared benchmark plumbing.

Each benchmark regenerates one paper table/figure via the experiment
harness.  Tables are printed *and* appended to ``benchmarks/results.txt``
so the regenerated evaluation survives pytest's output capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_PATH = pathlib.Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session")
def _fresh_results_file():
    # Not autouse: truncation only happens when some test actually records
    # a table, so kernel-only microbenchmark runs (``make bench``) leave
    # the committed table dump alone.
    RESULTS_PATH.write_text("Regenerated tables and figures "
                            "(one section per benchmark)\n\n")
    yield


@pytest.fixture
def record_table(_fresh_results_file):
    """Print an ExperimentResult and persist it to results.txt."""

    def _record(result) -> None:
        text = result.format_table() if hasattr(result, "format_table") \
            else str(result)
        print("\n" + text)
        with RESULTS_PATH.open("a") as handle:
            handle.write(text + "\n\n")

    return _record
