"""Extension benches: training curve, mobile-code cost, energy budget.

These go beyond the paper's explicit analysis to its stated premises —
trainable faculties, mobile code as a research area, and the
battery-powered $10 SOC — as DESIGN.md's ablation list calls out.
"""

from __future__ import annotations

from repro.experiments import run_experiment


def test_e5_training_curve(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E5-training"), iterations=1, rounds=1)
    record_table(result)
    completed = result.column("completed")
    assert sum(completed[-3:]) / 3 > completed[0]


def test_e4_proxy_mobile_code(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E4-proxy"), iterations=1, rounds=1)
    record_table(result)
    slow = result.select(rate="1Mbps", proxy_kb=64.0)[0]
    fast = result.select(rate="11Mbps", proxy_kb=64.0)[0]
    assert slow["bind_time_s"] > 5 * fast["bind_time_s"]


def test_e10_energy_budget(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E10-energy"), iterations=1, rounds=1)
    record_table(result)
    always_on = result.select(rx_duty=1.0, beacon_period_s=60.0)[0]
    sleepy = result.select(rx_duty=0.05, beacon_period_s=60.0)[0]
    assert sleepy["battery_life_h"] > 5 * always_on["battery_life_h"]


def test_e4_orders_deadlock(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E4-orders"), iterations=1, rounds=1)
    record_table(result)
    assert result.select(strategy="atomic")[0]["deadlocks"] == 0
    assert result.select(strategy="split")[0]["deadlocks"] > 0


def test_e8_auth_biometrics(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E8-auth"), iterations=1, rounds=1)
    record_table(result)
    frrs = result.column("frr")
    assert frrs == sorted(frrs)
    assert all(row["far"] <= 0.05 for row in result.rows)


def test_e2_scale_lookup_population(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E2-scale"), iterations=1, rounds=1)
    record_table(result)
    broad = {row["services"]: row for row in result.select(query="broad")}
    assert broad[64]["latency_s"] > 5 * broad[4]["latency_s"]


def test_e6_accessibility(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E6-accessibility"), iterations=1, rounds=1)
    record_table(result)
    pda_older = result.select(form_factor="pda", age_group="older")[0]
    panel_older = result.select(form_factor="touch-panel",
                                age_group="older")[0]
    assert panel_older["compatible_fraction"] > pda_older["compatible_fraction"]


def test_e2_autochannel_selfconfig(benchmark, record_table):
    result = benchmark.pedantic(
        lambda: run_experiment("E2-autochannel"), iterations=1, rounds=1)
    record_table(result)
    assert result.rows[1]["goodput_kbps"] > 1.5 * result.rows[0]["goodput_kbps"]
