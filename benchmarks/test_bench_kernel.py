"""E10: simulator scalability — event throughput vs deployment size.

The paper says the effect of high device concentrations "needs to be
studied"; studying it at scale needs a kernel that stays fast as the
device count grows.  These are true microbenchmarks (pytest-benchmark
statistics matter here, unlike the table-regeneration benches).
"""

from __future__ import annotations

import pytest

from repro.experiments.bench import (_timer_chain_records,
                                     _timer_chain_spans, calibration_spin)
from repro.experiments.workloads import interferer_field, projector_room
from repro.kernel.scheduler import Simulator


def test_machine_calibration(benchmark):
    """Fixed pure-Python workload — the machine-speed reference the
    regression gate uses to tell load swings from kernel regressions."""
    total = benchmark(calibration_spin)
    assert total > 0


def test_kernel_event_throughput(benchmark):
    """Throughput of the kernel hot path (``schedule_bound`` + free-list
    pool) — the loop the MAC/radio layers actually drive."""

    def run_events():
        sim = Simulator(seed=1, trace=False)
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 20_000:
                sim.schedule_bound(0.001, tick)

        sim.schedule_bound(0.0, tick)
        sim.run()
        return counter[0]

    events = benchmark(run_events)
    assert events == 20_000


def test_kernel_public_schedule_throughput(benchmark):
    """Throughput of the validated public ``schedule`` path."""

    def run_events():
        sim = Simulator(seed=1, trace=False)
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return counter[0]

    events = benchmark(run_events)
    assert events == 20_000


def test_trace_records_throughput(benchmark):
    """The bound timer chain emitting one trace record per event — the
    enabled-tracing price the BENCH_trace.json overhead ratios gate."""
    events = benchmark(_timer_chain_records)
    assert events == 20_000


def test_trace_spans_throughput(benchmark):
    """The bound timer chain opening/closing one causal span per event."""
    events = benchmark(_timer_chain_spans)
    assert events == 20_000


def test_kernel_cancellation_storm(benchmark):
    """Mass-cancelled periodic tasks must not degrade the event loop —
    exercises the cancellation counter + heap compaction."""

    def run_storm():
        sim = Simulator(seed=1, trace=False)
        tasks = [sim.every(1.0, lambda: None) for _ in range(5_000)]
        for task in tasks:
            task.cancel()
        survivors = [0]
        sim.every(1.0, lambda: survivors.__setitem__(0, survivors[0] + 1))
        sim.run(until=50.0)
        return survivors[0]

    fires = benchmark(run_storm)
    assert fires == 50


@pytest.mark.parametrize("pairs", [4, 16, 32])
def test_medium_scales_with_device_count(benchmark, pairs):
    def run_dense():
        room = projector_room(seed=2, trace=False, register=False)
        interferer_field(room, pairs, frames_per_second=20.0)
        room.sim.run(until=3.0)
        return room.sim.events_executed

    events = benchmark.pedantic(run_dense, iterations=1, rounds=3)
    assert events > 0


def test_full_room_startup(benchmark):
    """Time to assemble and settle the complete Smart Projector room."""

    def build():
        room = projector_room(seed=3, trace=False)
        room.sim.run(until=2.0)
        return len(room.registry.items())

    items = benchmark(build)
    assert items == 2
