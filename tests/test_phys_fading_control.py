"""Tests for fast fading and the extended projector control service."""

from __future__ import annotations

import pytest

from repro.env.radio import RATE_BY_NAME
from repro.env.world import World
from repro.kernel.scheduler import Simulator
from repro.net.frames import Frame
from repro.phys.mac import CsmaMac, WirelessMedium


def _link(sim, fading: bool, distance: float = 60.0, rate="11Mbps"):
    world = World(500, 50)
    medium = WirelessMedium(sim, world, fast_fading=fading)
    medium.propagation.shadowing_sigma_db = 0.0
    world.place("a", (0, 25))
    world.place("b", (distance, 25))
    a = CsmaMac(sim, medium, "a", fixed_rate=RATE_BY_NAME[rate],
                retry_limit=0, queue_limit=128)
    CsmaMac(sim, medium, "b")
    return medium, a


def test_fading_disabled_marginal_link_is_stable():
    sim = Simulator(seed=9, trace=False)
    medium, a = _link(sim, fading=False, distance=60.0)
    for _ in range(100):
        a.send(Frame("a", "b", None, 1000))
    sim.run(until=30.0)
    # 60 m at 11 Mb/s without fading: comfortably above threshold.
    assert a.stats["tx_success"] == 100


def test_fading_introduces_losses_on_same_link():
    sim = Simulator(seed=9, trace=False)
    medium, a = _link(sim, fading=True, distance=60.0)
    for _ in range(100):
        a.send(Frame("a", "b", None, 1000))
    sim.run(until=30.0)
    # Deep Rayleigh fades kill a nontrivial fraction of frames.
    assert a.stats["tx_success"] < 100
    assert medium.total_decode_failures > 0


def test_fading_rarely_hurts_strong_links():
    sim = Simulator(seed=9, trace=False)
    medium, a = _link(sim, fading=True, distance=5.0, rate="1Mbps")
    for _ in range(100):
        a.send(Frame("a", "b", None, 500))
    sim.run(until=30.0)
    assert a.stats["tx_success"] >= 97  # huge margin absorbs the fades


# ---------------------------------------------------------------------------
# Extended control service
# ---------------------------------------------------------------------------

@pytest.fixture
def controlled_room():
    from repro.experiments.workloads import presentation_workflow, projector_room

    room = projector_room(seed=91)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    return room


def _call_control(room, method, args, token=None):
    from repro.phys.devices import Device
    from repro.services.base import RpcClient

    caller = Device(room.sim, room.world,
                    f"caller-{room.sim.events_executed}", (18, 13),
                    medium=room.medium)
    rpc = RpcClient(room.sim, caller, room.smart.control_item().proxy)
    results = []
    rpc.call(method, args, results.append, token=token)
    room.sim.run(until=room.sim.now + 5.0)
    return results[0]


def test_brightness_requires_token(controlled_room):
    room = controlled_room
    result = _call_control(room, "brightness", {"level": 0.5},
                           token="tok-bogus")
    assert result.ok is False
    result = _call_control(room, "brightness", {"level": 0.5},
                           token=room.client.control_token)
    assert result.ok and result.value == 0.5
    assert room.projector.brightness == 0.5


def test_brightness_clamped(controlled_room):
    room = controlled_room
    result = _call_control(room, "brightness", {"level": 5.0},
                           token=room.client.control_token)
    assert result.value == 1.0


def test_select_input_switches_away_and_blanks_projection(controlled_room):
    room = controlled_room
    before = room.projector.frames_displayed
    result = _call_control(room, "select_input", {"source": "vga-1"},
                           token=room.client.control_token)
    assert result.ok
    # Pixels from the adapter no longer reach the wall.
    assert not room.adapter.drive_display(500)
    assert room.projector.frames_displayed == before


def test_select_input_requires_source(controlled_room):
    room = controlled_room
    result = _call_control(room, "select_input", {"source": ""},
                           token=room.client.control_token)
    assert result.ok is False


def test_status_reports_brightness_and_input(controlled_room):
    room = controlled_room
    result = _call_control(room, "status", {})
    assert result.ok
    assert "brightness" in result.value
    assert result.value["input"] == "video-in"
