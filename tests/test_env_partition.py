"""Partitioning a world into audibility-closed cells and shard packings.

Everything here must be a pure, order-stable function of the placement:
the sharded simulator relies on `stations_of_shard` producing the same
station lists in every process that computes them.
"""

from __future__ import annotations

import pytest

from repro.env.partition import assign_cells, partition_world
from repro.env.world import World
from repro.kernel.errors import ConfigurationError


def clustered_world() -> World:
    """Three clusters far apart: {a0,a1,a2}, {b0,b1}, {c0}."""
    world = World(10_000.0, 100.0)
    for name, pos in [("a0", (0.0, 0.0)), ("a1", (30.0, 0.0)),
                      ("a2", (60.0, 0.0)),
                      ("b0", (5000.0, 0.0)), ("b1", (5040.0, 0.0)),
                      ("c0", (9000.0, 0.0))]:
        world.place(name, pos)
    return world


def test_components_follow_transitive_audibility():
    # a0-a1 and a1-a2 are within 50 m but a0-a2 is not: the closure
    # still puts all three in one cell.
    plan = partition_world(clustered_world(), 50.0)
    assert plan.cells == (("a0", "a1", "a2"), ("b0", "b1"), ("c0",))


def test_radius_changes_the_decomposition():
    # At 20 m nothing is mutually audible: six singleton cells.
    plan = partition_world(clustered_world(), 20.0)
    assert all(len(cell) == 1 for cell in plan.cells)
    assert len(plan.cells) == 6
    # At 10 km everything coalesces.
    plan = partition_world(clustered_world(), 10_000.0)
    assert len(plan.cells) == 1


def test_lpt_packing_balances_and_is_deterministic():
    plan = partition_world(clustered_world(), 50.0, shards=2)
    # LPT: the 3-cell goes to shard 0, the 2-cell and the singleton
    # pack onto shard 1.
    assert plan.shards == ((0,), (1, 2))
    assert plan.stations_of_shard(0) == ["a0", "a1", "a2"]
    assert plan.stations_of_shard(1) == ["b0", "b1", "c0"]
    again = partition_world(clustered_world(), 50.0, shards=2)
    assert again == plan


def test_cell_and_shard_maps_are_consistent():
    plan = partition_world(clustered_world(), 50.0, shards=2)
    assert plan.cell_of["a2"] == 0
    assert plan.cell_of["c0"] == 2
    assert plan.shard_of == {0: 0, 1: 1, 2: 1}
    summary = plan.summary()
    assert summary["cells"] == 3
    assert summary["shard_loads"] == [3, 3]
    assert summary["imbalance"] == 1.0


def test_more_shards_than_cells_leaves_empty_shards():
    plan = partition_world(clustered_world(), 10_000.0, shards=3)
    assert plan.shards == ((0,), (), ())
    assert plan.stations_of_shard(1) == []


def test_assign_cells_packs_precomputed_sizes():
    packed = assign_cells([["x"] * 5, ["y"] * 3, ["z"] * 3], 2)
    assert packed == ((0,), (1, 2))


@pytest.mark.parametrize("kwargs", [
    {"radius_m": 0.0}, {"radius_m": -1.0}, {"shards": 0},
])
def test_partition_rejects_bad_configuration(kwargs):
    args = {"radius_m": 50.0, "shards": 1}
    args.update(kwargs)
    with pytest.raises(ConfigurationError):
        partition_world(clustered_world(), args["radius_m"],
                        shards=args["shards"])


def test_partition_rejects_empty_world():
    with pytest.raises(ConfigurationError):
        partition_world(World(10.0, 10.0), 50.0)
