"""Tests for the topology-epoch-keyed link cache."""

from __future__ import annotations

import pytest

from repro.env.linkcache import LinkCache
from repro.env.radio import PropagationModel
from repro.env.world import World


@pytest.fixture
def world():
    w = World(100.0, 60.0)
    w.place("a", (10.0, 10.0))
    w.place("b", (40.0, 30.0))
    w.place("c", (70.0, 50.0))
    return w


@pytest.fixture
def cache(world):
    return LinkCache(world, PropagationModel())


def test_cached_power_bit_identical_to_uncached(world, cache):
    prop = cache.propagation
    expected = prop.received_power_dbm(
        15.0, world.distance_between("a", "b"), "a", "b")
    assert cache.rx_power_dbm(15.0, "a", "b") == expected
    # Second lookup serves from cache and must not drift.
    assert cache.rx_power_dbm(15.0, "a", "b") == expected


def test_hit_miss_counting(cache):
    cache.rx_power_dbm(15.0, "a", "b")
    cache.rx_power_dbm(15.0, "a", "b")
    cache.rx_power_dbm(15.0, "b", "a")   # unordered key: same link
    cache.rx_power_dbm(15.0, "a", "c")
    assert cache.misses == 2
    assert cache.hits == 2
    assert cache.hit_rate == pytest.approx(0.5)


def test_epoch_bump_on_move_invalidates(world, cache):
    before = cache.rx_power_dbm(15.0, "a", "b")
    world.move("a", (90.0, 55.0))
    after = cache.rx_power_dbm(15.0, "a", "b")
    assert cache.invalidations == 1
    assert after != before
    assert after == cache.propagation.received_power_dbm(
        15.0, world.distance_between("a", "b"), "a", "b")


def test_epoch_bump_on_place_invalidates(world, cache):
    cache.rx_power_dbm(15.0, "a", "b")
    world.place("d", (5.0, 5.0))
    cache.rx_power_dbm(15.0, "a", "b")
    assert cache.invalidations == 1


def test_stats_snapshot(cache):
    cache.attenuation_db("a", "b")
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 0
    assert stats["invalidations"] == 0
    assert stats["cached_links"] == 1


def test_world_epoch_counter(world):
    epoch = world.epoch
    world.move("a", (1.0, 1.0))
    assert world.epoch == epoch + 1
    world.place("z", (2.0, 2.0))
    assert world.epoch == epoch + 2
