"""Tests for user agents, procedures and population sampling."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError
from repro.resource.faculties import FacultyProfile, casual_user, researcher
from repro.user.behavior import AttemptResult, Procedure, Step, UserAgent
from repro.user.physiology import sample_bodies, sample_physical_profile
from repro.user.population import (
    casual_population,
    lab_population,
    public_population,
)


def _procedure(steps=4, optional=()):
    return Procedure("p", [Step(f"s{i}", lambda: None, think_time=0.5,
                                optional_feeling=(f"s{i}" in optional))
                           for i in range(steps)])


def test_empty_procedure_rejected():
    with pytest.raises(ConfigurationError):
        Procedure("empty", [])


def test_burden_is_step_count():
    assert _procedure(steps=6).burden == 6


def test_researcher_completes_short_procedure(sim):
    agent = UserAgent(sim, "r", researcher())
    results = []
    agent.attempt(_procedure(steps=3), results.append)
    sim.run(until=600.0)
    assert results[0].completed
    assert not results[0].abandoned
    assert results[0].elapsed > 0


def test_actions_actually_execute(sim):
    hits = []
    procedure = Procedure("p", [Step("only", lambda: hits.append(1),
                                     think_time=0.1)])
    UserAgent(sim, "r", researcher()).attempt(procedure)
    sim.run(until=60.0)
    assert hits == [1]


def test_impossible_burden_abandoned(sim):
    """A 14-step procedure exceeds any casual user's capacity."""
    agent = UserAgent(sim, "c", casual_user(), intuitiveness=0.1,
                      consistent_metaphors=False)
    results = []
    agent.attempt(_procedure(steps=14), results.append)
    sim.run(until=3600.0)
    assert results[0].abandoned
    assert not results[0].completed
    assert any(r.category == "issue.intentional"
               for r in sim.tracer.issues())


def test_optional_steps_skipped_silently(sim):
    """Across several weak users, optional-feeling steps get skipped
    rather than fumbled."""
    skipped_total = 0
    for i in range(10):
        agent = UserAgent(sim, f"c{i}",
                          FacultyProfile(f"c{i}", gui_literacy=0.4,
                                         domain_knowledge=0.2,
                                         frustration_tolerance=1.0,
                                         learning_rate=0.3),
                          intuitiveness=0.2)
        agent.attempt(_procedure(steps=8, optional=("s3", "s7")))
    sim.run(until=3600.0)
    for record in sim.tracer.issues():
        if "skipped step" in record.message:
            skipped_total += 1
    assert skipped_total >= 1


def test_completion_rate_accessor(sim):
    agent = UserAgent(sim, "r", researcher())
    agent.attempt(_procedure(steps=2))
    agent.attempt(_procedure(steps=2))
    sim.run(until=600.0)
    assert agent.completion_rate == 1.0
    assert len(agent.results) == 2


def test_verify_step_triggers_recovery(sim):
    state = {"ok": False}

    def flaky_action():
        state["ok"] = True

    procedure = Procedure("p", [
        Step("do", flaky_action, think_time=0.1,
             verify=lambda: state["ok"])])
    agent = UserAgent(sim, "r", researcher())
    results = []
    agent.attempt(procedure, results.append)
    sim.run(until=600.0)
    assert results[0].completed


def test_mental_model_tracks_done_steps(sim):
    agent = UserAgent(sim, "r", researcher())
    agent.attempt(_procedure(steps=2))
    sim.run(until=600.0)
    assert agent.mental.belief("did.s0") is True
    assert agent.mental.belief("did.s1") is True


def test_agents_deterministic_per_seed():
    from repro.kernel.scheduler import Simulator

    def run_once(seed):
        sim = Simulator(seed=seed)
        agent = UserAgent(sim, "c", casual_user(), intuitiveness=0.3)
        results = []
        agent.attempt(_procedure(steps=9), results.append)
        sim.run(until=3600.0)
        r = results[0]
        return (r.completed, r.abandoned, r.fumbles, tuple(r.skipped_steps))

    assert run_once(3) == run_once(3)


# ---------------------------------------------------------------------------
# Populations / physiology
# ---------------------------------------------------------------------------

def test_population_sizes_and_names(sim):
    rng = sim.rng("pop")
    lab = lab_population(rng, 10)
    assert len(lab) == 10
    assert len({u.name for u in lab}) == 10


def test_lab_population_more_skilled_than_casual(sim):
    rng = sim.rng("pop")
    lab = lab_population(rng, 50)
    casual = casual_population(rng, 50)
    lab_skill = sum(u.technical_skill for u in lab) / 50
    casual_skill = sum(u.technical_skill for u in casual) / 50
    assert lab_skill > casual_skill + 0.3


def test_public_population_language_mix(sim):
    rng = sim.rng("pop")
    public = public_population(rng, 200, non_english_fraction=0.3)
    non_english = sum(1 for u in public if "en" not in u.languages)
    assert 30 < non_english < 90


def test_population_validation(sim):
    rng = sim.rng("pop")
    with pytest.raises(ConfigurationError):
        lab_population(rng, 0)
    with pytest.raises(ConfigurationError):
        public_population(rng, 10, non_english_fraction=2.0)


def test_sample_physical_profile_age_effects(sim):
    rng = sim.rng("bodies")
    young = [sample_physical_profile(rng, f"y{i}", "young") for i in range(40)]
    older = [sample_physical_profile(rng, f"o{i}", "older") for i in range(40)]
    mean_acuity = lambda group: sum(p.vision_acuity for p in group) / len(group)
    assert mean_acuity(young) > mean_acuity(older)
    mean_hearing = lambda group: sum(p.hearing_threshold_db
                                     for p in group) / len(group)
    assert mean_hearing(older) > mean_hearing(young)


def test_sample_bodies_bulk(sim):
    bodies = sample_bodies(sim.rng("b"), 5, prefix="visitor")
    assert [b.name for b in bodies] == [f"visitor-{i}" for i in range(1, 6)]
    with pytest.raises(ConfigurationError):
        sample_bodies(sim.rng("b"), 0)


def test_bad_age_group_rejected(sim):
    with pytest.raises(ConfigurationError):
        sample_physical_profile(sim.rng("b"), "x", "immortal")
