"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.env.world import World
from repro.kernel.scheduler import Simulator
from repro.phys.mac import WirelessMedium


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def world() -> World:
    return World(100.0, 60.0)


@pytest.fixture
def medium(sim: Simulator, world: World) -> WirelessMedium:
    return WirelessMedium(sim, world)
