"""Fixtures for the LPC2xx import-graph layer checker."""

from __future__ import annotations

import ast
import pathlib

import pytest

from repro.checks import (LAYER_MAP, check_layers, extract_imports,
                          import_graph, run_checks)


def module(rel: str, source: str):
    """Parse ``source`` as the module at ``repro/<rel>``."""
    parts = tuple(rel.split("/"))
    return extract_imports(f"src/repro/{rel}", parts, ast.parse(source))


def codes(modules) -> list:
    return [f.code for f in check_layers(modules)]


# ---------------------------------------------------------------------------
# LPC201 — upward / sideways module-scope imports
# ---------------------------------------------------------------------------
def test_kernel_importing_services_is_rejected():
    """The acceptance fixture: the lowest layer must not see the top."""
    bad = module("kernel/scheduler.py",
                 "from repro.services.base import AromaService\n")
    findings = check_layers([bad])
    assert [f.code for f in findings] == ["LPC201"]
    assert "upward" in findings[0].message
    assert findings[0].severity == "error"


@pytest.mark.parametrize("rel,source", [
    ("env/world.py", "from repro.phys.mac import WirelessMedium\n"),
    ("net/frames.py", "import repro.discovery.registry\n"),
    ("kernel/events.py", "from ..experiments import harness\n"),
    ("metrics/counters.py", "from repro import cli\n"),
])
def test_upward_imports_rejected_in_all_forms(rel, source):
    assert codes([module(rel, source)]) == ["LPC201"]


def test_sideways_import_between_sibling_layers_rejected():
    # phys and discovery share rank 3: they must stay decoupled.
    bad = module("discovery/registry.py",
                 "from repro.phys.mac import WirelessMedium\n")
    findings = check_layers([bad])
    assert [f.code for f in findings] == ["LPC201"]
    assert "sideways" in findings[0].message


@pytest.mark.parametrize("rel,source", [
    ("phys/mac.py", "from ..net.frames import Frame\n"),       # downward
    ("services/base.py", "from repro.discovery.records import "
                         "ServiceItem\n"),                     # downward
    ("env/radio.py", "from ..kernel.scheduler import Simulator\n"),
    ("kernel/scheduler.py", "from .events import Event\n"),    # same pkg
    ("cli.py", "from .experiments import run_experiment\n"),   # app = top
    ("experiments/harness.py", "from repro.telemetry.jsonl import "
                               "JsonlWriter\n"),
])
def test_downward_and_intra_package_imports_allowed(rel, source):
    assert codes([module(rel, source)]) == []


# ---------------------------------------------------------------------------
# LPC202 — packages missing from the layer map
# ---------------------------------------------------------------------------
def test_unmapped_source_package_rejected():
    findings = check_layers([module("widgets/shiny.py", "import json\n")])
    assert [f.code for f in findings] == ["LPC202"]


def test_unmapped_import_target_rejected():
    findings = check_layers(
        [module("core/model.py", "from repro.widgets import shiny\n")])
    assert [f.code for f in findings] == ["LPC202"]


# ---------------------------------------------------------------------------
# LPC203 — lazy upward imports are warnings, not errors
# ---------------------------------------------------------------------------
def test_function_scoped_upward_import_is_a_warning():
    lazy = module("kernel/scheduler.py",
                  "def metrics(self):\n"
                  "    from ..metrics.registry import MetricsRegistry\n"
                  "    return MetricsRegistry()\n")
    findings = check_layers([lazy])
    assert [f.code for f in findings] == ["LPC203"]
    assert findings[0].severity == "warning"


def test_type_checking_upward_import_is_a_warning():
    lazy = module("env/world.py",
                  "from typing import TYPE_CHECKING\n"
                  "if TYPE_CHECKING:\n"
                  "    from repro.phys.mac import WirelessMedium\n")
    assert codes([lazy]) == ["LPC203"]


def test_function_scoped_downward_import_is_clean():
    lazy = module("services/vnc.py",
                  "def build(sim):\n"
                  "    from ..net.stack import NetworkStack\n"
                  "    return NetworkStack(sim)\n")
    assert codes([lazy]) == []


# ---------------------------------------------------------------------------
# Map hygiene + graph extraction
# ---------------------------------------------------------------------------
def test_layer_map_covers_the_real_tree():
    """Every package under src/repro (and every root module) has a rank."""
    repro_dir = pathlib.Path(__file__).parent.parent / "src" / "repro"
    for entry in repro_dir.iterdir():
        if entry.is_dir() and (entry / "__init__.py").exists():
            assert entry.name in LAYER_MAP, f"unmapped package {entry.name}"
        elif entry.suffix == ".py":
            assert entry.stem in ("__init__", "__main__", "cli"), (
                f"root module {entry.name} needs a home in the layer map")


def test_kernel_is_the_lowest_layer_and_app_the_highest():
    assert LAYER_MAP["kernel"] == min(LAYER_MAP.values())
    assert LAYER_MAP["app"] == max(LAYER_MAP.values())


def test_import_graph_aggregates_and_sorts():
    modules = [
        module("phys/mac.py", "from ..net.frames import Frame\n"
                              "from ..env.world import World\n"),
        module("phys/nic.py", "from ..net.addresses import BROADCAST\n"),
    ]
    assert import_graph(modules) == {"phys": ["env", "net"]}


def test_run_checks_applies_layers_to_a_fixture_tree(tmp_path):
    """End-to-end: a fake repro tree with one upward import."""
    pkg = tmp_path / "repro"
    (pkg / "kernel").mkdir(parents=True)
    (pkg / "services").mkdir()
    (pkg / "kernel" / "bad.py").write_text(
        "from repro.services.base import AromaService\n")
    (pkg / "services" / "base.py").write_text(
        "from repro.kernel.scheduler import Simulator\n")
    report = run_checks([tmp_path], base=tmp_path)
    assert [f.code for f in report.findings] == ["LPC201"]
    assert report.findings[0].path == "repro/kernel/bad.py"
