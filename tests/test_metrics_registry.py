"""Tests for the per-simulator metrics registry, recorder close semantics,
and summary-statistics edge cases."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError
from repro.metrics.recorder import LatencyRecorder
from repro.metrics.registry import MetricsRegistry
from repro.metrics.stats import confidence_halfwidth, summarize


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_is_lazy_and_cached(sim):
    registry = sim.metrics
    assert isinstance(registry, MetricsRegistry)
    assert sim.metrics is registry


def test_counter_get_or_create(sim):
    a = sim.metrics.counter("mac.drops")
    b = sim.metrics.counter("mac.drops")
    assert a is b
    a.add(3)
    assert sim.metrics.snapshot()["counters"]["mac.drops"] == 3


def test_unique_instruments_auto_suffix(sim):
    a = sim.metrics.counter("medium.tx", unique=True)
    b = sim.metrics.counter("medium.tx", unique=True)
    assert a is not b
    assert a.name == "medium.tx"
    assert b.name == "medium.tx#2"
    c = sim.metrics.counter("medium.tx", unique=True)
    assert c.name == "medium.tx#3"


def test_cross_kind_name_collision_rejected(sim):
    sim.metrics.counter("session.wait")
    with pytest.raises(ConfigurationError):
        sim.metrics.gauge("session.wait")
    with pytest.raises(ConfigurationError):
        sim.metrics.latency("session.wait")


def test_probe_contributes_to_snapshot_and_unregisters(sim):
    depth = [4]
    unregister = sim.metrics.register_probe("queue.q1",
                                            lambda: {"depth": depth[0]})
    assert sim.metrics.snapshot()["probes"]["queue.q1"] == {"depth": 4}
    depth[0] = 9
    assert sim.metrics.snapshot()["probes"]["queue.q1"] == {"depth": 9}
    unregister()
    assert "queue.q1" not in sim.metrics.snapshot()["probes"]


def test_snapshot_shape_and_sorting(sim):
    sim.metrics.counter("b.second").add()
    sim.metrics.counter("a.first").add()
    gauge = sim.metrics.gauge("depth")
    gauge.set(2.0)
    sim.metrics.latency("wait")
    snap = sim.metrics.snapshot()
    assert list(snap["counters"]) == ["a.first", "b.second"]
    assert snap["time"] == sim.now
    assert snap["gauges"]["depth"]["peak"] == 2.0
    assert snap["latencies"]["wait"]["n"] == 0


def test_close_flushes_open_latencies_and_is_idempotent(sim):
    recorder = sim.metrics.latency("handshake")
    recorder.start("in-flight")
    snap = sim.metrics.close()
    assert snap["latencies"]["handshake"]["abandoned"] == 1
    assert snap["latencies"]["handshake"]["pending"] == 0
    assert sim.metrics.closed
    again = sim.metrics.close()
    assert again["latencies"]["handshake"]["abandoned"] == 1


# ---------------------------------------------------------------------------
# LatencyRecorder.close
# ---------------------------------------------------------------------------

def test_recorder_close_counts_open_starts_as_abandoned(sim):
    recorder = LatencyRecorder(sim, "wait")
    recorder.start("a")
    recorder.start("b")
    recorder.stop("a")
    assert recorder.close() == 1  # only "b" was still open
    assert recorder.abandoned == 1
    assert recorder.pending() == 0
    assert recorder.close() == 0  # idempotent
    assert recorder.abandoned == 1
    assert len(recorder) == 1  # the completed sample survives


# ---------------------------------------------------------------------------
# stats edge cases
# ---------------------------------------------------------------------------

def test_summarize_empty_sample():
    summary = summarize([])
    assert summary.n == 0
    assert summary.mean == 0.0
    assert summary.std == 0.0
    assert summary.p50 == 0.0
    assert summary.p95 == 0.0


def test_summarize_single_sample():
    summary = summarize([3.5])
    assert summary.n == 1
    assert summary.mean == 3.5
    assert summary.std == 0.0  # no ddof=1 blow-up on n=1
    assert summary.minimum == summary.p50 == summary.p95 == summary.maximum == 3.5


def test_summarize_all_equal_samples():
    summary = summarize([2.0] * 10)
    assert summary.n == 10
    assert summary.mean == 2.0
    assert summary.std == 0.0
    assert summary.p50 == 2.0
    assert summary.p95 == 2.0


def test_confidence_halfwidth_degenerate_samples():
    assert confidence_halfwidth([]) == 0.0
    assert confidence_halfwidth([1.0]) == 0.0
    assert confidence_halfwidth([5.0] * 4) == 0.0
