"""Tests for radio propagation, rates and SINR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.radio import (
    NOISE_FLOOR_DBM,
    RATES,
    RATE_BY_NAME,
    PropagationModel,
    best_rate,
    dbm_to_mw,
    mw_to_dbm,
    sinr_db,
)
from repro.kernel.errors import ConfigurationError


def test_dbm_mw_roundtrip():
    for dbm in (-90.0, -30.0, 0.0, 15.0):
        assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm)


def test_dbm_to_mw_known_values():
    assert dbm_to_mw(0.0) == pytest.approx(1.0)
    assert dbm_to_mw(10.0) == pytest.approx(10.0)
    assert dbm_to_mw(-30.0) == pytest.approx(1e-3)


def test_scalar_conversions_return_native_float():
    """Regression: scalar in must mean native ``float`` out, not a NumPy
    scalar that leaks array semantics into downstream arithmetic."""
    assert type(dbm_to_mw(0.0)) is float
    assert type(dbm_to_mw(-30)) is float
    assert type(mw_to_dbm(1.0)) is float
    assert type(mw_to_dbm(0)) is float  # clipped at the -200 dBm floor
    assert type(NOISE_FLOOR_DBM) is float


def test_array_conversions_still_return_arrays():
    mw = dbm_to_mw(np.array([0.0, 10.0]))
    assert isinstance(mw, np.ndarray)
    assert np.allclose(mw, [1.0, 10.0])
    assert isinstance(mw_to_dbm(np.array([1.0, 10.0])), np.ndarray)


def test_mw_to_dbm_clips_at_floor():
    assert mw_to_dbm(0.0) == pytest.approx(-200.0)
    assert mw_to_dbm(-1.0) == pytest.approx(-200.0)


def test_noise_floor_plausible():
    # 22 MHz channel with a 6 dB NF lands in the mid -90s dBm.
    assert -96.0 < NOISE_FLOOR_DBM < -93.0


def test_path_loss_monotone_in_distance():
    model = PropagationModel(shadowing_sigma_db=0.0)
    d = np.array([1.0, 10.0, 100.0])
    losses = model.path_loss_db(d)
    assert losses[0] < losses[1] < losses[2]


def test_path_loss_reference_value():
    model = PropagationModel(exponent=3.0, reference_loss_db=40.0,
                             shadowing_sigma_db=0.0)
    assert float(model.path_loss_db(np.array(1.0))) == pytest.approx(40.0)
    assert float(model.path_loss_db(np.array(10.0))) == pytest.approx(70.0)


def test_free_space_exponent_slope():
    model = PropagationModel(exponent=2.0, shadowing_sigma_db=0.0)
    l10 = float(model.path_loss_db(np.array(10.0)))
    l100 = float(model.path_loss_db(np.array(100.0)))
    assert l100 - l10 == pytest.approx(20.0)


def test_implausible_exponent_rejected():
    with pytest.raises(ConfigurationError):
        PropagationModel(exponent=0.5)
    with pytest.raises(ConfigurationError):
        PropagationModel(shadowing_sigma_db=-1.0)


def test_shadowing_frozen_and_symmetric():
    model = PropagationModel(shadowing_sigma_db=6.0,
                             rng=np.random.default_rng(3))
    ab = model.shadowing_db("a", "b")
    assert model.shadowing_db("a", "b") == ab
    assert model.shadowing_db("b", "a") == ab
    assert model.shadowing_db("a", "c") != ab  # overwhelmingly likely


def test_zero_sigma_shadowing_is_zero():
    model = PropagationModel(shadowing_sigma_db=0.0)
    assert model.shadowing_db("a", "b") == 0.0


def test_received_power_includes_shadowing():
    model = PropagationModel(shadowing_sigma_db=5.0,
                             rng=np.random.default_rng(1))
    plain = model.received_power_dbm(15.0, 10.0)
    shadowed = model.received_power_dbm(15.0, 10.0, "a", "b")
    assert shadowed == pytest.approx(plain - model.shadowing_db("a", "b"))


def test_received_power_vector_matches_scalar():
    model = PropagationModel(shadowing_sigma_db=0.0)
    distances = np.array([5.0, 20.0, 80.0])
    vector = model.received_power_vector(np.full(3, 15.0), distances)
    for i, d in enumerate(distances):
        assert vector[i] == pytest.approx(model.received_power_dbm(15.0, d))


# ---------------------------------------------------------------------------
# Rates and FER
# ---------------------------------------------------------------------------

def test_rates_ordered_and_named():
    speeds = [r.bits_per_second for r in RATES]
    assert speeds == sorted(speeds)
    assert set(RATE_BY_NAME) == {"1Mbps", "2Mbps", "5.5Mbps", "11Mbps"}


def test_fer_decreases_with_sinr():
    mode = RATE_BY_NAME["11Mbps"]
    fers = [mode.fer(s, 1500) for s in (0.0, 5.0, 10.0, 20.0)]
    assert fers == sorted(fers, reverse=True)


def test_fer_increases_with_frame_size():
    mode = RATE_BY_NAME["2Mbps"]
    assert mode.fer(3.0, 1500) >= mode.fer(3.0, 100)


def test_fer_bounds():
    mode = RATE_BY_NAME["1Mbps"]
    assert mode.fer(40.0, 1500) == pytest.approx(0.0, abs=1e-9)
    assert mode.fer(-20.0, 1500) == pytest.approx(1.0, abs=1e-6)


def test_slower_rates_more_robust():
    """At marginal SINR the 1 Mb/s DSSS mode must outperform 11 Mb/s CCK."""
    sinr = 5.0
    assert RATE_BY_NAME["1Mbps"].fer(sinr, 1500) < \
        RATE_BY_NAME["11Mbps"].fer(sinr, 1500)


def test_best_rate_high_sinr_picks_fastest():
    assert best_rate(30.0).name == "11Mbps"


def test_best_rate_low_sinr_falls_back_to_base():
    assert best_rate(-10.0).name == "1Mbps"


def test_best_rate_monotone_in_sinr():
    picks = [best_rate(s).bits_per_second for s in np.linspace(-5, 30, 36)]
    assert picks == sorted(picks)


def test_range_for_rate_ordering():
    model = PropagationModel(exponent=3.0, shadowing_sigma_db=0.0)
    ranges = [model.range_for_rate(mode) for mode in RATES]
    # Slower modes reach farther.
    assert ranges == sorted(ranges, reverse=True)
    assert ranges[0] > 100.0  # 1 Mb/s reaches beyond 100 m indoors


def test_range_for_rate_zero_when_impossible():
    model = PropagationModel(exponent=3.0, shadowing_sigma_db=0.0)
    assert model.range_for_rate(RATES[3], tx_power_dbm=-100.0) == 0.0


# ---------------------------------------------------------------------------
# SINR
# ---------------------------------------------------------------------------

def test_sinr_without_interference_is_snr():
    assert sinr_db(-60.0, []) == pytest.approx(-60.0 - NOISE_FLOOR_DBM)


def test_sinr_with_equal_interferer_near_zero():
    # One co-channel interferer at the same power: SINR ≈ 0 dB (noise makes
    # it slightly negative).
    value = sinr_db(-60.0, [-60.0])
    assert -0.5 < value < 0.0


def test_sinr_overlap_scales_interference():
    full = sinr_db(-60.0, [-60.0], [1.0])
    half = sinr_db(-60.0, [-60.0], [0.5])
    none = sinr_db(-60.0, [-60.0], [0.0])
    assert full < half < none
    assert none == pytest.approx(sinr_db(-60.0, []))


def test_sinr_overlap_length_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        sinr_db(-60.0, [-60.0, -70.0], [1.0])


def test_sinr_multiple_interferers_sum():
    one = sinr_db(-60.0, [-70.0])
    two = sinr_db(-60.0, [-70.0, -70.0])
    assert two < one
