"""Tests for fault injection, diagnostics and human repair."""

from __future__ import annotations

import pytest

from repro.experiments.workloads import projector_room
from repro.kernel.errors import ConfigurationError
from repro.services.errorsvc import (
    DiagnosticsAgent,
    FaultInjector,
    human_repair_model,
)


def test_wedge_adapter_stops_reception():
    room = projector_room(seed=30, register=False)
    injector = FaultInjector(room.sim)
    injector.wedge_adapter(room.adapter)
    room.laptop.nic.send("adapter", None, 100)
    room.sim.run(until=5.0)
    assert room.adapter.nic.mac.stats["rx_frames"] == 0
    assert len(injector.outstanding()) == 1


def test_double_wedge_rejected():
    room = projector_room(seed=31, register=False)
    injector = FaultInjector(room.sim)
    injector.wedge_adapter(room.adapter)
    with pytest.raises(ConfigurationError):
        injector.wedge_adapter(room.adapter)


def test_repair_restores_function():
    room = projector_room(seed=32, register=False)
    injector = FaultInjector(room.sim)
    fault = injector.wedge_adapter(room.adapter)
    injector.repair(fault, "test")
    before = room.adapter.nic.mac.stats["rx_frames"]
    room.laptop.nic.send("adapter", None, 100)
    room.sim.run(until=5.0)
    assert room.adapter.nic.mac.stats["rx_frames"] >= before + 1
    assert fault.outage is not None and fault.repaired_by == "test"


def test_kill_registry_blocks_lookups():
    room = projector_room(seed=33)
    room.sim.run(until=3.0)  # registration completes first
    injector = FaultInjector(room.sim)
    injector.kill_registry(room.registry)
    results = []
    from repro.discovery.records import ServiceTemplate

    room.laptop_discovery.find(ServiceTemplate(), results.append)
    room.sim.run(until=10.0)
    assert results == [[]]  # timeout path: empty result


def test_diagnostics_repairs_automatically():
    room = projector_room(seed=34, register=False)
    injector = FaultInjector(room.sim)
    agent = DiagnosticsAgent(room.sim, injector, check_interval=1.0,
                             repair_time=2.0, enabled=True)
    fault = injector.jam_radio(room.laptop)
    room.sim.run(until=10.0)
    assert fault.repaired_at is not None
    assert fault.repaired_by == "diagnostics"
    assert fault.outage <= 5.0
    assert agent.repairs == 1


def test_disabled_diagnostics_leaves_fault():
    room = projector_room(seed=35, register=False)
    injector = FaultInjector(room.sim)
    DiagnosticsAgent(room.sim, injector, enabled=False)
    fault = injector.jam_radio(room.laptop)
    room.sim.run(until=30.0)
    assert fault.repaired_at is None


def test_human_repair_skilled():
    room = projector_room(seed=36, register=False)
    injector = FaultInjector(room.sim)
    fault = injector.jam_radio(room.laptop)
    delay = human_repair_model(fault, injector, room.sim,
                               technical_skill=0.9, base_time=60.0)
    assert delay == pytest.approx(36.0)
    room.sim.run(until=100.0)
    assert fault.repaired_by == "human"


def test_human_repair_unskilled_cannot():
    room = projector_room(seed=37, register=False)
    injector = FaultInjector(room.sim)
    fault = injector.jam_radio(room.laptop)
    delay = human_repair_model(fault, injector, room.sim,
                               technical_skill=0.2)
    assert delay is None
    room.sim.run(until=200.0)
    assert fault.repaired_at is None
    assert any("lacks the skill" in r.message
               for r in room.sim.tracer.select("issue.resource"))


def test_diagnostics_does_not_double_repair():
    room = projector_room(seed=38, register=False)
    injector = FaultInjector(room.sim)
    agent = DiagnosticsAgent(room.sim, injector, check_interval=0.5,
                             repair_time=3.0)
    injector.jam_radio(room.laptop)
    room.sim.run(until=20.0)
    assert agent.repairs == 1


def test_faults_emit_issues():
    room = projector_room(seed=39, register=False)
    injector = FaultInjector(room.sim)
    injector.wedge_adapter(room.adapter)
    injector.jam_radio(room.laptop)
    assert len(room.sim.tracer.select("issue.fault")) == 2
