"""Run the doctest examples embedded in module/class docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.experiments.sweeps
import repro.kernel.scheduler

MODULES = [
    repro.kernel.scheduler,
    repro.experiments.sweeps,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0  # the examples actually exist
