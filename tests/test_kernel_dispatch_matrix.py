"""Dispatch-core matrix oracle: every run-loop variant must be
byte-identical on seeded workloads.

``Simulator.run`` selects a monomorphic loop variant at entry (see
:mod:`repro.kernel.dispatch`) and the batch engine routes its sort /
liveness / peek kernels through a resolved backend (see
:mod:`repro.kernel.backend`).  None of that specialisation may change
*what* the simulation computes — only how fast.  These tests sweep the
full variant matrix:

* **trace**: off / ``head`` / ``ring`` / ``stream`` — the traced and
  untraced loops, and every retention policy of the traced one;
* **metrics**: a periodic MONITOR-priority sampler on or off — the
  monitor events ride the same queue as everything else;
* **batching**: the batched timer engine vs the legacy per-event heap;
* **backend**: pure Python vs the compiled kernels.  When no compiler
  is available the compiled column *skips with an explicit reason* — it
  must never silently pass by measuring the Python fallback.

Within each metrics arm, every (trace, batching, backend) combination is
compared against one reference outcome (trace off, batching on, Python
backend).  The fingerprint deliberately excludes retained trace records
— ``ring`` keeps a suffix and ``stream`` keeps nothing by design — and
the ``kernel.*`` engine-internal metrics, which legitimately differ
between engines; everything else must match exactly.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import pytest

from repro.discovery.leases import LeaseTable
from repro.experiments.workloads import interferer_field, projector_room
from repro.kernel.backend import compiled_info
from repro.kernel.events import Priority
from repro.kernel.scheduler import Simulator

_COMPILED_AVAILABLE, _COMPILED_REASON = compiled_info()

#: One pytest param per backend; the compiled column carries an explicit
#: skip reason straight from the probe (ISSUE 10: auto-skip, never a
#: silent pass on the fallback).
BACKENDS = [
    pytest.param("python", id="backend-python"),
    pytest.param("compiled", id="backend-compiled",
                 marks=pytest.mark.skipif(
                     not _COMPILED_AVAILABLE,
                     reason=f"compiled backend unavailable: "
                            f"{_COMPILED_REASON}")),
]

#: None = tracing disabled (the untraced loop variants).
TRACE_MODES = (None, "head", "ring", "stream")


def _sim_kwargs(trace_mode: Optional[str], batching: bool,
                backend: str) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {"batching": batching, "backend": backend}
    if trace_mode is None:
        kwargs["trace"] = False
    else:
        kwargs["trace"] = True
        kwargs["trace_mode"] = trace_mode
        if trace_mode == "ring":
            kwargs["trace_capacity"] = 512
    return kwargs


def _metrics_fingerprint(sim: Simulator) -> Dict[str, Any]:
    """Non-kernel metrics: *what* the simulation did.  ``kernel.*``
    gauges report how the engine executed it and legitimately differ
    between batching modes (same convention as the batch oracle)."""
    if sim._metrics is None:
        return {}
    out: Dict[str, Any] = {}
    for section, values in sim.metrics.snapshot().items():
        if isinstance(values, dict):
            out[section] = {name: value for name, value in values.items()
                            if not name.startswith("kernel")}
        else:
            out[section] = values
    return out


def _attach_monitor(sim: Simulator, samples: list) -> None:
    """The metrics arm: a periodic MONITOR-priority sampler whose events
    ride the shared queue — its firing times are part of the outcome."""
    gauge = sim.metrics.gauge("matrix.pending")

    def sample() -> None:
        gauge.set(float(sim.pending()))
        samples.append((sim.now, sim.pending()))

    sim.every(1.0, sample, priority=int(Priority.MONITOR))


# ---------------------------------------------------------------------------
# Workload 1: the projector room with co-channel interferers
# ---------------------------------------------------------------------------

def _projector_outcome(trace_mode: Optional[str], metrics: bool,
                       batching: bool, backend: str) -> Tuple:
    room = projector_room(seed=3, **_sim_kwargs(trace_mode, batching,
                                                backend))
    interferer_field(room, 4, frames_per_second=40.0)
    samples: list = []
    if metrics:
        _attach_monitor(room.sim, samples)
    room.sim.run(until=8.0)
    macs = {name: dict(room.medium._macs[name].stats)
            for name in room.medium.stations()}
    return (room.sim.now, room.sim.events_executed,
            _metrics_fingerprint(room.sim), tuple(samples), macs)


@pytest.fixture(scope="module")
def projector_reference():
    cache: Dict[bool, Tuple] = {}

    def get(metrics: bool) -> Tuple:
        if metrics not in cache:
            cache[metrics] = _projector_outcome(None, metrics, True,
                                                "python")
        return cache[metrics]

    return get


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("batching", (True, False),
                         ids=("batched", "unbatched"))
@pytest.mark.parametrize("metrics", (True, False),
                         ids=("metrics", "no-metrics"))
@pytest.mark.parametrize("trace_mode", TRACE_MODES,
                         ids=("trace-off", "trace-head", "trace-ring",
                              "trace-stream"))
def test_projector_room_matrix(projector_reference, trace_mode, metrics,
                               batching, backend):
    got = _projector_outcome(trace_mode, metrics, batching, backend)
    want = projector_reference(metrics)
    for got_part, want_part in zip(got, want):
        assert got_part == want_part


# ---------------------------------------------------------------------------
# Workload 2: the lease storm (sweep + renewal chains)
# ---------------------------------------------------------------------------

def _lease_storm_outcome(trace_mode: Optional[str], metrics: bool,
                         batching: bool, backend: str) -> Tuple:
    sim = Simulator(seed=9, **_sim_kwargs(trace_mode, batching, backend))
    table = LeaseTable(sim, sweep_interval=0.5)
    rng = sim.rng("storm")
    durations = [2.0, 3.0, 5.0]
    renewed = [0]
    samples: list = []
    if metrics:
        _attach_monitor(sim, samples)

    def chain(lease_id: int, duration: float) -> None:
        lease = table.get(lease_id)
        if lease is None or sim.now + 0.45 * duration > 25.0:
            return
        table.renew(lease_id)
        renewed[0] += 1
        sim.schedule(0.45 * duration, chain, lease_id, duration)

    for i in range(120):
        duration = durations[int(rng.integers(0, len(durations)))]
        lease = table.grant(f"holder-{i}", f"res-{i}", duration)
        sim.schedule(0.45 * duration, chain, lease.lease_id, duration)

    sim.run(until=30.0)
    return (sim.now, sim.events_executed, renewed[0], len(table),
            _metrics_fingerprint(sim), tuple(samples))


@pytest.fixture(scope="module")
def storm_reference():
    cache: Dict[bool, Tuple] = {}

    def get(metrics: bool) -> Tuple:
        if metrics not in cache:
            cache[metrics] = _lease_storm_outcome(None, metrics, True,
                                                  "python")
        return cache[metrics]

    return get


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("batching", (True, False),
                         ids=("batched", "unbatched"))
@pytest.mark.parametrize("metrics", (True, False),
                         ids=("metrics", "no-metrics"))
@pytest.mark.parametrize("trace_mode", TRACE_MODES,
                         ids=("trace-off", "trace-head", "trace-ring",
                              "trace-stream"))
def test_lease_storm_matrix(storm_reference, trace_mode, metrics,
                            batching, backend):
    got = _lease_storm_outcome(trace_mode, metrics, batching, backend)
    want = storm_reference(metrics)
    for got_part, want_part in zip(got, want):
        assert got_part == want_part


# ---------------------------------------------------------------------------
# Backend resolution contract
# ---------------------------------------------------------------------------

def test_compiled_request_records_fallback_reason():
    """Requesting the compiled backend on a host without a compiler must
    resolve to Python *with the probe's reason recorded* — the silent
    degradation the bench payload and CI marker exist to prevent."""
    sim = Simulator(seed=0, trace=False, backend="compiled")
    assert sim._kernels.requested == "compiled"
    if _COMPILED_AVAILABLE:
        assert sim._kernels.name == "compiled"
    else:
        assert sim._kernels.name == "python"
        assert sim._kernels.reason == _COMPILED_REASON
        assert sim._kernels.reason  # non-empty: never silent


def test_default_backend_is_python_and_probe_free(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    sim = Simulator(seed=0, trace=False)
    assert sim._kernels.name == "python"
    assert sim._kernels.requested == "python"


def test_env_var_requests_backend_for_default_sims(monkeypatch):
    """The CI smoke leg sets REPRO_KERNEL_BACKEND=compiled; default-
    constructed simulators must honour it — and record the fallback
    reason when no compiler exists."""
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "compiled")
    sim = Simulator(seed=0, trace=False)
    assert sim._kernels.requested == "compiled"
    if not _COMPILED_AVAILABLE:
        assert sim._kernels.name == "python"
        assert sim._kernels.reason == _COMPILED_REASON
