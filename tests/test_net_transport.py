"""Tests for the reliable message transport."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError, TransportError
from repro.net.frames import MTU_BYTES
from repro.net.link import WiredLink
from repro.net.stack import NetworkStack
from repro.net.transport import ReliableEndpoint


def _pair(sim, loss=0.0, rate=10e6, **kwargs):
    link = WiredLink(sim, "a", "b", loss=loss, rate_bps=rate)
    sa = NetworkStack(sim, link.port_a)
    sb = NetworkStack(sim, link.port_b)
    inbox = []
    ea = ReliableEndpoint(sim, sa, 50, **kwargs)
    eb = ReliableEndpoint(sim, sb, 50,
                          on_message=lambda src, obj, n: inbox.append((src, obj)),
                          **kwargs)
    return ea, eb, inbox


def test_small_message_delivery(sim):
    ea, _eb, inbox = _pair(sim)
    delivered = []
    ea.send("b", {"k": 1}, 100, on_delivered=lambda: delivered.append(sim.now))
    sim.run()
    assert inbox == [("a", {"k": 1})]
    assert len(delivered) == 1
    assert ea.messages_delivered == 1


def test_large_message_segmentation(sim):
    ea, eb, inbox = _pair(sim)
    size = 4 * MTU_BYTES + 37
    ea.send("b", "big", size)
    sim.run()
    assert inbox == [("a", "big")]
    assert eb.messages_received == 1


def test_zero_size_message(sim):
    ea, _eb, inbox = _pair(sim)
    ea.send("b", "tiny", 0)
    sim.run()
    assert inbox == [("a", "tiny")]


def test_delivery_over_lossy_link(sim):
    ea, _eb, inbox = _pair(sim, loss=0.3)
    for i in range(10):
        ea.send("b", i, 3000)
    sim.run(until=60.0)
    assert sorted(obj for _src, obj in inbox) == list(range(10))
    assert ea.messages_failed == 0


def test_no_duplicate_delivery_despite_retries(sim):
    ea, eb, inbox = _pair(sim, loss=0.4)
    ea.send("b", "once", 5000)
    sim.run(until=60.0)
    assert inbox == [("a", "once")]


def test_failure_after_max_retries(sim):
    # 100% loss: nothing ever arrives.
    ea, _eb, inbox = _pair(sim, loss=0.99, timeout=0.01, max_retries=3)
    failed = []
    ea.send("b", "doomed", 100, on_failed=lambda: failed.append(True))
    sim.run(until=120.0)
    # With 99% loss and only 3 retries the odds of success are negligible;
    # accept either exactly-one failure callback or (rarely) delivery.
    assert failed == [True] or inbox


def test_per_destination_serialisation(sim):
    """Two large messages to one peer must not interleave segments: the
    second starts only after the first completes."""
    ea, _eb, inbox = _pair(sim)
    order = []
    ea.send("b", "first", 6 * MTU_BYTES,
            on_delivered=lambda: order.append("first"))
    ea.send("b", "second", 6 * MTU_BYTES,
            on_delivered=lambda: order.append("second"))
    assert ea.pending() == 2
    sim.run()
    assert order == ["first", "second"]
    assert [obj for _s, obj in inbox] == ["first", "second"]


def test_cancel_pending_drops_queued_only(sim):
    ea, _eb, inbox = _pair(sim)
    failed = []
    ea.send("b", "head", 6 * MTU_BYTES)
    ea.send("b", "stale1", 100, on_failed=lambda: failed.append(1))
    ea.send("b", "stale2", 100, on_failed=lambda: failed.append(2))
    dropped = ea.cancel_pending("b")
    assert dropped == 2
    ea.send("b", "fresh", 100)
    sim.run()
    assert [obj for _s, obj in inbox] == ["head", "fresh"]
    assert sorted(failed) == [1, 2]


def test_window_limits_inflight(sim):
    link = WiredLink(sim, "a", "b", rate_bps=1e4)  # slow: frames pile up
    sa = NetworkStack(sim, link.port_a)
    ea = ReliableEndpoint(sim, sa, 50, window=4)
    ea.send("b", "big", 20 * MTU_BYTES)
    # Before any timer fires, exactly `window` segments have been handed
    # to the interface (1 serialising + 3 queued).
    assert link.port_a.queue.enqueued == 4


def test_closed_endpoint_rejects_send(sim):
    ea, _eb, _inbox = _pair(sim)
    ea.close()
    with pytest.raises(TransportError):
        ea.send("b", "x", 10)


def test_close_is_idempotent_and_unbinds(sim):
    ea, _eb, _inbox = _pair(sim)
    ea.send("b", "x", 10)
    ea.close()
    ea.close()
    assert ea.pending() == 0
    assert not ea.stack.is_bound(50)


def test_bidirectional_same_port(sim):
    ea, eb, inbox = _pair(sim)
    back = []
    ea.on_message = lambda src, obj, n: back.append(obj)
    ea.send("b", "ping", 10)
    eb.send("a", "pong", 10)
    sim.run()
    assert inbox == [("a", "ping")]
    assert back == ["pong"]


def test_parameter_validation(sim):
    link = WiredLink(sim, "a", "b")
    stack = NetworkStack(sim, link.port_a)
    with pytest.raises(ConfigurationError):
        ReliableEndpoint(sim, stack, 1, window=0)
    endpoint = ReliableEndpoint(sim, stack, 2)
    with pytest.raises(ConfigurationError):
        endpoint.send("b", "x", -5)


def test_message_counters(sim):
    ea, eb, _inbox = _pair(sim)
    ea.send("b", "x", 10)
    ea.send("b", "y", 10)
    sim.run()
    assert ea.messages_sent == 2
    assert ea.messages_delivered == 2
    assert eb.messages_received == 2
    assert eb.bytes_received == 20
