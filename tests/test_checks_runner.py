"""Runner, baseline workflow, and ``repro.cli check`` behaviour."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.checks import (Suppression, apply_baseline, check_source,
                          load_baseline, run_checks, write_baseline)
from repro.cli import main
from repro.kernel.errors import ConfigurationError


def _write_tree(tmp_path: pathlib.Path) -> pathlib.Path:
    """A small mixed tree: one dirty file, one clean, one upward import."""
    pkg = tmp_path / "repro"
    (pkg / "kernel").mkdir(parents=True)
    (pkg / "env").mkdir()
    (pkg / "kernel" / "clock.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n")
    (pkg / "env" / "clean.py").write_text(
        "from repro.kernel.clock import stamp\n")
    (pkg / "kernel" / "upward.py").write_text(
        "from repro.env.clean import stamp\n")
    return tmp_path


# ---------------------------------------------------------------------------
# Runner basics
# ---------------------------------------------------------------------------
def test_runner_reports_sorted_findings_and_counts(tmp_path):
    root = _write_tree(tmp_path)
    report = run_checks([root], base=root)
    assert [f.code for f in report.findings] == ["LPC101", "LPC201"]
    assert report.files == 3
    assert not report.clean
    # Paths are relative to base and posix-style for baseline stability.
    assert report.findings[0].path == "repro/kernel/clock.py"


def test_parallel_and_serial_runs_are_identical(tmp_path):
    root = _write_tree(tmp_path)
    serial = run_checks([root], base=root, jobs=1)
    parallel = run_checks([root], base=root, jobs=4)
    assert serial.findings == parallel.findings
    assert serial.graph == parallel.graph


def test_runner_flags_unparseable_files(tmp_path):
    (tmp_path / "broken.py").write_text("def nope(:\n")
    report = run_checks([tmp_path], base=tmp_path)
    assert [f.code for f in report.findings] == ["LPC001"]


def test_runner_accepts_single_files_and_dedupes(tmp_path):
    root = _write_tree(tmp_path)
    target = root / "repro" / "kernel" / "clock.py"
    report = run_checks([target, target], base=root)
    assert [f.code for f in report.findings] == ["LPC101"]
    assert report.files == 1


def test_json_report_is_machine_readable(tmp_path):
    root = _write_tree(tmp_path)
    payload = json.loads(run_checks([root], base=root).to_json())
    assert payload["files"] == 3
    codes = [f["code"] for f in payload["findings"]]
    assert codes == ["LPC101", "LPC201"]
    assert payload["import_graph"]["kernel"] == ["env"]
    assert "LPC104" in payload["rules"]


# ---------------------------------------------------------------------------
# Parallel byte-identity and incremental mode
# ---------------------------------------------------------------------------
def _flow_tree(tmp_path: pathlib.Path) -> pathlib.Path:
    """A tree with flow findings and a lazy-import call-graph cycle."""
    pkg = tmp_path / "repro"
    (pkg / "kernel").mkdir(parents=True)
    (pkg / "services").mkdir()
    (pkg / "env").mkdir()
    (pkg / "cli.py").write_text("from repro.services import alpha\n")
    (pkg / "services" / "alpha.py").write_text(
        "from ..kernel import beta\n"
        "CACHE = {}\n"
        "def put(k, v):\n"
        "    CACHE[k] = v\n"
        "def look(k):\n"
        "    return CACHE.get(k)\n")
    (pkg / "kernel" / "beta.py").write_text(
        "def late():\n"
        "    from ..services import alpha\n"
        "    return alpha\n")
    (pkg / "env" / "delta.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n")
    return tmp_path


def test_jobs_byte_identity_with_flow_rules(tmp_path):
    root = _flow_tree(tmp_path)
    texts = {run_checks([root], base=root, jobs=jobs).format_text()
             for jobs in (1, 2, 4)}
    assert len(texts) == 1
    report = run_checks([root], base=root, jobs=1)
    codes = {f.code for f in report.findings}
    assert {"LPC301", "LPC302", "LPC101", "LPC203"} <= codes


def test_incremental_warm_run_reanalyzes_nothing(tmp_path):
    root = _flow_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cold = run_checks([root], base=root, incremental_cache=cache)
    assert len(cold.analyzed) == 4 and cold.cached == 0
    warm = run_checks([root], base=root, incremental_cache=cache)
    assert warm.analyzed == [] and warm.cached == 4
    assert warm.format_text() == cold.format_text()


def test_incremental_edit_reanalyzes_only_the_scc_region(tmp_path):
    root = _flow_tree(tmp_path)
    cache = tmp_path / "cache.json"
    run_checks([root], base=root, incremental_cache=cache)
    # Edit beta: its SCC (the alpha<->beta lazy cycle) is re-analyzed,
    # the untouched cli.py and env/delta.py are served from cache.
    beta = root / "repro" / "kernel" / "beta.py"
    beta.write_text(beta.read_text() + "\n\ndef extra():\n    return 1\n")
    warm = run_checks([root], base=root, incremental_cache=cache)
    assert set(warm.analyzed) == {"repro/kernel/beta.py",
                                  "repro/services/alpha.py"}
    cold = run_checks([root], base=root)
    assert warm.format_text() == cold.format_text()


def test_incremental_edit_findings_match_cold_run(tmp_path):
    root = _flow_tree(tmp_path)
    cache = tmp_path / "cache.json"
    run_checks([root], base=root, incremental_cache=cache)
    # Introduce a new flow hazard in alpha and a determinism hazard in
    # delta; the warm run must surface both exactly like a cold run.
    alpha = root / "repro" / "services" / "alpha.py"
    alpha.write_text(alpha.read_text()
                     + "import itertools\n"
                       "_seq = itertools.count(1)\n"
                       "def mint():\n"
                       "    return next(_seq)\n")
    delta = root / "repro" / "env" / "delta.py"
    delta.write_text(delta.read_text()
                     + "\n\ndef stamp2():\n    return time.time()\n")
    warm = run_checks([root], base=root, incremental_cache=cache)
    cold = run_checks([root], base=root)
    assert warm.format_text() == cold.format_text()
    assert any(f.code == "LPC301" and "_seq" in f.message
               for f in warm.findings)


def test_incremental_cache_mismatch_falls_back_to_cold(tmp_path):
    root = _flow_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json")
    report = run_checks([root], base=root, incremental_cache=cache)
    assert len(report.analyzed) == 4          # full cold run
    # ...and the corrupt file was replaced with a valid cache.
    warm = run_checks([root], base=root, incremental_cache=cache)
    assert warm.analyzed == []


def test_json_report_carries_timings_and_cache_counters(tmp_path):
    root = _flow_tree(tmp_path)
    cache = tmp_path / "cache.json"
    run_checks([root], base=root, incremental_cache=cache)
    payload = json.loads(run_checks([root], base=root,
                                    incremental_cache=cache).to_json())
    assert payload["analyzed"] == 0 and payload["cached"] == 4
    assert set(payload["timings"]["rules"]) == {
        "LPC301", "LPC302", "LPC303", "LPC304"}
    for phase in ("discover", "analyze", "layers", "flow", "baseline"):
        assert payload["timings"]["phases"][phase] >= 0


def test_cli_check_incremental_flag(tmp_path, capsys, monkeypatch):
    root = _flow_tree(tmp_path)
    monkeypatch.chdir(root)
    args = ["check", "repro", "--incremental",
            "--incremental-cache", "cache.json", "--jobs", "1"]
    assert main(args) == 1
    first = capsys.readouterr().out
    assert (root / "cache.json").exists()
    assert main(args) == 1
    assert capsys.readouterr().out == first


# ---------------------------------------------------------------------------
# Baseline workflow
# ---------------------------------------------------------------------------
def _baseline(tmp_path, entries) -> pathlib.Path:
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 1, "suppressions": entries}))
    return path


def test_baseline_suppresses_with_justification(tmp_path):
    root = _write_tree(tmp_path)
    baseline = _baseline(tmp_path, [
        {"code": "LPC101", "path": "repro/kernel/clock.py",
         "justification": "host timestamp for log files only"},
        {"code": "LPC201", "path": "repro/kernel/upward.py",
         "justification": "transitional shim removed in the next PR"},
    ])
    report = run_checks([root], base=root, baseline=baseline)
    assert report.clean
    assert [f.code for f in report.suppressed] == ["LPC101", "LPC201"]


def test_baseline_rejects_missing_or_todo_justification(tmp_path):
    for bad in ("", "   ", "TODO", "todo: justify later"):
        path = _baseline(tmp_path, [
            {"code": "LPC101", "path": "x.py", "justification": bad}])
        with pytest.raises(ConfigurationError):
            load_baseline(path)


def test_baseline_rejects_unknown_codes_and_bad_json(tmp_path):
    path = _baseline(tmp_path, [
        {"code": "LPC999", "path": "x.py", "justification": "because"}])
    with pytest.raises(ConfigurationError):
        load_baseline(path)
    garbage = tmp_path / "garbage.json"
    garbage.write_text("{not json")
    with pytest.raises(ConfigurationError):
        load_baseline(garbage)


def test_stale_baseline_entries_surface_as_lpc002(tmp_path):
    root = _write_tree(tmp_path)
    baseline = _baseline(tmp_path, [
        {"code": "LPC101", "path": "repro/kernel/clock.py",
         "justification": "host timestamp for log files only"},
        {"code": "LPC105", "path": "repro/env/clean.py",
         "justification": "does not exist any more"},
    ])
    report = run_checks([root], base=root, baseline=baseline)
    codes = [f.code for f in report.findings]
    assert "LPC002" in codes          # the stale entry
    assert "LPC201" in codes          # never suppressed
    assert "LPC101" not in codes      # suppressed


def test_line_pinned_suppression_only_matches_that_line():
    findings = check_source(
        "m.py", "import time\na = time.time()\nb = time.time()\n")
    pinned = Suppression(code="LPC101", path="m.py",
                         justification="one-off", line=2)
    kept, suppressed, stale = apply_baseline(findings, [pinned])
    assert [f.line for f in suppressed] == [2]
    assert [f.line for f in kept] == [3]
    assert stale == []


def test_write_baseline_roundtrip_requires_editing(tmp_path):
    root = _write_tree(tmp_path)
    report = run_checks([root], base=root)
    out = tmp_path / "draft.json"
    assert write_baseline(report.findings, out) == 2
    # The template's empty justifications are rejected until filled in.
    with pytest.raises(ConfigurationError):
        load_baseline(out)
    data = json.loads(out.read_text())
    for entry in data["suppressions"]:
        entry["justification"] = "reviewed: acceptable here"
    out.write_text(json.dumps(data))
    assert len(load_baseline(out)) == 2


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
def test_cli_check_exit_codes(tmp_path, capsys, monkeypatch):
    root = _write_tree(tmp_path)
    monkeypatch.chdir(root)
    assert main(["check", "repro/env"]) == 0
    assert main(["check", "repro"]) == 1
    out = capsys.readouterr().out
    assert "LPC101" in out and "LPC201" in out


def test_cli_check_json_format(tmp_path, capsys, monkeypatch):
    root = _write_tree(tmp_path)
    monkeypatch.chdir(root)
    assert main(["check", "repro", "--format", "json", "--jobs", "1"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert [f["code"] for f in payload["findings"]] == ["LPC101", "LPC201"]


def test_cli_check_uses_baseline_when_present(tmp_path, capsys, monkeypatch):
    root = _write_tree(tmp_path)
    _baseline(root, [
        {"code": "LPC101", "path": "repro/kernel/clock.py",
         "justification": "host timestamp for log files only"},
        {"code": "LPC201", "path": "repro/kernel/upward.py",
         "justification": "transitional shim removed in the next PR"},
    ])
    monkeypatch.chdir(root)
    assert main(["check", "repro", "--baseline", "baseline.json"]) == 0
    assert "2 suppressed" in capsys.readouterr().out


def test_cli_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("LPC101", "LPC104", "LPC201", "LPC203"):
        assert code in out


def test_cli_check_write_baseline(tmp_path, capsys, monkeypatch):
    root = _write_tree(tmp_path)
    monkeypatch.chdir(root)
    assert main(["check", "repro", "--write-baseline", "draft.json"]) == 0
    assert (root / "draft.json").exists()
    assert "fill in justifications" in capsys.readouterr().out


def test_cli_check_missing_path_errors(capsys):
    assert main(["check", "does-not-exist-anywhere"]) == 2
    assert "no such path" in capsys.readouterr().err
