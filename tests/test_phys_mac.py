"""Tests for the wireless medium and CSMA/CA MAC."""

from __future__ import annotations

import pytest

from repro.env.radio import RATE_BY_NAME
from repro.kernel.errors import ConfigurationError
from repro.net.addresses import BROADCAST
from repro.net.frames import Frame
from repro.phys.mac import ACK_S, CsmaMac, PREAMBLE_S, WirelessMedium


def _station(sim, world, medium, name, xy, **kwargs):
    world.place(name, xy)
    return CsmaMac(sim, medium, name, **kwargs)


def test_attach_requires_placement(sim, world, medium):
    with pytest.raises(ConfigurationError):
        CsmaMac(sim, medium, "ghost")


def test_duplicate_attach_rejected(sim, world, medium):
    _station(sim, world, medium, "a", (0, 0))
    with pytest.raises(ConfigurationError):
        CsmaMac(sim, medium, "a")


def test_unicast_delivery_close_range(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    b = _station(sim, world, medium, "b", (15, 10))
    got = []
    b.on_receive = got.append
    a.send(Frame("a", "b", "hello", 100))
    sim.run(until=1.0)
    assert len(got) == 1
    assert got[0].payload == "hello"
    assert a.stats["tx_success"] == 1


def test_no_delivery_out_of_range(sim, world, medium):
    world2 = type(world)(10000, 100)
    medium2 = WirelessMedium(sim, world2)
    world2.place("a", (0, 50))
    world2.place("b", (5000, 50))
    a = CsmaMac(sim, medium2, "a")
    b = CsmaMac(sim, medium2, "b")
    got = []
    b.on_receive = got.append
    a.send(Frame("a", "b", None, 100))
    sim.run(until=5.0)
    assert got == []
    assert a.stats["tx_retry_drops"] == 1


def test_broadcast_reaches_all_cochannel(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    b = _station(sim, world, medium, "b", (12, 10))
    c = _station(sim, world, medium, "c", (14, 10))
    hits = []
    b.on_receive = lambda f: hits.append("b")
    c.on_receive = lambda f: hits.append("c")
    a.send(Frame("a", BROADCAST, None, 64, kind="mgmt"))
    sim.run(until=1.0)
    assert sorted(hits) == ["b", "c"]


def test_broadcast_not_heard_on_orthogonal_channel(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10), channel=1)
    b = _station(sim, world, medium, "b", (12, 10), channel=11)
    got = []
    b.on_receive = got.append
    a.send(Frame("a", BROADCAST, None, 64, kind="mgmt"))
    sim.run(until=1.0)
    assert got == []


def test_unicast_to_other_channel_fails(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10), channel=1)
    b = _station(sim, world, medium, "b", (12, 10), channel=11)
    a.send(Frame("a", "b", None, 100))
    sim.run(until=2.0)
    assert b.stats["rx_frames"] == 0
    assert a.stats["tx_retry_drops"] == 1


def test_queue_limit_drops(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10), queue_limit=2)
    _station(sim, world, medium, "b", (12, 10))
    results = [a.send(Frame("a", "b", None, 1000)) for _ in range(5)]
    assert results.count(False) >= 2
    assert a.stats["queue_drops"] >= 2


def test_queue_drains_in_order(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    b = _station(sim, world, medium, "b", (12, 10))
    got = []
    b.on_receive = lambda f: got.append(f.payload)
    for i in range(5):
        a.send(Frame("a", "b", i, 200))
    sim.run(until=2.0)
    assert got == [0, 1, 2, 3, 4]


def test_rate_adaptation_close_picks_11mbps(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    _station(sim, world, medium, "b", (13, 10))
    rate = a.select_rate(Frame("a", "b", None, 1000))
    assert rate.name == "11Mbps"


def test_rate_adaptation_far_picks_slower(sim, world, medium):
    world2 = type(world)(500, 100)
    medium2 = WirelessMedium(sim, world2)
    medium2.propagation.shadowing_sigma_db = 0.0
    world2.place("a", (0, 50))
    world2.place("b", (150, 50))
    a = CsmaMac(sim, medium2, "a")
    CsmaMac(sim, medium2, "b")
    rate = a.select_rate(Frame("a", "b", None, 1000))
    assert rate.bits_per_second < 11e6


def test_broadcast_uses_base_rate(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    rate = a.select_rate(Frame("a", BROADCAST, None, 64, kind="mgmt"))
    assert rate.name == "1Mbps"


def test_fixed_rate_respected(sim, world, medium):
    pinned = RATE_BY_NAME["2Mbps"]
    a = _station(sim, world, medium, "a", (10, 10), fixed_rate=pinned)
    _station(sim, world, medium, "b", (12, 10))
    assert a.select_rate(Frame("a", "b", None, 100)) is pinned


def test_carrier_sense_defers(sim, world, medium):
    """While one long transmission is on the air, a second sender backs off
    instead of colliding (both are in carrier-sense range)."""
    a = _station(sim, world, medium, "a", (10, 10))
    b = _station(sim, world, medium, "b", (12, 10))
    c = _station(sim, world, medium, "c", (14, 10))
    got = []
    c.on_receive = lambda f: got.append(f.src)
    # a transmits a large frame; b tries during a's airtime.
    a.send(Frame("a", "c", None, 1400))
    b.send(Frame("b", "c", None, 1400))
    sim.run(until=2.0)
    assert sorted(got) == ["a", "b"]  # both eventually delivered
    assert a.stats["tx_success"] == 1 and b.stats["tx_success"] == 1


def test_half_duplex_self_busy(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    _station(sim, world, medium, "b", (12, 10))
    a.send(Frame("a", "b", None, 1400))
    sim.run(max_events=1)  # the DIFS-deferred attempt starts transmitting
    assert medium.busy_for(a)


def test_retry_limit_and_drop_issue(sim, world, medium):
    world2 = type(world)(10000, 100)
    medium2 = WirelessMedium(sim, world2)
    world2.place("a", (0, 50))
    world2.place("b", (9000, 50))
    a = CsmaMac(sim, medium2, "a", retry_limit=2)
    CsmaMac(sim, medium2, "b")
    a.send(Frame("a", "b", None, 500))
    sim.run(until=10.0)
    assert a.stats["tx_retry_drops"] == 1
    issues = sim.tracer.select("issue.radio")
    assert len(issues) == 1


def test_set_channel(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    a.set_channel(11)
    assert a.channel == 11
    with pytest.raises(ConfigurationError):
        a.set_channel(13)


def test_hidden_terminal_collisions(sim, world):
    """Two low-power senders out of carrier-sense range of each other but
    both audible at a middle receiver: decode failures occur."""
    big = type(world)(200, 20)
    medium2 = WirelessMedium(sim, big)
    medium2.propagation.shadowing_sigma_db = 0.0
    big.place("left", (0, 10))
    big.place("right", (120, 10))
    big.place("mid", (60, 10))
    left = CsmaMac(sim, medium2, "left", tx_power_dbm=5.0)
    right = CsmaMac(sim, medium2, "right", tx_power_dbm=5.0)
    mid = CsmaMac(sim, medium2, "mid", tx_power_dbm=5.0)
    # They cannot hear each other...
    assert not medium2.busy_for(right)
    # ...and both hammer the middle station with near-synchronous traffic.
    sim.every(0.01, lambda: left.send(Frame("left", "mid", None, 1400)))
    sim.every(0.0101, lambda: right.send(Frame("right", "mid", None, 1400)))
    sim.run(until=5.0)
    assert medium2.total_decode_failures > 0


def test_airtime_accounting(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    _station(sim, world, medium, "b", (12, 10))
    frame = Frame("a", "b", None, 1000)
    expected_airtime = frame.airtime(11e6, PREAMBLE_S) + ACK_S + 10e-6
    a.send(frame)
    sim.run(until=1.0)
    assert a.stats["busy_time"] == pytest.approx(expected_airtime, rel=0.01)


def test_promiscuous_station_overhears_unicast(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    b = _station(sim, world, medium, "b", (14, 10))
    snoop = _station(sim, world, medium, "snoop", (12, 10))
    snoop.promiscuous = True
    overheard = []
    snoop.on_receive = overheard.append
    a.send(Frame("a", "b", "secret", 100))
    sim.run(until=1.0)
    assert len(overheard) == 1
    assert overheard[0].dst == "b"
    # The intended receiver still gets it normally.
    assert b.stats["rx_frames"] == 1


def test_promiscuous_acks_offsegment_destination(sim, world, medium):
    """A frame to an address not on the medium is 'delivered' when a
    promiscuous bridge picks it up (the AP acks for the wired side)."""
    a = _station(sim, world, medium, "a", (10, 10))
    ap = _station(sim, world, medium, "ap", (12, 10))
    ap.promiscuous = True
    a.send(Frame("a", "wired-server", None, 100))
    sim.run(until=1.0)
    assert a.stats["tx_success"] == 1
    assert ap.stats["rx_frames"] == 1


def test_non_promiscuous_never_overhears(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10))
    _station(sim, world, medium, "b", (14, 10))
    bystander = _station(sim, world, medium, "bystander", (12, 10))
    got = []
    bystander.on_receive = got.append
    a.send(Frame("a", "b", None, 100))
    sim.run(until=1.0)
    assert got == []


def test_channel_airtime_survey(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10), channel=6)
    _station(sim, world, medium, "b", (12, 10), channel=6)
    for _ in range(5):
        a.send(Frame("a", "b", None, 1000))
    sim.run(until=2.0)
    assert medium.channel_airtime.get(6, 0.0) > 0.0
    assert medium.channel_airtime.get(1, 0.0) == 0.0


def test_scan_and_select_moves_off_congested_channel(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10), channel=6)
    b = _station(sim, world, medium, "b", (12, 10), channel=6)
    jammer = _station(sim, world, medium, "jam", (20, 10), channel=6)
    _station(sim, world, medium, "jam-rx", (22, 10), channel=6)
    sim.every(0.01, lambda: jammer.send(Frame("jam", "jam-rx", None, 1400)))
    sim.run(until=5.0)
    choice = a.scan_and_select()
    assert choice != 6
    assert a.channel == choice
    # Retune is traced for the analysis layer.
    assert sim.tracer.select("mac.retune")


def test_scan_on_quiet_band_keeps_lowest_channel(sim, world, medium):
    a = _station(sim, world, medium, "a", (10, 10), channel=1)
    assert a.scan_and_select() == 1
