"""Tests for leases and service records."""

from __future__ import annotations

import pytest

from repro.discovery.leases import LeaseTable
from repro.discovery.records import (
    MATCH_ALL,
    ServiceItem,
    ServiceProxy,
    ServiceTemplate,
    new_service_id,
)
from repro.kernel.errors import ConfigurationError, LeaseError


# ---------------------------------------------------------------------------
# Leases
# ---------------------------------------------------------------------------

def test_grant_and_remaining(sim):
    table = LeaseTable(sim, max_duration=100.0)
    lease = table.grant("alice", "projector", 30.0)
    assert lease.remaining(sim.now) == pytest.approx(30.0)
    assert not lease.expired(sim.now)
    assert len(table) == 1


def test_duration_clamped_to_max(sim):
    table = LeaseTable(sim, max_duration=50.0)
    lease = table.grant("alice", "r", 500.0)
    assert lease.duration == 50.0


def test_nonpositive_duration_rejected(sim):
    table = LeaseTable(sim)
    with pytest.raises(LeaseError):
        table.grant("alice", "r", 0.0)


def test_expiry_fires_callback(sim):
    expired = []
    table = LeaseTable(sim, on_expired=expired.append, sweep_interval=0.5)
    table.grant("alice", "projector", 5.0)
    sim.run(until=10.0)
    assert len(expired) == 1
    assert expired[0].holder == "alice"
    assert table.expired_count == 1
    assert len(table) == 0


def test_renewal_extends(sim):
    table = LeaseTable(sim, sweep_interval=0.5)
    expired = []
    table.on_expired = expired.append
    lease = table.grant("alice", "r", 5.0)
    # Renew every 2 seconds for 20 seconds: never expires.
    task = sim.every(2.0, lambda: table.renew(lease.lease_id))
    sim.run(until=20.0)
    task.cancel()
    assert expired == []
    sim.run(until=30.0)
    assert len(expired) == 1


def test_renew_unknown_or_expired_raises(sim):
    table = LeaseTable(sim, sweep_interval=0.5)
    with pytest.raises(LeaseError):
        table.renew(999)
    lease = table.grant("a", "r", 1.0)
    sim.run(until=5.0)
    with pytest.raises(LeaseError):
        table.renew(lease.lease_id)


def test_cancel(sim):
    table = LeaseTable(sim)
    lease = table.grant("a", "r", 10.0)
    cancelled = table.cancel(lease.lease_id)
    assert cancelled.cancelled
    assert len(table) == 0
    with pytest.raises(LeaseError):
        table.cancel(lease.lease_id)


def test_holder_of(sim):
    table = LeaseTable(sim, sweep_interval=0.5)
    table.grant("alice", "projector", 5.0)
    assert table.holder_of("projector").holder == "alice"
    assert table.holder_of("other") is None
    sim.run(until=10.0)
    assert table.holder_of("projector") is None


def test_live_listing(sim):
    table = LeaseTable(sim, sweep_interval=10.0)
    table.grant("a", "r1", 2.0)
    table.grant("b", "r2", 50.0)
    sim.run(until=5.0)  # r1 expired but not yet swept
    live = table.live()
    assert [l.holder for l in live] == ["b"]


def test_counters(sim):
    table = LeaseTable(sim, sweep_interval=0.5)
    lease = table.grant("a", "r", 5.0)
    table.renew(lease.lease_id)
    assert table.granted_count == 1
    assert table.renewed_count == 1


def test_stop_halts_sweeping(sim):
    expired = []
    table = LeaseTable(sim, on_expired=expired.append, sweep_interval=0.5)
    table.grant("a", "r", 1.0)
    table.stop()
    sim.run(until=10.0)
    assert expired == []  # nobody sweeps anymore


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------

def _item(**attrs) -> ServiceItem:
    return ServiceItem(new_service_id(), "projection",
                       ServiceProxy("adapter", 21, "vnc"), attrs)


def test_service_ids_unique():
    assert new_service_id() != new_service_id()


def test_item_requires_type_and_id():
    with pytest.raises(ConfigurationError):
        ServiceItem("", "t", ServiceProxy("a", 1, "p"))
    with pytest.raises(ConfigurationError):
        ServiceItem("id", "", ServiceProxy("a", 1, "p"))


def test_proxy_validation():
    with pytest.raises(ConfigurationError):
        ServiceProxy("a", -1, "p")
    with pytest.raises(ConfigurationError):
        ServiceProxy("a", 1, "p", code_bytes=-5)


def test_item_wire_bytes_grow_with_attributes_and_code():
    small = _item()
    big = ServiceItem(new_service_id(), "projection",
                      ServiceProxy("adapter", 21, "vnc", code_bytes=50000),
                      {"room": "A", "building": "221"})
    assert big.wire_bytes > small.wire_bytes


def test_match_all_template():
    assert MATCH_ALL.matches(_item())


def test_template_type_matching():
    template = ServiceTemplate(service_type="projection")
    assert template.matches(_item())
    assert not template.matches(ServiceItem(
        new_service_id(), "printer", ServiceProxy("x", 1, "ipp")))


def test_template_id_matching():
    item = _item()
    assert ServiceTemplate(service_id=item.service_id).matches(item)
    assert not ServiceTemplate(service_id="svc-9999").matches(item)


def test_template_attribute_subset_matching():
    item = _item(room="A", floor=2)
    assert ServiceTemplate(attributes={"room": "A"}).matches(item)
    assert ServiceTemplate(attributes={"room": "A", "floor": 2}).matches(item)
    assert not ServiceTemplate(attributes={"room": "B"}).matches(item)
    assert not ServiceTemplate(attributes={"wing": "N"}).matches(item)


def test_template_combined_fields():
    item = _item(room="A")
    good = ServiceTemplate("projection", item.service_id, {"room": "A"})
    assert good.matches(item)
    assert not ServiceTemplate("projection", item.service_id,
                               {"room": "B"}).matches(item)
