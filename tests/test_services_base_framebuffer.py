"""Tests for the RPC framework, framebuffer and content generators."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError, ServiceError, SessionError
from repro.phys.devices import Device
from repro.services.base import RpcClient, RpcService
from repro.services.content import Animation, MixedContent, SlideShow, TypingContent
from repro.services.framebuffer import BYTES_PER_PIXEL, Framebuffer


@pytest.fixture
def nodes(sim, world, medium):
    server_dev = Device(sim, world, "srv", (10, 10), medium=medium)
    client_dev = Device(sim, world, "cli", (12, 10), medium=medium)
    return server_dev, client_dev


# ---------------------------------------------------------------------------
# RPC
# ---------------------------------------------------------------------------

def test_rpc_roundtrip(sim, nodes):
    server_dev, client_dev = nodes
    service = RpcService(sim, server_dev, "calc", 70, "calc-protocol")
    service.expose("add", lambda src, a=0, b=0: a + b)
    client = RpcClient(sim, client_dev, service.service_item("calc").proxy)
    results = []
    client.call("add", {"a": 2, "b": 3},
                lambda r: results.append((r.ok, r.value)))
    sim.run(until=2.0)
    assert results == [(True, 5)]
    assert service.calls_served == 1


def test_rpc_unknown_method(sim, nodes):
    server_dev, client_dev = nodes
    service = RpcService(sim, server_dev, "calc", 70, "p")
    client = RpcClient(sim, client_dev, service.service_item("calc").proxy)
    results = []
    client.call("nope", {}, results.append)
    sim.run(until=2.0)
    assert results[0].ok is False
    assert "nope" in results[0].error
    assert service.calls_failed == 1


def test_rpc_service_error_propagates(sim, nodes):
    server_dev, client_dev = nodes

    def guarded(src, **kwargs):
        raise SessionError("not yours")

    service = RpcService(sim, server_dev, "s", 70, "p")
    service.expose("guarded", guarded)
    client = RpcClient(sim, client_dev, service.service_item("s").proxy)
    results = []
    client.call("guarded", {}, results.append)
    sim.run(until=2.0)
    assert results[0].ok is False and results[0].error == "not yours"


def test_rpc_token_passed_as_underscore_kwarg(sim, nodes):
    server_dev, client_dev = nodes
    seen = []
    service = RpcService(sim, server_dev, "s", 70, "p")
    service.expose("probe", lambda src, _token="": seen.append(_token) or True)
    client = RpcClient(sim, client_dev, service.service_item("s").proxy)
    client.call("probe", {}, None, token="secret-token")
    sim.run(until=2.0)
    assert seen == ["secret-token"]


def test_rpc_timeout_delivers_none(sim, nodes):
    _server_dev, client_dev = nodes
    from repro.discovery.records import ServiceProxy

    client = RpcClient(sim, client_dev, ServiceProxy("nobody-home", 77, "p"),
                       timeout=0.5)
    results = []
    client.call("anything", {}, results.append)
    sim.run(until=5.0)
    assert results == [None]
    assert client.timeouts == 1


def test_rpc_double_expose_rejected(sim, nodes):
    server_dev, _ = nodes
    service = RpcService(sim, server_dev, "s", 70, "p")
    service.expose("m", lambda src: None)
    with pytest.raises(ConfigurationError):
        service.expose("m", lambda src: None)


def test_service_item_carries_proxy(sim, nodes):
    server_dev, _ = nodes
    service = RpcService(sim, server_dev, "s", 70, "proto", code_bytes=999)
    item = service.service_item("stype", room="A")
    assert item.proxy.provider == "srv"
    assert item.proxy.port == 70
    assert item.proxy.code_bytes == 999
    assert item.attributes["room"] == "A"


# ---------------------------------------------------------------------------
# Framebuffer
# ---------------------------------------------------------------------------

def test_framebuffer_geometry():
    fb = Framebuffer(1024, 768, tile=64)
    assert fb.cols == 16 and fb.rows == 12
    assert fb.total_pixels == 1024 * 768


def test_touch_rect_marks_covered_tiles():
    fb = Framebuffer(256, 256, tile=64)
    touched = fb.touch_rect(0, 0, 65, 65)  # spills into 2x2 tiles
    assert touched == 4
    assert len(fb.dirty_since(0)) == 4


def test_touch_all_marks_everything():
    fb = Framebuffer(256, 256, tile=64)
    fb.touch_all()
    assert len(fb.dirty_since(0)) == 16


def test_versions_monotone_and_dirty_since():
    fb = Framebuffer(256, 256, tile=64)
    fb.touch_rect(0, 0, 10, 10)
    v1 = fb.version
    assert fb.dirty_since(v1) == []
    fb.touch_rect(128, 128, 10, 10)
    updates = fb.dirty_since(v1)
    assert len(updates) == 1
    assert (updates[0].col, updates[0].row) == (2, 2)


def test_dirty_cost_matches_update_list():
    fb = Framebuffer(1024, 768, tile=64)
    fb.touch_rect(0, 0, 200, 100, compression_ratio=0.5)
    tiles, cost, pixels = fb.dirty_cost(0)
    updates = fb.dirty_since(0)
    assert tiles == len(updates)
    assert cost == sum(u.payload_bytes for u in updates)
    assert pixels == sum(u.pixels for u in updates)


def test_compression_ratio_scales_cost():
    fb = Framebuffer(256, 256, tile=64)
    fb.touch_all(compression_ratio=0.1)
    _t, cheap, _p = fb.dirty_cost(0)
    fb.touch_all(compression_ratio=1.0)
    _t, expensive, _p = fb.dirty_cost(0)
    assert expensive == pytest.approx(
        256 * 256 * BYTES_PER_PIXEL, rel=0.01)
    assert cheap < expensive / 5


def test_edge_tiles_partial_pixels():
    fb = Framebuffer(100, 100, tile=64)  # edge tiles are 36 wide/high
    fb.touch_all()
    _tiles, _cost, pixels = fb.dirty_cost(0)
    assert pixels == 100 * 100


def test_invalid_rect_rejected():
    fb = Framebuffer()
    with pytest.raises(ConfigurationError):
        fb.touch_rect(0, 0, 0, 10)
    with pytest.raises(ConfigurationError):
        fb.touch_rect(0, 0, 10, 10, compression_ratio=0.0)


# ---------------------------------------------------------------------------
# Content generators
# ---------------------------------------------------------------------------

def test_slideshow_flips_at_dwell_rate(sim):
    fb = Framebuffer(256, 256)
    show = SlideShow(sim, fb, dwell_s=10.0).start()
    sim.run(until=60.0)
    assert 3 <= show.updates_generated <= 10


def test_animation_rate(sim):
    fb = Framebuffer()
    animation = Animation(sim, fb, fps=10.0).start()
    sim.run(until=5.0)
    assert animation.updates_generated == pytest.approx(50, abs=2)


def test_typing_touches_small_regions(sim):
    fb = Framebuffer()
    typing = TypingContent(sim, fb, keystrokes_per_s=5.0).start()
    sim.run(until=4.0)
    assert typing.updates_generated == pytest.approx(20, abs=1)
    _t, cost, _p = fb.dirty_cost(0)
    assert cost < 10_000  # keystrokes are cheap


def test_mixed_content_cycles(sim):
    fb = Framebuffer()
    mixed = MixedContent(sim, fb, dwell_s=10.0, animation_duty=0.5,
                         fps=10.0).start()
    sim.run(until=30.0)
    assert mixed.slides.updates_generated >= 2
    assert mixed.animation.updates_generated >= 10
    mixed.stop()
    count = mixed.updates
    sim.run(until=60.0)
    assert mixed.updates == count  # fully stopped


def test_generator_stop(sim):
    fb = Framebuffer()
    animation = Animation(sim, fb, fps=10.0).start()
    sim.run(until=1.0)
    animation.stop()
    count = animation.updates_generated
    sim.run(until=5.0)
    assert animation.updates_generated == count


def test_content_validation(sim):
    fb = Framebuffer()
    with pytest.raises(ConfigurationError):
        SlideShow(sim, fb, dwell_s=0.0)
    with pytest.raises(ConfigurationError):
        Animation(sim, fb, fps=0.0)
    with pytest.raises(ConfigurationError):
        MixedContent(sim, fb, animation_duty=1.5)


def test_rpc_handler_crash_isolated(sim, nodes):
    """A buggy handler returns an internal error instead of killing the
    simulation, and the defect surfaces as an abstract-layer issue."""
    server_dev, client_dev = nodes

    def buggy(src, **kwargs):
        raise ValueError("whoops")

    service = RpcService(sim, server_dev, "s", 70, "p")
    service.expose("buggy", buggy)
    client = RpcClient(sim, client_dev, service.service_item("s").proxy)
    results = []
    client.call("buggy", {}, results.append)
    sim.run(until=2.0)
    assert results[0].ok is False
    assert "internal error" in results[0].error
    assert sim.tracer.select("issue.application")
