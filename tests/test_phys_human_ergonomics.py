"""Tests for the physical user, speech recognition and ergonomics."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError
from repro.phys.ergonomics import (
    CompatibilityReport,
    FormFactor,
    Mismatch,
    check_compatibility,
    tether_constraint,
)
from repro.phys.human import (
    PhysicalProfile,
    PhysicalUser,
    SpeechRecognizer,
    SpeechSignal,
)


def _profile(**kwargs) -> PhysicalProfile:
    defaults = dict(name="u")
    defaults.update(kwargs)
    return PhysicalProfile(**defaults)


# ---------------------------------------------------------------------------
# PhysicalProfile / PhysicalUser
# ---------------------------------------------------------------------------

def test_profile_validation():
    with pytest.raises(ConfigurationError):
        _profile(speech_clarity=1.5)
    with pytest.raises(ConfigurationError):
        _profile(vision_acuity=-0.1)
    with pytest.raises(ConfigurationError):
        _profile(reach_m=0.0)


def test_biometric_signature_stable_and_distinct():
    a = _profile(name="alice")
    assert a.biometric_signature() == _profile(name="alice").biometric_signature()
    assert a.biometric_signature() != _profile(name="bob").biometric_signature()


def test_speak_produces_signal(sim):
    user = PhysicalUser(sim, _profile(speech_level_db=60.0))
    signal = user.speak(["hello", "world"])
    assert isinstance(signal, SpeechSignal)
    assert signal.level_db == 60.0
    assert signal.words == ("hello", "world")


def test_speak_empty_rejected(sim):
    user = PhysicalUser(sim, _profile())
    with pytest.raises(ConfigurationError):
        user.speak([])


def test_can_hear(sim):
    user = PhysicalUser(sim, _profile(hearing_threshold_db=30.0))
    assert user.can_hear(40.0)
    assert not user.can_hear(20.0)


# ---------------------------------------------------------------------------
# SpeechRecognizer
# ---------------------------------------------------------------------------

def test_word_accuracy_monotone_in_snr(sim):
    recognizer = SpeechRecognizer(sim)
    values = [recognizer.word_accuracy(snr) for snr in (-10, 0, 12, 25, 40)]
    assert values == sorted(values)


def test_word_accuracy_capped_by_clarity(sim):
    recognizer = SpeechRecognizer(sim)
    assert recognizer.word_accuracy(60.0, clarity=0.8) <= 0.8


def test_recognize_high_snr_mostly_correct(sim):
    recognizer = SpeechRecognizer(sim)
    user = PhysicalUser(sim, _profile(speech_clarity=1.0))
    heard = recognizer.recognize(user.speak(["a"] * 200), snr_db=40.0)
    correct = sum(1 for w in heard if w is not None)
    assert correct >= 195
    assert recognizer.measured_wer <= 0.05


def test_recognize_low_snr_mostly_wrong(sim):
    recognizer = SpeechRecognizer(sim)
    user = PhysicalUser(sim, _profile())
    recognizer.recognize(user.speak(["a"] * 200), snr_db=-10.0)
    assert recognizer.measured_wer >= 0.95


def test_measured_wer_no_input(sim):
    assert SpeechRecognizer(sim).measured_wer == 0.0


def test_recognizer_bad_slope(sim):
    with pytest.raises(ConfigurationError):
        SpeechRecognizer(sim, slope_db=0.0)


# ---------------------------------------------------------------------------
# Ergonomics
# ---------------------------------------------------------------------------

def test_good_fit_is_compatible():
    form = FormFactor("kiosk", control_size_mm=20, glyph_size_mm=6,
                      weight_kg=0.1, portable=False)
    report = check_compatibility(form, _profile())
    assert report.compatible
    assert report.score == pytest.approx(1.0)
    assert report.mismatches == []


def test_tiny_controls_mismatch_low_dexterity():
    form = FormFactor("pda", control_size_mm=4.0)
    report = check_compatibility(form, _profile(dexterity=0.4))
    aspects = [m.aspect for m in report.mismatches]
    assert "controls" in aspects


def test_small_glyphs_vs_low_vision():
    form = FormFactor("pda", glyph_size_mm=1.5)
    report = check_compatibility(form, _profile(vision_acuity=0.4))
    assert any(m.aspect == "display" for m in report.mismatches)


def test_glyph_requirement_scales_with_distance():
    near = FormFactor("panel", glyph_size_mm=3.0, operating_distance_m=0.5)
    far = FormFactor("panel2", glyph_size_mm=3.0, operating_distance_m=3.0)
    profile = _profile(vision_acuity=1.0)
    assert check_compatibility(near, profile).compatible
    assert any(m.aspect == "display"
               for m in check_compatibility(far, profile).mismatches)


def test_heavy_portable_mismatch():
    form = FormFactor("brick", weight_kg=8.0, portable=True)
    report = check_compatibility(form, _profile(carry_limit_kg=2.0))
    assert any(m.aspect == "weight" for m in report.mismatches)


def test_heavy_fixture_no_weight_mismatch():
    form = FormFactor("projector", weight_kg=10.0, portable=False)
    report = check_compatibility(form, _profile(carry_limit_kg=2.0))
    assert not any(m.aspect == "weight" for m in report.mismatches)


def test_proximity_blocker():
    form = FormFactor("wall-panel", requires_proximity=True,
                      operating_distance_m=2.0)
    report = check_compatibility(form, _profile(reach_m=0.7))
    assert not report.compatible


def test_score_multiplicative():
    form = FormFactor("awful", control_size_mm=2.0, glyph_size_mm=0.5)
    report = check_compatibility(form, _profile(dexterity=0.5,
                                                vision_acuity=0.5))
    assert 0.0 <= report.score < 0.5
    assert len(report.mismatches) >= 2


def test_mismatch_severity_validation():
    with pytest.raises(ConfigurationError):
        Mismatch("x", "bad", 0.0)
    with pytest.raises(ConfigurationError):
        Mismatch("x", "bad", 1.5)


def test_tether_constraint():
    assert tether_constraint(FormFactor("laptop", requires_proximity=True,
                                        operating_distance_m=0.5)) is not None
    assert tether_constraint(FormFactor("badge")) is None


def test_form_factor_validation():
    with pytest.raises(ConfigurationError):
        FormFactor("x", control_size_mm=0.0)
    with pytest.raises(ConfigurationError):
        FormFactor("x", weight_kg=-1.0)
