"""Tests for building an LPC model from a live deployment."""

from __future__ import annotations

import pytest

from repro.core.layers import Layer
from repro.core.live import model_from_room
from repro.experiments.workloads import projector_room
from repro.resource.faculties import casual_user, researcher


def test_model_from_room_entities():
    room = projector_room(seed=60, register=False)
    model = model_from_room(room)
    names = {e.name for e in model.entities()}
    assert names == {"presenter", "laptop", "adapter", "registry"}
    presenter = model.entity("presenter")
    assert presenter.facet_at(Layer.RESOURCE).subject.name == "presenter"


def test_model_from_room_facets_backed_by_live_objects():
    room = projector_room(seed=61, register=False)
    model = model_from_room(room)
    adapter = model.entity("adapter")
    assert adapter.facet_at(Layer.ABSTRACT).subject is room.smart
    assert adapter.facet_at(Layer.RESOURCE).subject is room.adapter.platform


def test_model_from_room_checks_researcher_clean():
    room = projector_room(seed=62, register=False)
    model = model_from_room(room, presenter_faculties=researcher("r"))
    # The lab user passes resource and intentional checks; the only
    # tolerated mismatch is ergonomic weight.
    resource_violations = [v for v in model.violations()
                           if v.layer == Layer.RESOURCE]
    intentional_violations = [v for v in model.violations()
                              if v.layer == Layer.INTENTIONAL]
    assert resource_violations == []
    # researcher with presentation goal against research purpose: the
    # default goal is presentation, which the prototype over-burdens —
    # acceptable to the researcher only because they administer systems.
    assert len(intentional_violations) <= 1


def test_model_from_room_checks_casual_violations():
    room = projector_room(seed=63, register=False)
    model = model_from_room(room, presenter_faculties=casual_user("c"))
    layers_with_violations = {v.layer for v in model.violations()}
    assert Layer.RESOURCE in layers_with_violations
    assert Layer.INTENTIONAL in layers_with_violations


def test_model_from_room_radio_check_uses_geometry():
    near = projector_room(seed=64, register=False)
    model_near = model_from_room(near)
    env_near = [c for c in model_near.checks(Layer.ENVIRONMENT)]
    assert env_near[0].satisfied

    far = projector_room(seed=65, register=False, width=1000.0,
                         laptop_pos=(1.0, 10.0), adapter_pos=(900.0, 10.0),
                         hub_pos=(500.0, 10.0))
    model_far = model_from_room(far)
    env_far = [c for c in model_far.checks(Layer.ENVIRONMENT)]
    assert not env_far[0].satisfied


def test_model_from_room_report_renders():
    room = projector_room(seed=66, register=False)
    model = model_from_room(room, presenter_faculties=casual_user("c"))
    text = model.report()
    assert "deployment:adapter" in text
    assert "VIOLATION" in text
