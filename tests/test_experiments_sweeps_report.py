"""Tests for the sweep utility and the all-in-one report."""

from __future__ import annotations

import pytest

from repro.experiments.harness import ExperimentResult
from repro.experiments.report import _QUICK_OVERRIDES, build_report, run_all
from repro.experiments.sweeps import averaged_over_seeds, grid, sweep
from repro.kernel.errors import ExperimentError


# ---------------------------------------------------------------------------
# grid / sweep
# ---------------------------------------------------------------------------

def test_grid_cartesian_product():
    points = grid(a=[1, 2], b=["x", "y"])
    assert len(points) == 4
    assert {"a": 2, "b": "y"} in points


def test_grid_empty_rejected():
    with pytest.raises(ExperimentError):
        grid()


def test_sweep_runs_every_point_and_seed():
    calls = []

    def run_one(seed, knob):
        calls.append((seed, knob))
        return {"value": knob * 10 + seed}

    result = sweep("X", "t", run_one, grid(knob=[1, 2]), seeds=(0, 1))
    assert len(result.rows) == 4
    assert sorted(calls) == [(0, 1), (0, 2), (1, 1), (1, 2)]
    assert result.column("value") == [10, 11, 20, 21]


def test_sweep_column_selection():
    result = sweep("X", "t", lambda seed, k: {"m": k, "junk": 0},
                   grid(k=[3]), columns=("k", "m"))
    assert result.columns == ["k", "m"]
    assert result.rows[0] == {"k": 3, "m": 3}


def test_sweep_deterministic_per_seed():
    from repro.kernel.scheduler import Simulator

    def run_one(seed, n):
        sim = Simulator(seed=seed)
        return {"draw": float(sim.rng("x").random()) + n}

    a = sweep("X", "t", run_one, grid(n=[0]), seeds=(5,))
    b = sweep("X", "t", run_one, grid(n=[0]), seeds=(5,))
    assert a.rows == b.rows


def test_averaged_over_seeds():
    result = ExperimentResult("X", "t", ["seed", "knob", "metric"])
    for seed in (0, 1):
        for knob in (1, 2):
            result.add_row(seed=seed, knob=knob, metric=knob * 10 + seed)
    averaged = averaged_over_seeds(result, group_by=("knob",),
                                   metrics=("metric",))
    by_knob = {row["knob"]: row for row in averaged.rows}
    assert by_knob[1]["mean_metric"] == pytest.approx(10.5)
    assert by_knob[2]["mean_metric"] == pytest.approx(20.5)
    assert by_knob[1]["replicates"] == 2


def test_sweep_point_wins_key_clash_over_measured_row():
    """A parameter point's value takes precedence over a same-named key in
    the measured row, so callers can rename without surprises."""
    result = sweep("X", "t",
                   lambda seed, knob: {"knob": 999, "metric": knob},
                   grid(knob=[1, 2]))
    assert result.column("knob") == [1, 2]
    assert result.column("metric") == [1, 2]


def test_sweep_seed_wins_over_measured_seed():
    result = sweep("X", "t", lambda seed, k: {"seed": -1, "v": k},
                   grid(k=[5]), seeds=(7,))
    assert result.rows[0]["seed"] == 7


def test_sweep_empty_points_rejected():
    with pytest.raises(ExperimentError):
        sweep("X", "t", lambda seed: {"v": 1}, points=[])


def test_sweep_parallel_rows_identical_to_serial():
    """workers=N must give byte-identical rows in identical order — the
    determinism contract the bench gate also enforces on E2."""
    from repro.kernel.scheduler import Simulator

    def run_one(seed, n):
        sim = Simulator(seed=seed)
        return {"draw": float(sim.rng("x").random()) + n, "n2": n * n}

    points = grid(n=[0, 1, 2, 3])
    serial = sweep("X", "t", run_one, points, seeds=(3, 4))
    parallel = sweep("X", "t", run_one, points, seeds=(3, 4), workers=4)
    assert parallel.rows == serial.rows
    assert parallel.columns == serial.columns


def test_sweep_single_task_stays_serial():
    # workers>1 with one task short-circuits to the serial path.
    result = sweep("X", "t", lambda seed, k: {"v": k}, grid(k=[1]),
                   workers=8)
    assert result.rows == [{"seed": 0, "k": 1, "v": 1}]


def test_sweep_rejects_negative_and_non_int_workers():
    with pytest.raises(ExperimentError):
        sweep("X", "t", lambda seed, k: {"v": k}, grid(k=[1]), workers=-1)
    with pytest.raises(ExperimentError):
        sweep("X", "t", lambda seed, k: {"v": k}, grid(k=[1]), workers=True)


def test_sweep_without_fork_warns_once_and_records_serial(monkeypatch):
    import repro.experiments.sweeps as sweeps_mod

    monkeypatch.setattr(sweeps_mod, "_fork_available", lambda: False)
    monkeypatch.setattr(sweeps_mod, "_WARNED_NO_FORK", False)
    with pytest.warns(RuntimeWarning, match="fork.*unavailable"):
        result = sweep("X", "t", lambda seed, k: {"v": k},
                       grid(k=[1, 2]), workers=4)
    assert result.rows == [{"seed": 0, "k": 1, "v": 1},
                           {"seed": 0, "k": 2, "v": 2}]
    assert result.meta["parallel"] is False
    assert result.meta["workers"] == 4
    # Second sweep: same fallback, but the warning fires only once.
    import warnings as warnings_mod
    with warnings_mod.catch_warnings():
        warnings_mod.simplefilter("error")
        again = sweep("X", "t", lambda seed, k: {"v": k},
                      grid(k=[1, 2]), workers=4)
    assert again.meta["parallel"] is False


def test_sweep_parallel_records_meta():
    result = sweep("X", "t", lambda seed, k: {"v": k}, grid(k=[1, 2, 3]),
                   workers=2)
    assert result.meta["parallel"] is True
    assert result.meta["computed"] == 3 and result.meta["cached"] == 0


def test_sweep_parallel_records_per_chunk_walls():
    result = sweep("X", "t", lambda seed, k: {"v": k}, grid(k=[1, 2, 3]),
                   workers=2)
    # 3 tasks at the adaptive chunksize (1) = 3 chunks, each with a
    # worker-measured wall time, indexed by chunk regardless of the
    # imap_unordered completion order.  Table assembly is folded into
    # chunk arrival; the overlap saving rides along.
    walls = result.meta["chunk_walls"]
    per_chunk = walls["per_chunk"]
    assert len(per_chunk) == 3
    assert all(isinstance(w, float) and w >= 0.0 for w in per_chunk)
    assert isinstance(walls["assemble_overlap_s"], float)
    assert walls["assemble_overlap_s"] >= 0.0


def test_sweep_serial_has_no_chunk_walls():
    result = sweep("X", "t", lambda seed, k: {"v": k}, grid(k=[1, 2]))
    assert "chunk_walls" not in result.meta


def test_sweep_unpicklable_row_raises_clear_error():
    import threading

    def run_one(seed, k):
        return {"v": threading.Lock()}

    with pytest.raises(ExperimentError, match="cannot cross the process"):
        sweep("X", "t", run_one, grid(k=[1, 2, 3]), workers=2)


def test_sweep_unpicklable_point_raises_clear_error():
    import threading

    from repro.experiments.e2_interference import _measure_density_row

    # A picklable run_one takes the shared-pool path, where point values
    # must survive pickling too.
    with pytest.raises(ExperimentError, match="picklable"):
        sweep("X", "t", _measure_density_row,
              [{"pairs": threading.Lock(), "channel_plan": "x"},
               {"pairs": 1, "channel_plan": "y"}], workers=2)


def _run_one_boom(seed, k):
    raise ValueError("boom")


def _run_one_square(seed, k):
    return {"v": k * k}


def test_sweep_failure_resets_shared_pool():
    """A failure escaping pool.map must tear the shared pool down so the
    next sweep re-forks instead of running on a broken pool."""
    import repro.experiments.sweeps as sweeps_mod

    with pytest.raises(ValueError, match="boom"):
        sweep("X", "t", _run_one_boom, grid(k=[1, 2, 3]), workers=2)
    assert sweeps_mod._SHARED_POOL is None
    # The next parallel sweep gets a fresh pool and works normally.
    ok = sweep("X", "t", _run_one_square, grid(k=[1, 2, 3]), workers=2)
    assert ok.column("v") == [1, 4, 9]
    assert ok.meta["parallel"] is True


def test_averaged_over_seeds_aggregates_telemetry():
    result = ExperimentResult("X", "t", ["seed", "knob", "metric"])
    telemetry = []
    for seed in (0, 1):
        for knob in (1, 2):
            result.add_row(seed=seed, knob=knob, metric=knob * 10 + seed)
            telemetry.append({
                "sim_time": 5.0, "events_executed": 100 * knob,
                "records": 10, "records_dropped": 0,
                "spans": 4, "spans_open": 0,
                "issues_by_layer": {"resource": knob},
                "issues_by_column": {"device": knob},
                "metrics": {"counters": {"mac.queue_drops": seed}},
            })
    result.telemetry = telemetry
    averaged = averaged_over_seeds(result, group_by=("knob",),
                                   metrics=("metric",))
    assert len(averaged.telemetry) == len(averaged.rows)
    by_knob = {row["knob"]: entry
               for row, entry in zip(averaged.rows, averaged.telemetry)}
    assert by_knob[1]["replicates"] == 2
    assert by_knob[1]["events_executed"] == 200
    assert by_knob[2]["events_executed"] == 400
    assert by_knob[1]["issues_by_layer"] == {"resource": 2}
    assert by_knob[1]["metrics"]["counters"] == {"mac.queue_drops": 1}


def test_averaged_over_seeds_without_telemetry_stays_empty():
    result = ExperimentResult("X", "t", ["seed", "knob", "metric"])
    result.add_row(seed=0, knob=1, metric=1.0)
    averaged = averaged_over_seeds(result, group_by=("knob",),
                                   metrics=("metric",))
    assert averaged.telemetry == []


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

def test_quick_overrides_reference_real_experiments():
    from repro.experiments import list_experiments

    known = set(list_experiments())
    assert set(_QUICK_OVERRIDES) <= known


def test_run_all_subset():
    results = run_all(only=["E4-hijack", "F1-F5"])
    assert [r.experiment_id for r in results] == ["E4-hijack", "F1-F5"]


def test_run_all_bad_budget():
    with pytest.raises(ExperimentError):
        run_all(budget="luxurious")


def test_build_report_renders_sections():
    text = build_report(only=["E3-range-table", "E4-hijack"])
    assert "Reproduction report" in text
    assert "E3-range-table" in text and "E4-hijack" in text
    assert "wall time" in text
