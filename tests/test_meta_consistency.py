"""Meta-tests: keep the code, the classifier and the docs consistent.

These guard against drift: every issue topic the substrate emits must be
classifiable, every classifier topic should be plausible, and the public
API surface must import cleanly.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.core.concerns import TOPIC_LAYERS, ConcernClassifier

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

_ISSUE_CALL = re.compile(r"""(?:sim|self\.sim)\.issue\(\s*['"]([a-z_]+)['"]""")


def _emitted_topics() -> set:
    topics = set()
    for path in SRC.rglob("*.py"):
        for match in _ISSUE_CALL.finditer(path.read_text()):
            topics.add(match.group(1))
    return topics


def test_every_emitted_issue_topic_is_classifiable():
    """No substrate module may emit an issue topic the classifier would
    refuse — otherwise E9's instrumentation would crash mid-run."""
    classifier = ConcernClassifier()
    emitted = _emitted_topics()
    assert emitted, "expected to find sim.issue call sites"
    unknown = {t for t in emitted if classifier.classify_topic(t) is None}
    assert unknown == set(), f"unclassifiable issue topics: {unknown}"


def test_experiment_issue_topics_subset_of_map():
    # experiments also emit via sim.issue(...) — already covered above,
    # but double-check the experiment scripts specifically.
    exp_topics = set()
    for path in (SRC / "experiments").rglob("*.py"):
        for match in _ISSUE_CALL.finditer(path.read_text()):
            exp_topics.add(match.group(1))
    assert exp_topics <= set(TOPIC_LAYERS)


def test_public_api_star_imports():
    """Every name in every package's __all__ must resolve."""
    import importlib

    for package in ("repro", "repro.kernel", "repro.env", "repro.phys",
                    "repro.net", "repro.resource", "repro.discovery",
                    "repro.services", "repro.user", "repro.core",
                    "repro.metrics", "repro.experiments"):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name} missing"


def test_all_lists_sorted():
    """__all__ lists are kept sorted for reviewability."""
    import importlib

    for package in ("repro.kernel", "repro.env", "repro.net",
                    "repro.resource", "repro.metrics"):
        module = importlib.import_module(package)
        names = list(getattr(module, "__all__"))
        assert names == sorted(names), f"{package}.__all__ not sorted"


def test_design_doc_mentions_every_experiment():
    """DESIGN.md's index must cover every registered experiment family."""
    from repro.experiments import list_experiments

    design = (SRC.parent.parent / "DESIGN.md").read_text()
    families = set()
    for experiment_id in list_experiments():
        families.add(experiment_id.split("-")[0])
    for family in families:
        assert family in design, f"DESIGN.md missing experiment {family}"


def test_every_module_has_docstring():
    for path in SRC.rglob("*.py"):
        if path.name == "__main__.py":
            continue
        text = path.read_text().lstrip()
        assert text.startswith('"""'), f"{path} lacks a module docstring"
