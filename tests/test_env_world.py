"""Tests for world geometry and spatial queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.world import World
from repro.kernel.errors import ConfigurationError


def test_place_and_position(world):
    world.place("a", (10.0, 20.0))
    assert np.allclose(world.position_of("a"), [10.0, 20.0])


def test_duplicate_name_rejected(world):
    world.place("a", (0, 0))
    with pytest.raises(ConfigurationError):
        world.place("a", (1, 1))


def test_unknown_entity_rejected(world):
    with pytest.raises(ConfigurationError):
        world.position_of("ghost")


def test_positions_clipped_to_bounds(world):
    world.place("a", (-5.0, 1e9))
    x, y = world.position_of("a")
    assert x == 0.0 and y == world.height


def test_move(world):
    world.place("a", (0, 0))
    world.move("a", (5, 5))
    assert np.allclose(world.position_of("a"), [5, 5])


def test_invalid_extent_rejected():
    with pytest.raises(ConfigurationError):
        World(0, 10)
    with pytest.raises(ConfigurationError):
        World(10, -1)


def test_bad_position_shape_rejected(world):
    with pytest.raises(ConfigurationError):
        world.place("a", (1, 2, 3))


def test_distance_between_placements(world):
    a = world.place("a", (0, 0))
    b = world.place("b", (3, 4))
    assert a.distance_to(b) == pytest.approx(5.0)


def test_distances_from_vectorised(world):
    world.place("origin", (0, 0))
    world.place("b", (3, 4))
    world.place("c", (6, 8))
    dists = world.distances_from("origin", ["b", "c"])
    assert np.allclose(dists, [5.0, 10.0])


def test_distances_from_all_entities(world):
    world.place("a", (0, 0))
    world.place("b", (10, 0))
    dists = world.distances_from("a")
    assert len(dists) == 2  # includes self (clipped to minimum)


def test_minimum_separation_enforced(world):
    world.place("a", (5, 5))
    world.place("b", (5, 5))
    assert world.distances_from("a", ["b"])[0] == pytest.approx(0.1)


def test_pairwise_distances_symmetric_zero_diagonal(world):
    world.place("a", (0, 0))
    world.place("b", (10, 0))
    world.place("c", (0, 10))
    matrix = world.pairwise_distances(["a", "b", "c"])
    assert matrix.shape == (3, 3)
    assert np.allclose(np.diag(matrix), 0.0)
    assert np.allclose(matrix, matrix.T)
    assert matrix[0, 1] == pytest.approx(10.0)


def test_within_radius(world):
    world.place("centre", (50, 30))
    world.place("near", (52, 30))
    world.place("far", (90, 30))
    assert world.within("centre", 5.0) == ["near"]


def test_placement_property_setter(world):
    placement = world.place("a", (1, 1))
    placement.position = (7, 7)
    assert np.allclose(world.position_of("a"), [7, 7])


def test_len_and_contains(world):
    world.place("a", (0, 0))
    assert len(world) == 1
    assert "a" in world and "b" not in world
    assert world.names() == ["a"]


def test_distance_between_matches_vectorised(world):
    world.place("a", (3, 4))
    world.place("b", (30, 40))
    scalar = world.distance_between("a", "b")
    vector = float(world.distances_from("a", ["b"])[0])
    assert scalar == pytest.approx(vector)
    assert scalar == pytest.approx(45.0)


def test_distance_between_min_clip(world):
    world.place("a", (5, 5))
    world.place("b", (5, 5))
    assert world.distance_between("a", "b") == pytest.approx(0.1)


def test_distance_between_unknown_entity(world):
    world.place("a", (0, 0))
    with pytest.raises(ConfigurationError):
        world.distance_between("a", "ghost")


# ---------------------------------------------------------------------------
# Amortised-doubling placement buffer
# ---------------------------------------------------------------------------

def test_place_five_thousand_entities_is_fast():
    """Filling a big world must be O(n) amortised, not the O(n^2) an
    np.vstack-per-place build costs.  5k placements finish comfortably
    inside a generous wall-clock bound even on a loaded box."""
    import time

    world = World(1000.0, 1000.0)
    t0 = time.perf_counter()
    for i in range(5000):
        world.place(f"e{i}", ((i * 37) % 1000, (i * 91) % 1000))
    elapsed = time.perf_counter() - t0
    assert len(world) == 5000
    assert elapsed < 2.0, f"5k placements took {elapsed:.2f}s"


def test_place_buffer_growth_preserves_positions():
    world = World(50.0, 50.0)
    expected = {}
    for i in range(100):  # crosses several doubling boundaries
        xy = (i % 50, (i * 3) % 50)
        world.place(f"e{i}", xy)
        expected[f"e{i}"] = xy
    for name, xy in expected.items():
        assert np.allclose(world.position_of(name), xy)
    assert world.positions().shape == (100, 2)


def test_positions_view_tracks_moves(world):
    world.place("a", (1, 1))
    world.place("b", (2, 2))
    view = world.positions()
    world.move("a", (9, 9))
    assert np.allclose(view[0], [9, 9])  # view over the live buffer


def test_epoch_bumps_on_place_and_move(world):
    e0 = world.epoch
    world.place("a", (0, 0))
    assert world.epoch == e0 + 1
    world.move("a", (1, 1))
    assert world.epoch == e0 + 2
