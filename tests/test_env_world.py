"""Tests for world geometry and spatial queries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.world import World
from repro.kernel.errors import ConfigurationError


def test_place_and_position(world):
    world.place("a", (10.0, 20.0))
    assert np.allclose(world.position_of("a"), [10.0, 20.0])


def test_duplicate_name_rejected(world):
    world.place("a", (0, 0))
    with pytest.raises(ConfigurationError):
        world.place("a", (1, 1))


def test_unknown_entity_rejected(world):
    with pytest.raises(ConfigurationError):
        world.position_of("ghost")


def test_positions_clipped_to_bounds(world):
    world.place("a", (-5.0, 1e9))
    x, y = world.position_of("a")
    assert x == 0.0 and y == world.height


def test_move(world):
    world.place("a", (0, 0))
    world.move("a", (5, 5))
    assert np.allclose(world.position_of("a"), [5, 5])


def test_invalid_extent_rejected():
    with pytest.raises(ConfigurationError):
        World(0, 10)
    with pytest.raises(ConfigurationError):
        World(10, -1)


def test_bad_position_shape_rejected(world):
    with pytest.raises(ConfigurationError):
        world.place("a", (1, 2, 3))


def test_distance_between_placements(world):
    a = world.place("a", (0, 0))
    b = world.place("b", (3, 4))
    assert a.distance_to(b) == pytest.approx(5.0)


def test_distances_from_vectorised(world):
    world.place("origin", (0, 0))
    world.place("b", (3, 4))
    world.place("c", (6, 8))
    dists = world.distances_from("origin", ["b", "c"])
    assert np.allclose(dists, [5.0, 10.0])


def test_distances_from_all_entities(world):
    world.place("a", (0, 0))
    world.place("b", (10, 0))
    dists = world.distances_from("a")
    assert len(dists) == 2  # includes self (clipped to minimum)


def test_minimum_separation_enforced(world):
    world.place("a", (5, 5))
    world.place("b", (5, 5))
    assert world.distances_from("a", ["b"])[0] == pytest.approx(0.1)


def test_pairwise_distances_symmetric_zero_diagonal(world):
    world.place("a", (0, 0))
    world.place("b", (10, 0))
    world.place("c", (0, 10))
    matrix = world.pairwise_distances(["a", "b", "c"])
    assert matrix.shape == (3, 3)
    assert np.allclose(np.diag(matrix), 0.0)
    assert np.allclose(matrix, matrix.T)
    assert matrix[0, 1] == pytest.approx(10.0)


def test_within_radius(world):
    world.place("centre", (50, 30))
    world.place("near", (52, 30))
    world.place("far", (90, 30))
    assert world.within("centre", 5.0) == ["near"]


def test_placement_property_setter(world):
    placement = world.place("a", (1, 1))
    placement.position = (7, 7)
    assert np.allclose(world.position_of("a"), [7, 7])


def test_len_and_contains(world):
    world.place("a", (0, 0))
    assert len(world) == 1
    assert "a" in world and "b" not in world
    assert world.names() == ["a"]


def test_distance_between_matches_vectorised(world):
    world.place("a", (3, 4))
    world.place("b", (30, 40))
    scalar = world.distance_between("a", "b")
    vector = float(world.distances_from("a", ["b"])[0])
    assert scalar == pytest.approx(vector)
    assert scalar == pytest.approx(45.0)


def test_distance_between_min_clip(world):
    world.place("a", (5, 5))
    world.place("b", (5, 5))
    assert world.distance_between("a", "b") == pytest.approx(0.1)


def test_distance_between_unknown_entity(world):
    world.place("a", (0, 0))
    with pytest.raises(ConfigurationError):
        world.distance_between("a", "ghost")
