"""Tests for the scenario builders in repro.experiments.workloads."""

from __future__ import annotations

import pytest

from repro.env.radio import RATE_BY_NAME
from repro.experiments.workloads import (
    interferer_field,
    presentation_workflow,
    projector_room,
)


def test_room_assembles_all_parts():
    room = projector_room(seed=70)
    assert room.laptop.networked and room.adapter.networked
    assert room.adapter.projector is room.projector
    assert room.registry.address == "hub"
    assert room.client.laptop is room.laptop


def test_room_registers_services_by_default():
    room = projector_room(seed=71)
    room.sim.run(until=3.0)
    assert len(room.registry.items()) == 2


def test_room_register_false_skips_registration():
    room = projector_room(seed=72, register=False)
    room.sim.run(until=3.0)
    assert room.registry.items() == []


def test_room_fixed_rate_applied():
    rate = RATE_BY_NAME["2Mbps"]
    room = projector_room(seed=73, fixed_rate=rate, register=False)
    assert room.laptop.nic.mac.fixed_rate is rate
    assert room.adapter.nic.mac.fixed_rate is rate


def test_room_positions_respected():
    room = projector_room(seed=74, register=False,
                          laptop_pos=(3.0, 4.0), adapter_pos=(30.0, 20.0))
    assert tuple(room.laptop.position) == (3.0, 4.0)
    assert tuple(room.adapter.position) == (30.0, 20.0)


def test_room_session_lease_options():
    room = projector_room(seed=75, use_session_leases=False, register=False)
    assert room.smart.projection_sessions.leases is None
    room2 = projector_room(seed=75, session_lease_s=7.0, register=False)
    assert room2.smart.projection_sessions.leases is not None


def test_interferer_field_cochannel_plan():
    room = projector_room(seed=76, register=False)
    pairs = interferer_field(room, 4, channel_plan="cochannel")
    assert len(pairs) == 4
    assert all(p.sender.nic.channel == room.laptop.nic.channel
               for p in pairs)


def test_interferer_field_spread_plan():
    room = projector_room(seed=77, register=False)
    pairs = interferer_field(room, 6, channel_plan="spread")
    channels = {p.sender.nic.channel for p in pairs}
    assert channels == {1, 6, 11}


def test_interferer_field_unknown_plan():
    room = projector_room(seed=78, register=False)
    with pytest.raises(ValueError):
        interferer_field(room, 1, channel_plan="chaos")


def test_interferers_generate_traffic():
    room = projector_room(seed=79, register=False)
    pairs = interferer_field(room, 2, frames_per_second=20.0)
    room.sim.run(until=5.0)
    for pair in pairs:
        assert pair.sender.nic.mac.stats["tx_success"] > 50


def test_presentation_workflow_happy_path_callback():
    room = projector_room(seed=80)
    outcomes = []
    presentation_workflow(room, on_done=outcomes.append)
    room.sim.run(until=15.0)
    assert outcomes == [True]


def test_presentation_workflow_fails_without_services():
    room = projector_room(seed=81, register=False)  # nothing to discover
    outcomes = []
    presentation_workflow(room, on_done=outcomes.append)
    room.sim.run(until=20.0)
    assert outcomes == [False]


def test_rooms_with_same_seed_are_identical():
    def signature(seed):
        room = projector_room(seed=seed)
        presentation_workflow(room)
        room.sim.run(until=20.0)
        return (room.projector.frames_displayed,
                room.sim.events_executed,
                room.laptop.nic.mac.stats["tx_success"])

    assert signature(99) == signature(99)
    assert signature(99) != signature(100)
