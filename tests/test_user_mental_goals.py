"""Tests for mental models, conceptual burden and the intentional layer."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError
from repro.resource.faculties import casual_user, researcher
from repro.user.goals import (
    DesignPurpose,
    Goal,
    adoption_probability,
    commercial_product_purpose,
    harmony,
    presentation_goal,
    research_goal,
    research_prototype_purpose,
)
from repro.user.mental import (
    MentalModel,
    completion_probability,
    concept_capacity,
    step_success_probability,
)


# ---------------------------------------------------------------------------
# MentalModel
# ---------------------------------------------------------------------------

def test_believe_and_recall(sim):
    mental = MentalModel(sim, "alice", researcher())
    mental.believe("projector.on", True)
    assert mental.belief("projector.on") is True
    assert mental.belief("unknown", "default") == "default"


def test_observation_matching_belief_no_surprise(sim):
    mental = MentalModel(sim, "alice", researcher())
    mental.believe("lamp", True)
    assert mental.observe("lamp", True)
    assert mental.surprises == []


def test_observation_contradiction_records_surprise_and_issue(sim):
    mental = MentalModel(sim, "alice", researcher())
    mental.believe("lamp", True)
    assert not mental.observe("lamp", False)
    assert len(mental.surprises) == 1
    assert mental.belief("lamp") is False  # corrected
    assert len(sim.tracer.select("issue.mental")) == 1


def test_observation_of_unknown_key_adopted_silently(sim):
    mental = MentalModel(sim, "alice", researcher())
    assert mental.observe("new-fact", 42)
    assert mental.belief("new-fact") == 42


def test_consistency_fraction(sim):
    mental = MentalModel(sim, "alice", researcher())
    mental.believe("a", 1)
    mental.believe("b", 2)
    actual = {"a": 1, "b": 99, "c": 3}
    assert mental.consistency(actual) == pytest.approx(1 / 3)


def test_consistency_requires_state(sim):
    mental = MentalModel(sim, "alice", researcher())
    with pytest.raises(ConfigurationError):
        mental.consistency({})


def test_forget(sim):
    mental = MentalModel(sim, "a", researcher())
    mental.believe("x", 1)
    mental.forget("x")
    assert mental.belief("x") is None


# ---------------------------------------------------------------------------
# Conceptual burden
# ---------------------------------------------------------------------------

def test_capacity_higher_for_researchers():
    assert concept_capacity(researcher()) > concept_capacity(casual_user())


def test_capacity_grows_with_intuitiveness_and_consistency():
    user = casual_user()
    assert concept_capacity(user, 0.9) > concept_capacity(user, 0.1)
    assert concept_capacity(user, 0.5, True) > concept_capacity(user, 0.5, False)


def test_step_probability_decreases_with_burden():
    user = casual_user()
    values = [step_success_probability(n, user) for n in range(1, 13)]
    assert values == sorted(values, reverse=True)


def test_step_probability_bounds():
    for burden in (1, 6, 12):
        p = step_success_probability(burden, researcher())
        assert 0.0 < p < 1.0
    with pytest.raises(ConfigurationError):
        step_success_probability(0, researcher())


def test_completion_collapses_beyond_capacity():
    user = casual_user()
    easy = completion_probability(2, user)
    hard = completion_probability(12, user)
    assert easy > 0.9
    assert hard < 0.01


def test_researchers_tolerate_more_burden():
    assert completion_probability(8, researcher()) > \
        completion_probability(8, casual_user())


def test_retries_help_tolerant_users():
    user = casual_user()
    assert completion_probability(6, user, retries=3) >= \
        completion_probability(6, user, retries=0)


# ---------------------------------------------------------------------------
# Goals and harmony
# ---------------------------------------------------------------------------

def test_goal_validation():
    with pytest.raises(ConfigurationError):
        Goal("empty", requires=())
    with pytest.raises(ConfigurationError):
        Goal("bad", requires=("x",), acceptable_burden=0)


def test_purpose_validation():
    with pytest.raises(ConfigurationError):
        DesignPurpose("p", provides=("x",), demanded_burden=0,
                      assumes_administration=False, intended_users="u")


def test_prototype_in_harmony_with_researchers():
    report = harmony(research_prototype_purpose(), research_goal(),
                     researcher())
    assert report.in_harmony
    assert report.score == pytest.approx(1.0)


def test_prototype_not_in_harmony_with_casual_users():
    report = harmony(research_prototype_purpose(), presentation_goal(),
                     casual_user())
    assert not report.in_harmony
    assert report.notes  # explains why


def test_commercial_product_fixes_casual_harmony():
    report = harmony(commercial_product_purpose(), presentation_goal(),
                     casual_user())
    assert report.in_harmony


def test_commercial_product_loses_research_capability():
    report = harmony(commercial_product_purpose(), research_goal(),
                     researcher())
    assert report.coverage < 1.0
    assert not report.in_harmony


def test_missing_capability_noted():
    purpose = DesignPurpose("p", provides=("a",), demanded_burden=1,
                            assumes_administration=False, intended_users="u")
    goal = Goal("g", requires=("a", "b"))
    report = harmony(purpose, goal)
    assert report.coverage == pytest.approx(0.5)
    assert any("missing" in note for note in report.notes)


def test_administration_assumption_blocks_non_admins():
    purpose = DesignPurpose("p", provides=("a",), demanded_burden=1,
                            assumes_administration=True, intended_users="u")
    goal = Goal("g", requires=("a",), tolerates_administration=False)
    blocked = harmony(purpose, goal, casual_user())
    assert blocked.administration_fit == 0.0
    fine = harmony(purpose, goal, researcher())
    assert fine.administration_fit == 1.0


def test_burden_fit_ratio():
    purpose = DesignPurpose("p", provides=("a",), demanded_burden=8,
                            assumes_administration=False, intended_users="u")
    goal = Goal("g", requires=("a",), acceptable_burden=4)
    report = harmony(purpose, goal)
    assert report.burden_fit == pytest.approx(0.5)


def test_adoption_probability_ordering():
    good = harmony(commercial_product_purpose(), presentation_goal(),
                   casual_user())
    bad = harmony(research_prototype_purpose(), presentation_goal(),
                  casual_user())
    assert adoption_probability(good, casual_user()) > \
        adoption_probability(bad, casual_user())
    assert 0.0 <= adoption_probability(bad, casual_user()) <= 1.0
