"""Tests for the experiment harness and registry."""

from __future__ import annotations

import pytest

import repro.experiments  # noqa: F401 - registers everything
from repro.experiments.harness import (
    ExperimentResult,
    experiment,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.kernel.errors import ExperimentError


def test_result_rows_and_columns():
    result = ExperimentResult("X", "t", ["a", "b"])
    result.add_row(a=1, b=2)
    result.add_row(a=3, b=4)
    assert result.column("a") == [1, 3]
    with pytest.raises(ExperimentError):
        result.column("zz")
    with pytest.raises(ExperimentError):
        result.add_row(c=1)


def test_result_select():
    result = ExperimentResult("X", "t", ["mode", "v"])
    result.add_row(mode="a", v=1)
    result.add_row(mode="b", v=2)
    result.add_row(mode="a", v=3)
    assert [r["v"] for r in result.select(mode="a")] == [1, 3]
    assert result.select(mode="c") == []


def test_format_table_contains_everything():
    result = ExperimentResult("X", "my title", ["col", "value"])
    result.add_row(col="alpha", value=1.23456)
    result.notes.append("a note")
    text = result.format_table()
    assert "my title" in text
    assert "alpha" in text
    assert "1.235" in text  # 4 significant digits
    assert "note: a note" in text
    assert str(result) == text


def test_registry_contains_all_targets():
    known = list_experiments()
    for expected in ("E1", "E2", "E3", "E4-stale", "E5", "E6", "E7", "E8",
                     "E9", "F1-F5"):
        assert expected in known


def test_get_unknown_experiment():
    with pytest.raises(ExperimentError):
        get_experiment("E999")


def test_duplicate_registration_rejected():
    with pytest.raises(ExperimentError):
        @experiment("E1")
        def clash():  # pragma: no cover
            pass


def test_run_experiment_dispatches():
    result = run_experiment("E3-range-table")
    assert result.experiment_id == "E3-range-table"
    assert len(result.rows) == 4
