"""Tests for voice authentication, session wait-queues and atomic
two-session acquisition."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError, ServiceError, SessionError
from repro.phys.human import PhysicalProfile, PhysicalUser
from repro.services.auth import VoiceprintAuthenticator
from repro.services.sessions import SessionManager


def _owner() -> PhysicalProfile:
    return PhysicalProfile("alice", speech_clarity=0.98)


def _impostor() -> PhysicalProfile:
    return PhysicalProfile("mallory", speech_clarity=0.98)


# ---------------------------------------------------------------------------
# VoiceprintAuthenticator
# ---------------------------------------------------------------------------

def test_enroll_and_verify_genuine_quiet(sim):
    auth = VoiceprintAuthenticator(sim)
    owner = _owner()
    auth.enroll(owner)
    assert auth.enrolled("alice")
    user = PhysicalUser(sim, owner)
    accepted = sum(
        auth.verify(user.speak(["open"]), "alice", snr_db=30.0,
                    speaker_profile=owner).accepted
        for _ in range(100))
    assert accepted >= 90
    assert auth.measured_frr <= 0.1


def test_genuine_rejected_in_noise(sim):
    auth = VoiceprintAuthenticator(sim)
    owner = _owner()
    auth.enroll(owner)
    user = PhysicalUser(sim, owner)
    for _ in range(100):
        auth.verify(user.speak(["open"]), "alice", snr_db=0.0,
                    speaker_profile=owner)
    assert auth.measured_frr >= 0.9
    # The lockouts surface as environment-layer issues.
    assert sim.tracer.select("issue.noise")


def test_impostor_far_flat_across_snr(sim):
    auth = VoiceprintAuthenticator(sim, far_target=0.02)
    owner, impostor = _owner(), _impostor()
    auth.enroll(owner)
    intruder = PhysicalUser(sim, impostor)
    for snr in (0.0, 30.0):
        for _ in range(300):
            auth.verify(intruder.speak(["open"]), "alice", snr,
                        speaker_profile=impostor)
    assert auth.measured_far == pytest.approx(0.02, abs=0.02)
    assert auth.impostor_attempts == 600


def test_false_accept_emits_session_issue(sim):
    auth = VoiceprintAuthenticator(sim, far_target=0.49)
    owner, impostor = _owner(), _impostor()
    auth.enroll(owner)
    intruder = PhysicalUser(sim, impostor)
    for _ in range(200):
        auth.verify(intruder.speak(["open"]), "alice", 30.0,
                    speaker_profile=impostor)
    assert auth.false_accepts > 0
    assert sim.tracer.select("issue.session")


def test_unenrolled_claim_rejected(sim):
    auth = VoiceprintAuthenticator(sim)
    user = PhysicalUser(sim, _owner())
    with pytest.raises(ServiceError):
        auth.verify(user.speak(["open"]), "nobody", 30.0)


def test_auth_parameter_validation(sim):
    with pytest.raises(ConfigurationError):
        VoiceprintAuthenticator(sim, far_target=0.0)
    with pytest.raises(ConfigurationError):
        VoiceprintAuthenticator(sim, slope_db=0.0)


def test_accept_probability_monotone(sim):
    auth = VoiceprintAuthenticator(sim)
    values = [auth.genuine_accept_probability(snr) for snr in
              (-10, 0, 10, 20, 30)]
    assert values == sorted(values)


# ---------------------------------------------------------------------------
# Session wait queue
# ---------------------------------------------------------------------------

def test_acquire_or_wait_immediate_when_free(sim):
    manager = SessionManager(sim, "proj")
    grants = []
    session = manager.acquire_or_wait("alice", grants.append)
    assert session is not None
    sim.run(until=1.0)
    assert len(grants) == 1 and grants[0].owner == "alice"


def test_waiters_granted_fifo_on_release(sim):
    manager = SessionManager(sim, "proj")
    first = manager.acquire("alice", 60.0)
    order = []
    manager.acquire_or_wait("bob", lambda s: order.append(("bob", sim.now)))
    manager.acquire_or_wait("carol", lambda s: order.append(("carol", sim.now)))
    assert manager.queue_length() == 2
    sim.schedule(5.0, manager.release, first.token)

    def bob_releases() -> None:
        manager.release(manager._current.token)

    sim.schedule(10.0, bob_releases)
    sim.run(until=15.0)
    assert [name for name, _t in order] == ["bob", "carol"]
    assert order[0][1] == pytest.approx(5.0)
    assert order[1][1] == pytest.approx(10.0)
    assert manager.wait_log == [pytest.approx(5.0), pytest.approx(10.0)]


def test_waiter_granted_on_lease_expiry(sim):
    manager = SessionManager(sim, "proj", sweep_interval=0.5)
    manager.acquire("forgetful", 5.0)
    grants = []
    manager.acquire_or_wait("patient", grants.append)
    sim.run(until=10.0)
    assert len(grants) == 1
    assert manager.holder == "patient"


def test_waiter_granted_on_force_release(sim):
    manager = SessionManager(sim, "proj", use_leases=False)
    manager.acquire("stuck", 60.0)
    grants = []
    manager.acquire_or_wait("next", grants.append)
    manager.force_release("admin")
    sim.run(until=1.0)
    assert len(grants) == 1


def test_cancel_wait(sim):
    manager = SessionManager(sim, "proj")
    session = manager.acquire("alice", 60.0)
    grants = []
    manager.acquire_or_wait("bob", grants.append)
    assert manager.cancel_wait("bob")
    assert not manager.cancel_wait("bob")
    manager.release(session.token)
    sim.run(until=1.0)
    assert grants == []
    assert manager.available


# ---------------------------------------------------------------------------
# Atomic two-session acquisition
# ---------------------------------------------------------------------------

def test_acquire_both_all_or_nothing():
    from repro.experiments.workloads import projector_room

    room = projector_room(seed=85, register=False)
    smart = room.smart
    # Someone holds control: atomic acquire must roll back projection.
    control = smart.control_sessions.acquire("other", 60.0)
    with pytest.raises(SessionError):
        smart._proj_acquire_both("laptop", owner="laptop")
    assert smart.projection_sessions.available  # rolled back
    smart.control_sessions.release(control.token)
    grant = smart._proj_acquire_both("laptop", owner="laptop")
    assert smart.projection_sessions.validate(grant["token"])
    assert smart.control_sessions.validate(grant["control_token"])


def test_acquire_both_over_rpc():
    from repro.experiments.workloads import projector_room
    from repro.phys.devices import Device
    from repro.services.base import RpcClient

    room = projector_room(seed=86)
    room.sim.run(until=3.0)
    caller = Device(room.sim, room.world, "caller", (18, 13),
                    medium=room.medium)
    rpc = RpcClient(room.sim, caller, room.smart.projection_item().proxy)
    results = []
    rpc.call("acquire_both", {"owner": "caller"}, results.append)
    room.sim.run(until=8.0)
    assert results[0].ok
    assert "control_token" in results[0].value
    assert room.smart.control_sessions.holder == "caller"
