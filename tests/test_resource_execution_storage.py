"""Tests for the execution engine and the storage volume."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError
from repro.resource.execution import ExecutionEngine, Task
from repro.resource.platform import ExecutionSpec, StorageSpec
from repro.resource.storage import (
    OrganizationDenied,
    StorageFull,
    StorageVolume,
)


def _engine(sim, mips=100.0, multitasking=True, abortable=True):
    return ExecutionEngine(sim, ExecutionSpec(mips, multitasking, abortable))


# ---------------------------------------------------------------------------
# ExecutionEngine
# ---------------------------------------------------------------------------

def test_task_completes_after_expected_time(sim):
    engine = _engine(sim, mips=100.0)
    done = []
    engine.run_task("work", mi=50.0, on_done=lambda t: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.5)]


def test_tasks_round_robin_when_multitasking(sim):
    engine = _engine(sim, mips=100.0, multitasking=True)
    finished = []
    engine.run_task("long", mi=100.0, on_done=lambda t: finished.append("long"))
    engine.run_task("short", mi=10.0, on_done=lambda t: finished.append("short"))
    sim.run()
    # The short task finishes first despite arriving second (time slicing).
    assert finished == ["short", "long"]


def test_fifo_blocks_short_task_when_single_tasking(sim):
    engine = _engine(sim, mips=100.0, multitasking=False)
    finished = []
    engine.run_task("long", mi=100.0, on_done=lambda t: finished.append("long"))
    engine.run_task("short", mi=10.0, on_done=lambda t: finished.append("short"))
    sim.run()
    assert finished == ["long", "short"]


def test_interactive_delay_recorded_and_issue_raised(sim):
    engine = _engine(sim, mips=10.0, multitasking=False)
    engine.run_task("batch", mi=100.0)  # 10 s of batch work
    engine.run_task("tap", mi=1.0, interactive=True)
    sim.run()
    assert engine.worst_interactive_delay() == pytest.approx(10.0)
    assert len(sim.tracer.select("issue.execution")) == 1


def test_abort_supported(sim):
    engine = _engine(sim, abortable=True)
    task = engine.run_task("doomed", mi=1000.0)
    assert engine.abort(task)
    sim.run()
    assert task.aborted
    assert task in engine.aborted
    assert engine.completed == []


def test_abort_denied_records_issue(sim):
    engine = _engine(sim, abortable=False)
    task = engine.run_task("stuck", mi=10.0)
    assert not engine.abort(task)
    assert len(sim.tracer.select("issue.execution")) == 1
    sim.run()
    assert task.finished_at is not None  # it ran to completion anyway


def test_abort_finished_task_is_noop(sim):
    engine = _engine(sim)
    task = engine.run_task("quick", mi=1.0)
    sim.run()
    assert not engine.abort(task)


def test_queueing_delay_and_response_time(sim):
    engine = _engine(sim, mips=10.0, multitasking=False)
    engine.run_task("first", mi=50.0)
    task = engine.run_task("second", mi=10.0)
    sim.run()
    assert task.queueing_delay == pytest.approx(5.0)
    assert task.response_time == pytest.approx(6.0)


def test_zero_work_rejected(sim):
    engine = _engine(sim)
    with pytest.raises(ConfigurationError):
        engine.run_task("empty", mi=0.0)


def test_pending_count(sim):
    engine = _engine(sim)
    engine.run_task("a", mi=10.0)
    engine.run_task("b", mi=10.0)
    assert engine.utilisation_pending == 2
    sim.run()
    assert engine.utilisation_pending == 0


# ---------------------------------------------------------------------------
# StorageVolume
# ---------------------------------------------------------------------------

def _volume(sim, capacity=100.0, flexible=True, throughput=10.0):
    return StorageVolume(sim, StorageSpec(capacity, flexible, throughput))


def test_write_read_roundtrip(sim):
    volume = _volume(sim)
    volume.write("notes", 10.0)
    obj = volume.read("notes")
    assert obj.size_mb == 10.0
    assert "notes" in volume
    assert volume.used_mb == 10.0


def test_hierarchy_on_flexible_volume(sim):
    volume = _volume(sim, flexible=True)
    volume.write("talks/2000/icpp", 5.0)
    assert volume.listing("talks/") == ["talks/2000/icpp"]


def test_flat_volume_denies_hierarchy_and_issues(sim):
    volume = _volume(sim, flexible=False)
    with pytest.raises(OrganizationDenied):
        volume.write("talks/2000/icpp", 5.0)
    assert volume.denied_writes == 1
    assert len(sim.tracer.select("issue.storage")) == 1
    volume.write("icpp", 5.0)  # flat names still fine


def test_capacity_enforced(sim):
    volume = _volume(sim, capacity=10.0)
    volume.write("a", 8.0)
    with pytest.raises(StorageFull):
        volume.write("b", 5.0)
    assert volume.free_mb == pytest.approx(2.0)
    assert len(sim.tracer.select("issue.storage")) == 1


def test_overwrite_counts_delta(sim):
    volume = _volume(sim, capacity=10.0)
    volume.write("a", 8.0)
    volume.write("a", 9.0)  # only +1 over the existing object
    assert volume.used_mb == pytest.approx(9.0)


def test_transfer_time_and_async_completion(sim):
    volume = _volume(sim, throughput=5.0)
    done = []
    volume.write("big", 10.0, on_done=lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(2.0)]


def test_read_missing_rejected(sim):
    with pytest.raises(ConfigurationError):
        _volume(sim).read("ghost")


def test_delete(sim):
    volume = _volume(sim)
    volume.write("a", 1.0)
    volume.delete("a")
    assert "a" not in volume and len(volume) == 0
    with pytest.raises(ConfigurationError):
        volume.delete("a")


def test_bad_paths_rejected(sim):
    volume = _volume(sim)
    for bad in ("", "/lead", "trail/"):
        with pytest.raises(ConfigurationError):
            volume.write(bad, 1.0)
