"""Tests for platform descriptors, faculties and the matching engine."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError
from repro.resource.faculties import (
    FacultyProfile,
    casual_user,
    international_visitor,
    researcher,
    train,
)
from repro.resource.matching import match, population_usability
from repro.resource.platform import (
    ExecutionSpec,
    MemorySpec,
    NetSpec,
    PlatformProfile,
    StorageSpec,
    UISpec,
    adapter_platform,
    laptop_platform,
    pda_platform,
    soc_platform,
)


# ---------------------------------------------------------------------------
# Platform specs
# ---------------------------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ConfigurationError):
        MemorySpec(0)
    with pytest.raises(ConfigurationError):
        StorageSpec(-1)
    with pytest.raises(ConfigurationError):
        ExecutionSpec(0)
    with pytest.raises(ConfigurationError):
        UISpec(kind="holograms")
    with pytest.raises(ConfigurationError):
        UISpec(languages=())
    with pytest.raises(ConfigurationError):
        NetSpec(technologies=())


def test_presets_build():
    for factory in (laptop_platform, adapter_platform, pda_platform,
                    soc_platform):
        platform = factory()
        assert platform.memory.ram_mb > 0


def test_shares_technology():
    assert laptop_platform().shares_technology(adapter_platform())
    isolated = laptop_platform().with_net(technologies=("token-ring",))
    assert not isolated.shares_technology(adapter_platform())


def test_with_ui_replaces_immutably():
    base = adapter_platform()
    multilingual = base.with_ui(languages=("en", "fr"))
    assert multilingual.ui.languages == ("en", "fr")
    assert base.ui.languages == ("en",)


def test_soc_is_the_commercial_answer():
    soc = soc_platform()
    assert soc.net.auto_configuring
    assert not soc.net.requires_admin
    assert len(soc.ui.languages) > 1


# ---------------------------------------------------------------------------
# Faculties
# ---------------------------------------------------------------------------

def test_faculty_validation():
    with pytest.raises(ConfigurationError):
        FacultyProfile("x", languages=())
    with pytest.raises(ConfigurationError):
        FacultyProfile("x", gui_literacy=2.0)


def test_presets_capture_paper_populations():
    assert researcher().can_administer_systems
    assert not casual_user().can_administer_systems
    assert not international_visitor().speaks_any(("en",))


def test_speaks_any():
    visitor = international_visitor()
    assert visitor.speaks_any(("fr", "de"))
    assert not visitor.speaks_any(("ja",))


def test_training_improves_skill():
    user = casual_user()
    trained = train(user, "technical_skill", sessions=10)
    assert trained.technical_skill > user.technical_skill
    assert trained is not user  # immutable


def test_training_converges_below_one():
    user = researcher()
    trained = train(user, "gui_literacy", sessions=100)
    assert trained.gui_literacy <= 1.0


def test_training_faster_for_fast_learners():
    slow = FacultyProfile("slow", learning_rate=0.2, technical_skill=0.2)
    fast = FacultyProfile("fast", learning_rate=0.9, technical_skill=0.2)
    assert (train(fast, "technical_skill").technical_skill
            > train(slow, "technical_skill").technical_skill)


def test_untrainable_skill_rejected():
    with pytest.raises(ConfigurationError):
        train(researcher(), "frustration_tolerance")


# ---------------------------------------------------------------------------
# Matching ("must not be frustrated by")
# ---------------------------------------------------------------------------

def test_researcher_can_use_adapter():
    report = match(adapter_platform(), researcher())
    assert report.usable


def test_casual_user_blocked_by_adapter():
    report = match(adapter_platform(), casual_user())
    assert not report.usable
    aspects = {f.aspect for f in report.frustrations}
    assert "admin" in aspects


def test_language_mismatch_is_blocking():
    report = match(adapter_platform(), international_visitor())
    assert any(f.aspect == "language" and f.severity >= 0.9
               for f in report.frustrations)
    assert not report.usable


def test_multilingual_ui_fixes_language():
    platform = soc_platform()
    report = match(platform, international_visitor())
    assert not any(f.aspect == "language" for f in report.frustrations)


def test_soc_usable_by_everyone():
    for user in (researcher(), casual_user(), international_visitor()):
        assert match(soc_platform(), user).usable


def test_unabortable_execution_frustrates_impatient_users():
    pda = pda_platform()
    impatient = FacultyProfile("impatient", frustration_tolerance=0.1)
    patient = FacultyProfile("patient", frustration_tolerance=0.9)
    f_impatient = [f for f in match(pda, impatient).frustrations
                   if f.aspect == "execution" and "abort" in f.description]
    f_patient = [f for f in match(pda, patient).frustrations
                 if f.aspect == "execution" and "abort" in f.description]
    assert f_impatient[0].severity > f_patient[0].severity


def test_score_in_unit_interval():
    for platform in (adapter_platform(), pda_platform(), soc_platform()):
        for user in (researcher(), casual_user()):
            assert 0.0 <= match(platform, user).score <= 1.0


def test_worst_frustration():
    report = match(adapter_platform(), casual_user())
    worst = report.worst()
    assert worst is not None
    assert worst.severity == max(f.severity for f in report.frustrations)
    assert match(soc_platform(), researcher()).worst() is None


def test_population_usability():
    users = [researcher(f"r{i}") for i in range(5)]
    assert population_usability(adapter_platform(), users) == 1.0
    mixed = users + [casual_user(f"c{i}") for i in range(5)]
    assert population_usability(adapter_platform(), mixed) == 0.5
    with pytest.raises(ConfigurationError):
        population_usability(adapter_platform(), [])
