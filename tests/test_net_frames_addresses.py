"""Tests for frames, addressing and queueing primitives."""

from __future__ import annotations

import pytest

from repro.kernel.errors import AddressError, ConfigurationError
from repro.net.addresses import (
    BROADCAST,
    AddressAllocator,
    is_broadcast,
    validate_address,
)
from repro.net.frames import HEADER_BYTES, MTU_BYTES, Frame
from repro.net.queueing import DropTailQueue, TokenBucket


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------

def test_validate_accepts_normal_names():
    for name in ("laptop", "pda-1", "node.7", "a:b", "X_1"):
        assert validate_address(name) == name


def test_validate_accepts_broadcast():
    assert validate_address(BROADCAST) == BROADCAST
    assert is_broadcast(BROADCAST)
    assert not is_broadcast("laptop")


def test_validate_rejects_malformed():
    for bad in ("", " lead", "-dash-first", None, 42):
        with pytest.raises(AddressError):
            validate_address(bad)  # type: ignore[arg-type]


def test_allocator_unique_sequence():
    allocator = AddressAllocator()
    assert allocator.allocate("pda") == "pda-1"
    assert allocator.allocate("pda") == "pda-2"
    assert allocator.allocate("laptop") == "laptop-1"


def test_allocator_reserve_conflicts():
    allocator = AddressAllocator()
    allocator.reserve("hub")
    with pytest.raises(AddressError):
        allocator.reserve("hub")
    assert "hub" in list(allocator.issued())


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------

def test_frame_wire_size_includes_header():
    frame = Frame("a", "b", None, 100)
    assert frame.wire_bytes == 100 + HEADER_BYTES


def test_frame_airtime():
    frame = Frame("a", "b", None, 1000)
    assert frame.airtime(1e6) == pytest.approx(8.0 * frame.wire_bytes / 1e6)
    assert frame.airtime(1e6, preamble_s=1e-4) == pytest.approx(
        1e-4 + 8.0 * frame.wire_bytes / 1e6)


def test_frame_airtime_bad_rate():
    with pytest.raises(ConfigurationError):
        Frame("a", "b").airtime(0.0)


def test_frame_oversize_rejected():
    with pytest.raises(ConfigurationError):
        Frame("a", "b", None, MTU_BYTES + 1)


def test_frame_negative_size_rejected():
    with pytest.raises(ConfigurationError):
        Frame("a", "b", None, -1)


def test_frame_bad_kind_rejected():
    with pytest.raises(ConfigurationError):
        Frame("a", "b", None, 0, kind="weird")


def test_frame_ids_monotone():
    a, b = Frame("a", "b"), Frame("a", "b")
    assert b.frame_id > a.frame_id


def test_frame_clone_fresh_id():
    frame = Frame("a", "b", "payload", 10, "mgmt", 5)
    clone = frame.clone()
    assert clone.frame_id != frame.frame_id
    assert (clone.src, clone.dst, clone.payload, clone.payload_bytes,
            clone.kind, clone.port) == ("a", "b", "payload", 10, "mgmt", 5)


# ---------------------------------------------------------------------------
# DropTailQueue
# ---------------------------------------------------------------------------

def test_queue_fifo_order():
    queue = DropTailQueue(4)
    for i in range(4):
        assert queue.push(i)
    assert [queue.pop() for _ in range(4)] == [0, 1, 2, 3]


def test_queue_drops_when_full():
    queue = DropTailQueue(2)
    assert queue.push(1) and queue.push(2)
    assert not queue.push(3)
    assert queue.dropped == 1
    assert queue.drop_rate == pytest.approx(1 / 3)


def test_queue_peak_depth():
    queue = DropTailQueue(10)
    for i in range(7):
        queue.push(i)
    queue.pop()
    assert queue.peak_depth == 7


def test_queue_capacity_validation():
    with pytest.raises(ConfigurationError):
        DropTailQueue(0)


def test_queue_empty_pop_raises():
    with pytest.raises(IndexError):
        DropTailQueue(1).pop()


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------

def test_bucket_starts_full(sim):
    bucket = TokenBucket(sim, rate=100.0, burst=50.0)
    assert bucket.tokens == pytest.approx(50.0)
    assert bucket.try_consume(50.0)
    assert not bucket.try_consume(1.0)


def test_bucket_refills_with_sim_time(sim):
    bucket = TokenBucket(sim, rate=10.0, burst=100.0)
    bucket.try_consume(100.0)
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert bucket.tokens == pytest.approx(50.0)


def test_bucket_capped_at_burst(sim):
    bucket = TokenBucket(sim, rate=1000.0, burst=10.0)
    sim.schedule(100.0, lambda: None)
    sim.run()
    assert bucket.tokens == pytest.approx(10.0)


def test_bucket_time_until(sim):
    bucket = TokenBucket(sim, rate=10.0, burst=10.0)
    bucket.try_consume(10.0)
    assert bucket.time_until(5.0) == pytest.approx(0.5)
    assert bucket.time_until(0.0) == 0.0


def test_bucket_validation(sim):
    with pytest.raises(ConfigurationError):
        TokenBucket(sim, rate=0.0, burst=1.0)
    bucket = TokenBucket(sim, rate=1.0, burst=1.0)
    with pytest.raises(ConfigurationError):
        bucket.try_consume(-1.0)
