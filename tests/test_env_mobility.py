"""Tests for mobility models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.mobility import LinearMobility, RandomWaypoint, StaticMobility
from repro.kernel.errors import ConfigurationError


def test_static_mobility_never_moves(sim, world):
    world.place("rock", (10, 10))
    StaticMobility(sim, world, "rock").start()
    sim.run(until=10.0)
    assert np.allclose(world.position_of("rock"), [10, 10])


def test_linear_mobility_reaches_target(sim, world):
    world.place("walker", (0, 0))
    mob = LinearMobility(sim, world, "walker", target=(10, 0), speed=1.0,
                         update_interval=0.5)
    mob.start()
    sim.run(until=15.0)
    assert mob.arrived
    assert np.allclose(world.position_of("walker"), [10, 0])


def test_linear_mobility_speed_respected(sim, world):
    world.place("walker", (0, 0))
    LinearMobility(sim, world, "walker", target=(100, 0), speed=2.0,
                   update_interval=0.5).start()
    sim.run(until=5.0)
    x, _y = world.position_of("walker")
    assert x == pytest.approx(10.0, abs=1.1)  # ~2 m/s for 5 s


def test_linear_mobility_moves_along_line(sim, world):
    world.place("walker", (0, 0))
    LinearMobility(sim, world, "walker", target=(30, 40), speed=5.0).start()
    sim.run(until=4.0)
    x, y = world.position_of("walker")
    assert y == pytest.approx(x * 40 / 30, abs=0.2)


def test_linear_mobility_bad_speed(sim, world):
    world.place("w", (0, 0))
    with pytest.raises(ConfigurationError):
        LinearMobility(sim, world, "w", target=(1, 1), speed=0.0)


def test_random_waypoint_moves_and_completes_legs(sim, world):
    world.place("roamer", (50, 30))
    mob = RandomWaypoint(sim, world, "roamer", speed_min=2.0, speed_max=4.0,
                         pause=0.5, update_interval=0.25)
    mob.start()
    sim.run(until=120.0)
    assert mob.legs_completed >= 2
    assert not np.allclose(world.position_of("roamer"), [50, 30])


def test_random_waypoint_stays_in_bounds(sim, world):
    world.place("roamer", (0, 0))
    RandomWaypoint(sim, world, "roamer", speed_min=5.0, speed_max=10.0,
                   pause=0.0).start()
    for _ in range(60):
        sim.run(until=sim.now + 1.0)
        x, y = world.position_of("roamer")
        assert 0 <= x <= world.width and 0 <= y <= world.height


def test_random_waypoint_parameter_validation(sim, world):
    world.place("r", (0, 0))
    with pytest.raises(ConfigurationError):
        RandomWaypoint(sim, world, "r", speed_min=0.0)
    with pytest.raises(ConfigurationError):
        RandomWaypoint(sim, world, "r", speed_min=3.0, speed_max=2.0)
    with pytest.raises(ConfigurationError):
        RandomWaypoint(sim, world, "r", pause=-1.0)


def test_random_waypoint_deterministic_per_seed(world):
    from repro.kernel.scheduler import Simulator

    def trajectory(seed):
        sim = Simulator(seed=seed)
        w = type(world)(100, 60)
        w.place("r", (50, 30))
        RandomWaypoint(sim, w, "r").start()
        sim.run(until=30.0)
        return tuple(w.position_of("r"))

    assert trajectory(5) == trajectory(5)
    assert trajectory(5) != trajectory(6)


def test_mobility_stop_halts_updates(sim, world):
    world.place("w", (0, 0))
    mob = LinearMobility(sim, world, "w", target=(100, 0), speed=1.0)
    mob.start()
    sim.run(until=3.0)
    position = world.position_of("w").copy()
    mob.stop()
    sim.run(until=10.0)
    assert np.allclose(world.position_of("w"), position)


def test_bad_update_interval(sim, world):
    world.place("w", (0, 0))
    with pytest.raises(ConfigurationError):
        StaticMobility(sim, world, "w", update_interval=0.0)
