"""Tests for concern classification and the constraint relations."""

from __future__ import annotations

import pytest

from repro.core.concerns import Concern, ConcernClassifier
from repro.core.constraints import (
    check_abstract_consistency,
    check_acoustic_environment,
    check_intentional_harmony,
    check_physical_compatibility,
    check_radio_environment,
    check_resource_match,
)
from repro.core.layers import Column, Layer
from repro.env.noise import AcousticField
from repro.env.radio import PropagationModel
from repro.env.world import World
from repro.kernel.errors import ConstraintViolation, ModelError
from repro.kernel.trace import TraceRecord
from repro.phys.devices import laptop_form
from repro.phys.human import PhysicalProfile
from repro.resource.faculties import casual_user, researcher
from repro.resource.platform import adapter_platform, soc_platform
from repro.user.goals import (
    presentation_goal,
    research_goal,
    research_prototype_purpose,
)
from repro.user.mental import MentalModel


# ---------------------------------------------------------------------------
# Classifier
# ---------------------------------------------------------------------------

def test_topic_classification():
    classifier = ConcernClassifier()
    assert classifier.classify("session", "anything") == Layer.ABSTRACT
    assert classifier.classify("radio", "anything") == Layer.ENVIRONMENT
    assert classifier.classify("power", "anything") == Layer.PHYSICAL
    assert classifier.classify("language", "anything") == Layer.RESOURCE
    assert classifier.classify("goal", "anything") == Layer.INTENTIONAL


def test_keyword_fallback():
    classifier = ConcernClassifier()
    assert classifier.classify("", "heavy 2.4 GHz interference observed") \
        == Layer.ENVIRONMENT
    assert classifier.classify("", "user must stay in proximity") \
        == Layer.PHYSICAL
    assert classifier.classify("", "assumes the English language") \
        == Layer.RESOURCE


def test_unclassifiable_raises_without_default():
    classifier = ConcernClassifier()
    with pytest.raises(ModelError):
        classifier.classify("xyzzy", "qwerty")
    assert classifier.unclassified


def test_default_layer_used_when_given():
    classifier = ConcernClassifier(default=Layer.ABSTRACT)
    assert classifier.classify("xyzzy", "qwerty") == Layer.ABSTRACT


def test_extra_topics_extend_map():
    classifier = ConcernClassifier(extra_topics={"weather": Layer.ENVIRONMENT})
    assert classifier.classify("weather", "") == Layer.ENVIRONMENT


def test_from_trace_builds_concern():
    classifier = ConcernClassifier()
    record = TraceRecord(3.0, "issue.session", "projector",
                         "bob denied: alice holds the session")
    concern = classifier.from_trace(record, user_sources=["alice"])
    assert concern.layer == Layer.ABSTRACT
    assert concern.column == Column.DEVICE  # source is 'projector'
    assert concern.time == 3.0
    user_record = TraceRecord(4.0, "issue.mental", "alice", "surprised")
    assert classifier.from_trace(user_record, ["alice"]).column == Column.USER


def test_from_trace_rejects_non_issue():
    classifier = ConcernClassifier()
    with pytest.raises(ModelError):
        classifier.from_trace(TraceRecord(0, "mac.tx", "x", "y"))


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------

def test_radio_environment_close_link_ok():
    result = check_radio_environment(
        PropagationModel(shadowing_sigma_db=0.0), distance_m=10.0,
        required_rate_bps=2e6)
    assert result.satisfied
    assert result.layer == Layer.ENVIRONMENT


def test_radio_environment_far_link_fails():
    result = check_radio_environment(
        PropagationModel(shadowing_sigma_db=0.0), distance_m=400.0,
        required_rate_bps=2e6)
    assert not result.satisfied
    with pytest.raises(ConstraintViolation):
        result.require()


def test_acoustic_environment_voice_needs_quiet():
    world = World(10, 10)
    quiet = AcousticField(world, floor_db=35.0)
    world.place("spot", (5, 5))
    profile = PhysicalProfile("u", speech_level_db=62.0)
    ok = check_acoustic_environment(quiet, "spot", profile, needs_voice=True)
    # Quiet room: great SNR but socially inappropriate -> unsatisfied.
    assert not ok.satisfied
    no_voice = check_acoustic_environment(quiet, "spot", profile,
                                          needs_voice=False)
    assert no_voice.satisfied


def test_acoustic_environment_noisy_room_fails_snr():
    world = World(10, 10)
    loud = AcousticField(world, floor_db=75.0)
    world.place("spot", (5, 5))
    profile = PhysicalProfile("u", speech_level_db=62.0)
    result = check_acoustic_environment(loud, "spot", profile,
                                        needs_voice=True)
    assert not result.satisfied


def test_physical_compatibility_constraint():
    good = check_physical_compatibility(laptop_form(), PhysicalProfile("fit"))
    assert good.layer == Layer.PHYSICAL
    weak = check_physical_compatibility(
        laptop_form(), PhysicalProfile("frail", carry_limit_kg=1.0))
    assert weak.score < good.score


def test_resource_match_constraint():
    blocked = check_resource_match(adapter_platform(), casual_user())
    assert not blocked.satisfied
    fine = check_resource_match(soc_platform(), casual_user())
    assert fine.satisfied
    assert fine.layer == Layer.RESOURCE


def test_abstract_consistency_constraint(sim):
    mental = MentalModel(sim, "alice", researcher())
    mental.believe("vnc_running", True)
    mental.believe("session_held", True)
    state = {"vnc_running": True, "session_held": True}
    result = check_abstract_consistency(mental, state)
    assert result.satisfied and result.score == 1.0
    state["session_held"] = False  # lease expired behind her back
    result2 = check_abstract_consistency(mental, state)
    assert not result2.satisfied


def test_intentional_harmony_constraint():
    good = check_intentional_harmony(research_prototype_purpose(),
                                     research_goal(), researcher())
    assert good.satisfied
    bad = check_intentional_harmony(research_prototype_purpose(),
                                    presentation_goal(), casual_user())
    assert not bad.satisfied
    assert bad.layer == Layer.INTENTIONAL


def test_constraint_scores_unit_interval(sim):
    mental = MentalModel(sim, "x", casual_user())
    mental.believe("a", 1)
    results = [
        check_radio_environment(PropagationModel(shadowing_sigma_db=0.0), 50.0),
        check_physical_compatibility(laptop_form(), PhysicalProfile("p")),
        check_resource_match(adapter_platform(), researcher()),
        check_abstract_consistency(mental, {"a": 1, "b": 2}),
        check_intentional_harmony(research_prototype_purpose(),
                                  presentation_goal(), casual_user()),
    ]
    for result in results:
        assert 0.0 <= result.score <= 1.0
        assert result.relation  # every result carries its relation text
