"""Tests for the content-addressed run cache behind incremental sweeps."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro.experiments.cache as cache_mod
from repro.experiments.bench import check_cache_regression
from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    RunCache,
    cache_key,
    canonical_json,
    resolve_cache,
    run_one_identity,
    source_digest,
)
from repro.experiments.sweeps import grid, sweep
from repro.kernel.errors import ExperimentError


# ---------------------------------------------------------------------------
# Module-level run_one functions (cacheable identities)
# ---------------------------------------------------------------------------

def run_one_linear(seed, knob):
    return {"value": knob * 10 + seed, "knob_sq": knob * knob}


def run_one_tuple_row(seed, knob):
    return {"value": (knob, seed)}  # tuples do not survive JSON replay


# ---------------------------------------------------------------------------
# Key derivation
# ---------------------------------------------------------------------------

def test_cache_key_stable_within_process():
    a = cache_key("E2", "m:f", {"pairs": 4, "plan": "spread"}, 7,
                  src_digest="abc")
    b = cache_key("E2", "m:f", {"plan": "spread", "pairs": 4}, 7,
                  src_digest="abc")
    assert a == b  # canonical JSON sorts keys


def test_cache_key_stable_in_fresh_subprocess():
    """The same grid hashed in a fresh interpreter yields identical keys
    — the property that makes on-disk entries reusable across sessions."""
    points = grid(pairs=[0, 2], plan=["cochannel", "spread"])
    local = [cache_key("E2", "mod:fn", point, 3, src_digest="d1")
             for point in points]
    code = (
        "import json, sys\n"
        "from repro.experiments.cache import cache_key\n"
        "from repro.experiments.sweeps import grid\n"
        "points = grid(pairs=[0, 2], plan=['cochannel', 'spread'])\n"
        "print(json.dumps([cache_key('E2', 'mod:fn', p, 3, src_digest='d1')"
        " for p in points]))\n")
    src_dir = pathlib.Path(cache_mod.__file__).resolve().parents[2]
    env = dict(os.environ, PYTHONPATH=str(src_dir))
    out = subprocess.run([sys.executable, "-c", code], env=env,
                         capture_output=True, text=True, check=True)
    assert json.loads(out.stdout) == local


@pytest.mark.parametrize("mutate", [
    dict(point={"pairs": 5}),            # point value
    dict(seed=8),                        # seed
    dict(experiment_id="E3"),            # experiment id
    dict(run_one_name="mod:other"),      # run_one identity
    dict(src_digest="different"),        # source digest
    dict(schema_version=CACHE_SCHEMA_VERSION + 1),  # schema version
])
def test_cache_key_changes_with_every_component(mutate):
    base = dict(experiment_id="E2", run_one_name="mod:fn",
                point={"pairs": 4}, seed=7, src_digest="abc",
                schema_version=CACHE_SCHEMA_VERSION)
    assert cache_key(**base) != cache_key(**{**base, **mutate})


def test_canonical_json_rejects_unserializable():
    with pytest.raises(ExperimentError):
        canonical_json({"lock": object()})


def test_source_digest_changes_when_source_changes(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    before = source_digest(tmp_path)
    assert before == source_digest(tmp_path)  # memoized, stable
    (tmp_path / "a.py").write_text("x = 2\n")
    cache_mod._SOURCE_DIGEST_MEMO.clear()  # a fresh process would see this
    assert source_digest(tmp_path) != before


def test_source_digest_sees_new_files(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    before = source_digest(tmp_path)
    (tmp_path / "b.py").write_text("y = 1\n")
    cache_mod._SOURCE_DIGEST_MEMO.clear()
    assert source_digest(tmp_path) != before


# ---------------------------------------------------------------------------
# run_one identity
# ---------------------------------------------------------------------------

def test_identity_module_function():
    name = run_one_identity(run_one_linear)
    assert name is not None and "run_one_linear" in name


def test_identity_partial_includes_bound_arguments():
    import functools

    a = run_one_identity(functools.partial(run_one_linear, knob=1))
    b = run_one_identity(functools.partial(run_one_linear, knob=2))
    assert a is not None and b is not None and a != b


def test_identity_rejects_lambda_closure_and_unserializable_partial():
    import functools

    captured = 3

    def local_fn(seed):
        return {"v": captured}

    assert run_one_identity(lambda seed: {"v": 1}) is None
    assert run_one_identity(local_fn) is None
    assert run_one_identity(
        functools.partial(run_one_linear, knob=object())) is None


class StatefulRunner:
    def __init__(self, scale):
        self.scale = scale

    def run_point(self, seed, knob):
        return {"value": knob * self.scale + seed}


def test_identity_rejects_bound_methods():
    """A bound method's __qualname__/__closure__ look cacheable, but the
    instance state behind __self__ is invisible to the key — caching it
    would replay Runner(1)'s rows for Runner(1000)."""
    import functools

    assert run_one_identity(StatefulRunner(1).run_point) is None
    assert run_one_identity(
        functools.partial(StatefulRunner(1).run_point, knob=2)) is None


def test_sweep_bound_method_uncacheable_never_cross_contaminates(tmp_path):
    cache = RunCache(tmp_path)
    small = sweep("X", "t", StatefulRunner(1).run_point, grid(knob=[3]),
                  cache=cache)
    large = sweep("X", "t", StatefulRunner(1000).run_point, grid(knob=[3]),
                  cache=cache)
    assert small.column("value") == [3]
    assert large.column("value") == [3000]  # not a replay of Runner(1)
    assert cache.disk_stats()["entries"] == 0
    assert cache.stats.snapshot()["uncacheable"] == 2


def test_identity_tracks_run_one_source_outside_package(tmp_path):
    """Editing a run_one defined outside src/repro must change its
    identity — the package source digest cannot see it."""
    import importlib.util

    module_path = tmp_path / "user_experiment.py"

    def load():
        spec = importlib.util.spec_from_file_location(
            "user_experiment", module_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        cache_mod._FUNCTION_SOURCE_MEMO.clear()  # fresh process would
        return run_one_identity(module.run_point)

    module_path.write_text(
        "def run_point(seed, knob):\n    return {'v': knob}\n")
    before = load()
    module_path.write_text(
        "def run_point(seed, knob):\n    return {'v': knob * 2}\n")
    after = load()
    assert before is not None and after is not None
    assert before != after


# ---------------------------------------------------------------------------
# The on-disk store
# ---------------------------------------------------------------------------

def test_put_get_round_trip(tmp_path):
    cache = RunCache(tmp_path)
    key = cache_key("X", "m:f", {"k": 1}, 0, src_digest="s")
    row = {"value": 1.5, "count": 3, "label": "spread", "flag": True}
    assert cache.put(key, row, {"events": 10})
    entry = cache.get(key)
    assert entry["row"] == row
    assert list(entry["row"]) == list(row)  # column order preserved
    assert entry["telemetry"] == {"events": 10}
    assert cache.stats.snapshot()["hits"] == 1


def test_miss_on_absent_key(tmp_path):
    cache = RunCache(tmp_path)
    assert cache.get("0" * 64) is None
    assert cache.stats.snapshot()["misses"] == 1


@pytest.mark.parametrize("corruption", [
    "",                                   # truncated to nothing
    "{not json",                          # invalid JSON
    '{"schema": 999, "row": {}}',         # version skew
    '{"schema": %d, "row": [1, 2]}' % CACHE_SCHEMA_VERSION,  # wrong shape
    '[1, 2, 3]',                          # not an object
])
def test_corrupted_entries_are_misses_never_crashes(tmp_path, corruption):
    cache = RunCache(tmp_path)
    key = cache_key("X", "m:f", {"k": 1}, 0, src_digest="s")
    assert cache.put(key, {"v": 1})
    cache._entry_path(key).write_text(corruption)
    assert cache.get(key) is None
    stats = cache.stats.snapshot()
    assert stats["corrupt"] == 1 and stats["misses"] == 1


def test_rows_that_do_not_replay_exactly_are_not_cached(tmp_path):
    cache = RunCache(tmp_path)
    key = cache_key("X", "m:f", {"k": 1}, 0, src_digest="s")
    assert not cache.put(key, {"v": (1, 2)})        # tuple -> list
    assert not cache.put(key, {"v": object()})      # not serializable
    assert cache.stats.snapshot()["uncacheable"] == 2
    assert cache.disk_stats()["entries"] == 0


def test_nan_rows_are_cacheable(tmp_path):
    """allow_nan serialization round-trips NaN faithfully; NaN != NaN
    must not make every NaN-bearing row (averaged_over_seeds emits them
    for empty groups) silently uncacheable forever."""
    import math

    cache = RunCache(tmp_path)
    key = cache_key("X", "m:f", {"k": 1}, 0, src_digest="s")
    row = {"value": float("nan"), "count": 2}
    assert cache.put(key, row, {"mean": float("nan")})
    entry = cache.get(key)
    assert math.isnan(entry["row"]["value"])
    assert entry["row"]["count"] == 2
    assert math.isnan(entry["telemetry"]["mean"])
    assert cache.stats.snapshot()["uncacheable"] == 0


def test_clear_skips_foreign_files(tmp_path):
    """clear() pointed at the wrong directory (mistyped REPRO_CACHE_DIR)
    must only delete files matching the entry layout."""
    cache = RunCache(tmp_path)
    key = cache_key("X", "m:f", {"k": 1}, 0, src_digest="s")
    assert cache.put(key, {"v": 1})
    foreign = [tmp_path / "settings.json",
               tmp_path / "data" / "results.json",
               tmp_path / key[:2] / "notes.json"]
    for path in foreign:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{}")
    assert cache.clear() == 1
    for path in foreign:
        assert path.exists()
    assert cache.disk_stats()["entries"] == 0


def test_clear_and_disk_stats(tmp_path):
    cache = RunCache(tmp_path)
    for knob in range(3):
        key = cache_key("X", "m:f", {"k": knob}, 0, src_digest="s")
        assert cache.put(key, {"v": knob})
    shape = cache.disk_stats()
    assert shape["entries"] == 3 and shape["bytes"] > 0
    assert cache.clear() == 3
    assert cache.disk_stats()["entries"] == 0


def test_register_metrics_probe(tmp_path):
    from repro.kernel.scheduler import Simulator

    sim = Simulator(seed=1, trace=False)
    cache = RunCache(tmp_path)
    unregister = cache.register_metrics(sim.metrics)
    cache.get("0" * 64)
    probe = sim.metrics.snapshot()["probes"]["experiments.cache"]
    assert probe["misses"] == 1
    unregister()
    assert "experiments.cache" not in sim.metrics.snapshot()["probes"]


# ---------------------------------------------------------------------------
# Policy resolution
# ---------------------------------------------------------------------------

def test_resolve_cache_precedence(tmp_path, monkeypatch):
    monkeypatch.delenv(cache_mod.CACHE_ON_ENV, raising=False)
    monkeypatch.delenv(cache_mod.CACHE_OFF_ENV, raising=False)
    assert resolve_cache(None) is None                  # default: off
    assert resolve_cache(False) is None
    assert isinstance(resolve_cache(True), RunCache)
    with pytest.raises(ExperimentError):
        resolve_cache("yes")
    monkeypatch.setenv(cache_mod.CACHE_ON_ENV, "1")
    assert isinstance(resolve_cache(None), RunCache)    # env turns it on
    monkeypatch.setenv(cache_mod.CACHE_OFF_ENV, "1")
    assert resolve_cache(None) is None                  # off wins
    assert resolve_cache(True) is None                  # ... even over True
    explicit = RunCache(tmp_path)
    assert resolve_cache(explicit) is explicit          # instance always wins


# ---------------------------------------------------------------------------
# sweep() integration
# ---------------------------------------------------------------------------

def test_sweep_cold_then_warm_replays_identically(tmp_path):
    cache = RunCache(tmp_path)
    points = grid(knob=[1, 2, 3])
    cold = sweep("X", "t", run_one_linear, points, seeds=(0, 1), cache=cache)
    warm = sweep("X", "t", run_one_linear, points, seeds=(0, 1), cache=cache)
    assert warm.rows == cold.rows
    assert warm.columns == cold.columns
    assert cold.meta["computed"] == 6 and cold.meta["cached"] == 0
    assert warm.meta["computed"] == 0 and warm.meta["cached"] == 6
    assert warm.meta["cache"]["hit_rate"] == 1.0


def test_sweep_incremental_point_edit_recomputes_only_new_points(tmp_path):
    cache = RunCache(tmp_path)
    sweep("X", "t", run_one_linear, grid(knob=[1, 2]), cache=cache)
    grown = sweep("X", "t", run_one_linear, grid(knob=[1, 2, 5]), cache=cache)
    assert grown.meta["cached"] == 2 and grown.meta["computed"] == 1
    assert grown.column("value") == [10, 20, 50]


def test_sweep_lambda_is_uncacheable_but_correct(tmp_path):
    cache = RunCache(tmp_path)
    result = sweep("X", "t", lambda seed, k: {"v": k}, grid(k=[1, 2]),
                   cache=cache)
    again = sweep("X", "t", lambda seed, k: {"v": k}, grid(k=[1, 2]),
                  cache=cache)
    assert result.rows == again.rows
    assert result.meta["cache"]["uncacheable"] == 2
    assert cache.disk_stats()["entries"] == 0


def test_sweep_telemetry_rides_through_the_cache(tmp_path):
    cache = RunCache(tmp_path)
    cold = sweep("X", "t", run_one_telemetry, grid(k=[1, 2]), cache=cache)
    warm = sweep("X", "t", run_one_telemetry, grid(k=[1, 2]), cache=cache)
    assert cold.telemetry == [{"events_executed": 100},
                              {"events_executed": 200}]
    assert warm.telemetry == cold.telemetry
    assert warm.meta["cached"] == 2


def run_one_telemetry(seed, k):
    return {"v": k, "telemetry": {"events_executed": k * 100}}


def test_sweep_cache_invalidated_by_schema_version(tmp_path, monkeypatch):
    cache = RunCache(tmp_path)
    sweep("X", "t", run_one_linear, grid(knob=[1]), cache=cache)
    monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION",
                        CACHE_SCHEMA_VERSION + 1)
    bumped = sweep("X", "t", run_one_linear, grid(knob=[1]), cache=cache)
    assert bumped.meta["cached"] == 0 and bumped.meta["computed"] == 1


# ---------------------------------------------------------------------------
# The bench gate (pure function)
# ---------------------------------------------------------------------------

def _payload(**overrides):
    payload = {"name": "cache", "rows_identical": True, "warm_hit_rate": 1.0,
               "warm_speedup": 50.0, "cold_overhead_ratio": 0.01,
               "source": "in-process"}
    payload.update(overrides)
    return payload


def test_cache_gate_passes_clean_payload():
    assert check_cache_regression(_payload(), None) == []


@pytest.mark.parametrize("overrides, needle", [
    (dict(rows_identical=False), "rows_identical"),
    (dict(warm_hit_rate=0.5), "warm_hit_rate"),
    (dict(warm_speedup=2.0), "warm_speedup"),
    (dict(cold_overhead_ratio=0.2), "cold_overhead_ratio"),
])
def test_cache_gate_fails_each_invariant(overrides, needle):
    failures = check_cache_regression(_payload(**overrides), None)
    assert failures and needle in failures[0]


def test_cache_gate_baseline_floor():
    baseline = _payload(warm_speedup=100.0)
    ok = check_cache_regression(_payload(warm_speedup=30.0), baseline)
    assert ok == []
    bad = check_cache_regression(_payload(warm_speedup=20.0), baseline)
    assert bad and "baseline" in bad[0]
    skew = check_cache_regression(
        _payload(warm_speedup=20.0), dict(baseline, source="other"))
    assert skew == []  # unlike sources never compared
