"""Unit coverage for the module call graph (``repro.checks.callgraph``)."""

from __future__ import annotations

import ast

from repro.checks import (ModuleSummary, build_graph, module_sccs,
                          reachable_from, summarize_module)
from repro.checks.callgraph import (KIND_MUTABLE, KIND_OTHER, KIND_RESOURCE,
                                    KIND_RNG, entry_modules, module_name)


def _summary(source: str, rel=("services", "mod.py")) -> ModuleSummary:
    return summarize_module("repro/" + "/".join(rel), rel,
                            ast.parse(source))


# ---------------------------------------------------------------------------
# Naming and state classification
# ---------------------------------------------------------------------------
def test_module_name_folds_init_and_strips_py():
    assert module_name(("kernel", "shard.py")) == "repro.kernel.shard"
    assert module_name(("kernel", "__init__.py")) == "repro.kernel"
    assert module_name(("__init__.py",)) == "repro"
    assert module_name(("cli.py",)) == "repro.cli"


def test_state_kinds_classified():
    summary = _summary(
        "import itertools\n"
        "import threading\n"
        "import numpy as np\n"
        "CACHE = {}\n"
        "ITEMS = []\n"
        "SEQ = itertools.count(1)\n"
        "RNG = np.random.default_rng(7)\n"
        "LOCK = threading.Lock()\n"
        "LIMIT = 5\n"
        "NAMES = ('a', 'b')\n")
    kinds = {name: var.kind for name, var in summary.state.items()}
    assert kinds["CACHE"] == KIND_MUTABLE
    assert kinds["ITEMS"] == KIND_MUTABLE
    assert kinds["SEQ"] == KIND_MUTABLE      # stateful iterator
    assert kinds["RNG"] == KIND_RNG
    assert kinds["LOCK"] == KIND_RESOURCE
    assert kinds["LIMIT"] == KIND_OTHER
    assert kinds["NAMES"] == KIND_OTHER


def test_sync_primitives_need_a_resource_module_import():
    # A domain class named Lock must not classify as a resource.
    summary = _summary("from mygame import Lock\nDOOR = Lock()\n")
    assert summary.state["DOOR"].kind == KIND_OTHER
    summary = _summary("from threading import Lock\nDOOR = Lock()\n")
    assert summary.state["DOOR"].kind == KIND_RESOURCE


# ---------------------------------------------------------------------------
# Function facts
# ---------------------------------------------------------------------------
def test_mutations_item_write_method_and_global_rebind():
    summary = _summary(
        "CACHE = {}\n"
        "ITEMS = []\n"
        "FLAG = False\n"
        "def put(k, v):\n"
        "    CACHE[k] = v\n"
        "def push(x):\n"
        "    ITEMS.append(x)\n"
        "def arm():\n"
        "    global FLAG\n"
        "    FLAG = True\n")
    mutated = {(f.qualname, m[0], m[2])
               for f in summary.functions for m in f.mutations}
    assert ("put", "CACHE", "item write") in mutated
    assert ("push", "ITEMS", ".append()") in mutated
    assert ("arm", "FLAG", "global rebind") in mutated


def test_next_on_module_iterator_is_a_mutation():
    summary = _summary(
        "import itertools\n"
        "_seq = itertools.count(1)\n"
        "def mint():\n"
        "    return next(_seq)\n")
    assert [(m[0], m[2]) for f in summary.functions
            for m in f.mutations] == [("_seq", "next()")]


def test_local_shadows_are_not_module_state():
    summary = _summary(
        "CACHE = {}\n"
        "def isolated():\n"
        "    CACHE = {}\n"
        "    CACHE['k'] = 1\n"
        "    return CACHE\n")
    assert summary.functions == []   # nothing interesting recorded


def test_subscript_write_target_does_not_shadow():
    # ``CACHE[k] = v`` mutates CACHE, it does not bind a local CACHE.
    summary = _summary(
        "CACHE = {}\n"
        "def put(k, v):\n"
        "    CACHE[k] = v\n")
    assert [m[0] for f in summary.functions for m in f.mutations] == ["CACHE"]


def test_rng_and_resource_captures():
    summary = _summary(
        "import multiprocessing\n"
        "import numpy as np\n"
        "_POOL = None\n"
        "_RNG = None\n"
        "def start(workers):\n"
        "    global _POOL\n"
        "    ctx = multiprocessing.get_context('fork')\n"
        "    _POOL = ctx.Pool(workers)\n"
        "def seed_me():\n"
        "    global _RNG\n"
        "    _RNG = np.random.default_rng(5)\n")
    captures = {(f.qualname, kind): entry
                for f in summary.functions
                for kind, entries in (("res", f.resource_captures),
                                      ("rng", f.rng_captures))
                for entry in entries}
    assert captures[("start", "res")][0] == "_POOL"
    assert captures[("start", "res")][2] == "Pool"
    assert captures[("seed_me", "rng")][0] == "_RNG"
    assert captures[("seed_me", "rng")][2] == "default_rng"


def test_nested_closures_get_their_own_facts():
    summary = _summary(
        "HOOKS = []\n"
        "def add(hook):\n"
        "    HOOKS.append(hook)\n"
        "    def remove():\n"
        "        HOOKS.remove(hook)\n"
        "    return remove\n")
    quals = {f.qualname for f in summary.functions}
    assert quals == {"add", "add.remove"}


def test_reads_tracked_only_for_interesting_kinds():
    summary = _summary(
        "CACHE = {}\n"
        "LIMIT = 5\n"
        "def look(k):\n"
        "    return CACHE.get(k), LIMIT\n")
    reads = {r[0] for f in summary.functions for r in f.reads}
    assert reads == {"CACHE"}        # scalar LIMIT is not tracked


# ---------------------------------------------------------------------------
# Graph, reachability, SCCs
# ---------------------------------------------------------------------------
def _graph_fixture():
    mods = {
        "repro.cli": _summary("from repro.services import alpha\n",
                              ("cli.py",)),
        "repro.services.alpha": _summary(
            "from ..kernel import beta\n", ("services", "alpha.py")),
        "repro.kernel.beta": _summary(
            "def late():\n    from ..services import alpha\n",
            ("kernel", "beta.py")),
        "repro.env.delta": _summary("", ("env", "delta.py")),
    }
    return mods, build_graph(mods)


def test_build_graph_resolves_longest_prefix_and_lazy_imports():
    _mods, graph = _graph_fixture()
    assert graph["repro.cli"] == ["repro.services.alpha"]
    assert graph["repro.services.alpha"] == ["repro.kernel.beta"]
    # The lazy relative import still contributes an edge: forked workers
    # execute function bodies, so lazy imports cross the fork too.
    assert graph["repro.kernel.beta"] == ["repro.services.alpha"]
    assert graph["repro.env.delta"] == []


def test_reachability_witness_is_first_matching_entry():
    _mods, graph = _graph_fixture()
    reached = reachable_from(
        graph, ["repro.cli:main", "repro.kernel.beta:late"])
    assert reached["repro.cli"] == "repro.cli:main"
    # alpha is reachable from both entries; the first wins.
    assert reached["repro.services.alpha"] == "repro.cli:main"
    assert "repro.env.delta" not in reached


def test_entry_modules_ignores_absent_modules():
    _mods, graph = _graph_fixture()
    entries = entry_modules(
        ["repro.kernel.shard:_worker_main", "repro.cli:main"], set(graph))
    assert entries == {"repro.cli": "repro.cli:main"}


def test_sccs_group_the_lazy_cycle():
    _mods, graph = _graph_fixture()
    scc = module_sccs(graph)
    assert scc["repro.services.alpha"] == scc["repro.kernel.beta"]
    assert scc["repro.cli"] != scc["repro.services.alpha"]
    assert scc["repro.env.delta"] != scc["repro.services.alpha"]


def test_summary_dict_roundtrip():
    summary = _summary(
        "import threading\n"
        "CACHE = {}\n"
        "LOCK = threading.Lock()\n"
        "def put(k, v):\n"
        "    CACHE[k] = v\n"
        "def look(k):\n"
        "    return CACHE.get(k)\n")
    clone = ModuleSummary.from_dict(summary.to_dict())
    assert clone == summary
