"""Tests for session objects: hijack prevention and stale reclaim."""

from __future__ import annotations

import pytest

from repro.kernel.errors import SessionError
from repro.services.sessions import SessionManager


def test_acquire_and_holder(sim):
    manager = SessionManager(sim, "projection")
    session = manager.acquire("alice", 30.0)
    assert manager.holder == "alice"
    assert not manager.available
    assert manager.validate(session.token)


def test_second_acquire_denied_and_issue_logged(sim):
    manager = SessionManager(sim, "projection")
    manager.acquire("alice", 30.0)
    with pytest.raises(SessionError):
        manager.acquire("bob", 30.0)
    assert manager.rejections == 1
    assert len(sim.tracer.select("issue.session")) == 1


def test_release_frees_resource(sim):
    manager = SessionManager(sim, "projection")
    session = manager.acquire("alice", 30.0)
    assert manager.release(session.token)
    assert manager.available
    manager.acquire("bob", 30.0)  # no exception


def test_release_with_wrong_token_fails(sim):
    manager = SessionManager(sim, "projection")
    manager.acquire("alice", 30.0)
    assert not manager.release("tok-guess")
    assert manager.holder == "alice"
    assert manager.invalid_tokens >= 1


def test_tokens_unguessable_across_sessions(sim):
    manager = SessionManager(sim, "projection")
    first = manager.acquire("alice", 30.0)
    manager.release(first.token)
    second = manager.acquire("bob", 30.0)
    assert first.token != second.token
    assert not manager.validate(first.token)  # old token now dead


def test_lease_expiry_evicts_stale_session(sim):
    manager = SessionManager(sim, "projection", use_leases=True,
                             sweep_interval=0.5)
    evicted = []
    manager.on_evicted = lambda s: evicted.append(s.owner)
    session = manager.acquire("forgetful", 5.0)
    sim.run(until=10.0)
    assert manager.available
    assert evicted == ["forgetful"]
    assert manager.evictions == 1
    assert not manager.validate(session.token)
    # The reclaim itself is an issue the LPC analysis can classify.
    assert any("forgot to relinquish" in r.message
               for r in sim.tracer.select("issue.session"))


def test_no_leases_means_stuck_forever(sim):
    manager = SessionManager(sim, "projection", use_leases=False)
    manager.acquire("forgetful", 5.0)
    sim.run(until=1000.0)
    assert manager.holder == "forgetful"


def test_renew_extends_session(sim):
    manager = SessionManager(sim, "projection", sweep_interval=0.5)
    session = manager.acquire("alice", 5.0)
    task = sim.every(2.0, lambda: manager.renew(session.token))
    sim.run(until=20.0)
    task.cancel()
    assert manager.holder == "alice"
    sim.run(until=40.0)
    assert manager.available  # expired once renewals stopped


def test_renew_with_bad_token_fails(sim):
    manager = SessionManager(sim, "projection")
    manager.acquire("alice", 30.0)
    assert not manager.renew("bogus")


def test_force_release_by_admin(sim):
    manager = SessionManager(sim, "projection", use_leases=False)
    manager.acquire("stuck", 30.0)
    assert manager.force_release("admin")
    assert manager.available
    assert manager.evictions == 1
    assert not manager.force_release("admin")  # nothing held now


def test_expired_token_invalid_even_before_sweep(sim):
    manager = SessionManager(sim, "projection", sweep_interval=60.0)
    session = manager.acquire("alice", 1.0)
    sim.run(until=5.0)
    # Lease expired at t=1 but no sweep ran yet: token must already fail.
    assert not manager.validate(session.token)


def test_stats_counters(sim):
    manager = SessionManager(sim, "projection")
    session = manager.acquire("a", 30.0)
    manager.release(session.token)
    session2 = manager.acquire("b", 30.0)
    assert manager.acquisitions == 2
    assert manager.releases == 1


def test_session_ids_and_tokens_identical_across_twin_runs():
    """Two back-to-back identical runs mint identical sessions.

    The sequence counter lives in ``sim.context``, not module state, so
    a process that builds simulators repeatedly (sweeps, benchmarks, the
    CLI run twice) never leaks ordinals from one run into the next.
    """
    from repro.kernel.scheduler import Simulator

    def mint():
        run_sim = Simulator(seed=77)
        manager = SessionManager(run_sim, "projection")
        first = manager.acquire("alice", 30.0)
        manager.release(first.token)
        second = manager.acquire("bob", 30.0)
        return [(s.session_id, s.token) for s in (first, second)]

    assert mint() == mint()
