"""Tests for the lookup service (local API and expiry semantics)."""

from __future__ import annotations

import pytest

from repro.discovery.events import ADDED, EXPIRED, REMOVED
from repro.discovery.records import (
    ServiceItem,
    ServiceProxy,
    ServiceTemplate,
    new_service_id,
)
from repro.discovery.registry import LookupService
from repro.kernel.errors import LeaseError
from repro.phys.devices import Device


@pytest.fixture
def hub(sim, world, medium):
    return Device(sim, world, "hub", (10, 10), medium=medium)


@pytest.fixture
def registry(sim, hub):
    return LookupService(sim, hub, "reg", sweep_interval=0.5)


def _item(provider="adapter", service_type="projection", **attrs):
    return ServiceItem(new_service_id(), service_type,
                       ServiceProxy(provider, 21, "vnc"), attrs)


def test_register_and_lookup(sim, registry):
    item = _item(room="A")
    lease = registry.register(item, 30.0)
    assert lease.resource == item.service_id
    found = registry.lookup(ServiceTemplate(service_type="projection"))
    assert [i.service_id for i in found] == [item.service_id]


def test_lookup_respects_template(sim, registry):
    registry.register(_item(room="A"), 30.0)
    registry.register(_item(service_type="printer"), 30.0)
    assert len(registry.lookup(ServiceTemplate())) == 2
    assert len(registry.lookup(ServiceTemplate(service_type="printer"))) == 1
    assert len(registry.lookup(ServiceTemplate(attributes={"room": "A"}))) == 1


def test_lookup_bounded_by_max_matches(sim, registry):
    for _ in range(10):
        registry.register(_item(), 30.0)
    assert len(registry.lookup(ServiceTemplate(), max_matches=3)) == 3


def test_reregistration_replaces(sim, registry):
    item = _item()
    first = registry.register(item, 30.0)
    second = registry.register(item, 30.0)
    assert second.lease_id != first.lease_id
    assert len(registry.items()) == 1


def test_cancel_removes_and_notifies(sim, registry, hub):
    events = []
    registry.notify(ServiceTemplate(), "listener", 60.0)
    # Listen locally by monkeypatching _notify wiring: easier to observe
    # through the subscription list, so intercept the event tx.
    sent = []
    registry._event_tx.send = lambda dst, ev, n, **k: sent.append((dst, ev))
    item = _item()
    lease = registry.register(item, 30.0)
    registry.cancel(lease.lease_id)
    assert registry.items() == []
    kinds = [ev.kind for _dst, ev in sent]
    assert kinds == [ADDED, REMOVED]


def test_cancel_unknown_lease_raises(sim, registry):
    with pytest.raises(LeaseError):
        registry.cancel(424242)


def test_registration_expiry_emits_event_and_issue(sim, registry):
    sent = []
    registry.notify(ServiceTemplate(), "listener", 600.0)
    registry._event_tx.send = lambda dst, ev, n, **k: sent.append(ev)
    registry.register(_item(), 2.0)
    sim.run(until=10.0)
    kinds = [ev.kind for ev in sent]
    assert kinds == [ADDED, EXPIRED]
    assert registry.items() == []
    assert len(sim.tracer.select("issue.discovery")) == 1


def test_notify_template_filtering(sim, registry):
    sent = []
    registry.notify(ServiceTemplate(service_type="printer"), "l", 600.0)
    registry._event_tx.send = lambda dst, ev, n, **k: sent.append(ev)
    registry.register(_item(service_type="projection"), 30.0)
    assert sent == []
    registry.register(_item(service_type="printer"), 30.0)
    assert len(sent) == 1


def test_subscription_expiry_stops_events(sim, registry):
    sent = []
    registry.notify(ServiceTemplate(), "l", 1.0)  # 1 s subscription
    registry._event_tx.send = lambda dst, ev, n, **k: sent.append(ev)
    sim.run(until=5.0)  # subscription swept
    registry.register(_item(), 30.0)
    assert sent == []


def test_renew_routes_to_subscription_table(sim, registry):
    _rid, lease = registry.notify(ServiceTemplate(), "l", 10.0)
    renewed = registry.renew(lease.lease_id)
    assert renewed.lease_id == lease.lease_id


def test_cancel_routes_to_subscription_table(sim, registry):
    rid, lease = registry.notify(ServiceTemplate(), "l", 10.0)
    registry.cancel(lease.lease_id)
    assert rid not in registry._subscriptions


def test_event_sequence_numbers_increase(sim, registry):
    sent = []
    registry.notify(ServiceTemplate(), "l", 600.0)
    registry._event_tx.send = lambda dst, ev, n, **k: sent.append(ev)
    registry.register(_item(), 30.0)
    registry.register(_item(), 30.0)
    assert sent[1].sequence > sent[0].sequence
