"""Tests for causal spans and span-context propagation."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError
from repro.kernel.process import spawn
from repro.kernel.scheduler import Simulator
from repro.kernel.trace import (NULL_SPAN, Tracer, add_default_span_hook,
                                add_default_subscriber, span_ancestry,
                                span_children)


# ---------------------------------------------------------------------------
# Span API basics
# ---------------------------------------------------------------------------

def test_span_begin_end_records_interval(sim):
    span = sim.span_begin("work", "tester", item=7)
    sim._now = 2.5
    sim.span_end(span)
    assert span.start == 0.0
    assert span.end == 2.5
    assert span.duration == 2.5
    assert span.status == "ok"
    assert span.data == {"item": 7}
    assert sim.tracer.spans == [span]


def test_span_parenting_follows_ambient_context(sim):
    outer = sim.span_begin("outer", "tester")
    inner = sim.span_begin("inner", "tester")
    assert inner.parent_id == outer.span_id
    sim.span_end(inner)
    # Ambience reverted to the parent, so a sibling parents under outer.
    sibling = sim.span_begin("sibling", "tester")
    assert sibling.parent_id == outer.span_id


def test_span_context_manager_sets_error_status(sim):
    with pytest.raises(RuntimeError):
        with sim.span("doomed", "tester"):
            raise RuntimeError("boom")
    (span,) = sim.tracer.spans
    assert span.status == "error"
    assert span.end is not None
    assert sim._span_ctx is None


def test_disabled_tracer_returns_null_span():
    sim = Simulator(seed=1, trace=False)
    span = sim.span_begin("work", "tester")
    assert span is NULL_SPAN
    sim.span_end(span)  # must be a no-op, not an error
    with sim.span("work", "tester") as scoped:
        assert scoped is NULL_SPAN
    assert sim.tracer.spans == []


def test_null_span_matches_nothing(sim):
    assert not NULL_SPAN.matches("work")
    assert not NULL_SPAN.matches("")


# ---------------------------------------------------------------------------
# Propagation across scheduled events
# ---------------------------------------------------------------------------

def test_span_context_crosses_schedule(sim):
    parents = []

    def child() -> None:
        parents.append(sim.span_begin("child", "tester"))

    root = sim.span_begin("root", "tester")
    sim.schedule(1.0, child)
    sim.span_end(root)
    sim.run()
    assert parents[0].parent_id == root.span_id


def test_span_context_crosses_schedule_bound(sim):
    parents = []

    def child() -> None:
        parents.append(sim.span_begin("child", "tester"))

    root = sim.span_begin("root", "tester")
    sim.schedule_bound(1.0, child)
    sim.span_end(root)
    sim.run()
    assert parents[0].parent_id == root.span_id


def test_recycled_events_do_not_leak_stale_context(sim):
    """A bound event scheduled outside any span must carry no parent.

    (Historically this guarded the event free list against recycled
    ``ctx`` fields; tuples made the pool obsolete, but a stale ambient
    ``_span_ctx`` leaking across run() rounds would reproduce the same
    bug, so the scenario stays pinned.)
    """
    parents = []

    def traced() -> None:
        pass

    def untraced() -> None:
        parents.append(sim.span_begin("orphan", "tester"))

    root = sim.span_begin("root", "tester")
    sim.schedule_bound(1.0, traced)  # entry captures the root ctx
    sim.span_end(root)
    sim.run()
    # Second round: no ambient span — the new entry must carry None.
    sim.schedule_bound(1.0, untraced)
    sim.run()
    assert parents[0].parent_id is None


def test_multi_hop_chain_reconstructable(sim):
    """root -> hop1 -> hop2 across three events forms one ancestry chain."""
    spans = {}

    def hop(name: str, then=None) -> None:
        span = sim.span_begin(name, "tester")
        spans[name] = span
        if then is not None:
            sim.schedule(1.0, then)
        sim.span_end(span)

    hop("root", then=lambda: hop("hop1", then=lambda: hop("hop2")))
    sim.run()
    chain = span_ancestry(sim.tracer.spans, spans["hop2"])
    assert [s.category for s in chain] == ["hop2", "hop1", "root"]
    tree = span_children(sim.tracer.spans)
    assert [s.category for s in tree[None]] == ["root"]
    assert [s.category for s in tree[spans["root"].span_id]] == ["hop1"]


def test_process_spans_cover_resumptions(sim):
    """A process keeps its own span across yields; children parent under it."""
    child_spans = []

    def body():
        yield 1.0
        child_spans.append(sim.span_begin("step", "proc"))
        yield 1.0

    proc = spawn(sim, body(), "worker")
    sim.run()
    assert proc.span.status == "ok"
    assert proc.span.end == 2.0
    assert child_spans[0].parent_id == proc.span.span_id


# ---------------------------------------------------------------------------
# Bounded buffers: head vs ring
# ---------------------------------------------------------------------------

def test_head_mode_drops_newest():
    sim = Simulator(seed=1, trace_capacity=2, trace_mode="head")
    for i in range(5):
        sim.trace("tick", "tester", str(i))
    assert [r.message for r in sim.tracer.records] == ["0", "1"]
    assert sim.tracer.dropped == 3


def test_ring_mode_drops_oldest():
    sim = Simulator(seed=1, trace_capacity=2, trace_mode="ring")
    for i in range(5):
        sim.trace("tick", "tester", str(i))
    assert [r.message for r in sim.tracer.records] == ["3", "4"]
    assert sim.tracer.dropped == 3


def test_unknown_trace_mode_rejected():
    with pytest.raises(ConfigurationError):
        Tracer(mode="sideways")


def test_subscribers_see_dropped_records():
    """Streaming consumers still observe records the buffer rejected."""
    sim = Simulator(seed=1, trace_capacity=1, trace_mode="head")
    seen = []
    sim.tracer.subscribe("tick", lambda r: seen.append(r.message))
    for i in range(3):
        sim.trace("tick", "tester", str(i))
    assert seen == ["0", "1", "2"]


# ---------------------------------------------------------------------------
# Process-default hooks (the CLI's --trace plumbing)
# ---------------------------------------------------------------------------

def test_default_subscriber_reaches_future_tracers():
    seen = []
    remove = add_default_subscriber("tick", lambda r: seen.append(r.message))
    try:
        sim = Simulator(seed=1)
        sim.trace("tick", "tester", "hello")
        sim.trace("other", "tester", "filtered out")
    finally:
        remove()
    assert seen == ["hello"]
    # After removal, new tracers are clean again.
    sim2 = Simulator(seed=1)
    sim2.trace("tick", "tester", "late")
    assert seen == ["hello"]


def test_default_span_hook_fires_on_span_end():
    ended = []
    remove = add_default_span_hook(lambda s: ended.append(s.category))
    try:
        sim = Simulator(seed=1)
        with sim.span("work", "tester"):
            pass
    finally:
        remove()
    assert ended == ["work"]
