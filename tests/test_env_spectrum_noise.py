"""Tests for 2.4 GHz channel overlap and the acoustic field."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.noise import (
    TYPICAL_LEVELS_DB,
    AcousticField,
    NoiseSource,
    combine_levels_db,
)
from repro.env.spectrum import (
    CHANNELS,
    NON_OVERLAPPING,
    center_frequency_mhz,
    least_congested,
    overlap_factor,
    overlap_matrix,
    validate_channel,
)
from repro.env.world import World
from repro.kernel.errors import ConfigurationError


# ---------------------------------------------------------------------------
# Spectrum
# ---------------------------------------------------------------------------

def test_channel_frequencies():
    assert center_frequency_mhz(1) == pytest.approx(2412.0)
    assert center_frequency_mhz(6) == pytest.approx(2437.0)
    assert center_frequency_mhz(11) == pytest.approx(2462.0)


def test_invalid_channel_rejected():
    for channel in (0, 12, -3, 100):
        with pytest.raises(ConfigurationError):
            validate_channel(channel)


def test_cochannel_full_overlap():
    assert overlap_factor(6, 6) == 1.0


def test_overlap_symmetric_and_decreasing():
    values = [overlap_factor(1, 1 + sep) for sep in range(0, 6)]
    assert values == sorted(values, reverse=True)
    assert overlap_factor(3, 7) == overlap_factor(7, 3)


def test_non_overlapping_plan_is_orthogonal():
    for a in NON_OVERLAPPING:
        for b in NON_OVERLAPPING:
            if a != b:
                assert overlap_factor(a, b) == 0.0


def test_adjacent_channel_partial_overlap():
    assert 0.0 < overlap_factor(6, 7) < 1.0


def test_overlap_matrix_matches_scalar():
    channels = [1, 4, 6, 11]
    matrix = overlap_matrix(channels)
    for i, a in enumerate(channels):
        for j, b in enumerate(channels):
            assert matrix[i, j] == pytest.approx(overlap_factor(a, b))


def test_least_congested_avoids_load():
    # Heavy load on 1 and 6: channel 11 is the clean choice.
    assert least_congested({1: 10.0, 6: 10.0}) == 11


def test_least_congested_accounts_for_adjacency():
    # Load on channel 3 leaks into 1..7; 8..11 are clean, lowest wins... but
    # channels within 5 of 3 carry leakage, so the pick must be >= 8.
    assert least_congested({3: 100.0}) >= 8


def test_least_congested_empty_load_prefers_lowest():
    assert least_congested({}) == 1


# ---------------------------------------------------------------------------
# Acoustics
# ---------------------------------------------------------------------------

def test_combine_levels_doubles_to_plus_three_db():
    assert combine_levels_db([60.0, 60.0]) == pytest.approx(63.01, abs=0.01)


def test_combine_levels_dominated_by_loudest():
    assert combine_levels_db([80.0, 40.0]) == pytest.approx(80.0, abs=0.1)


def test_combine_levels_empty():
    assert combine_levels_db([]) == 0.0


def test_source_inverse_square_attenuation():
    src = NoiseSource("s", 70.0)
    assert src.level_at(1.0) == pytest.approx(70.0)
    assert src.level_at(2.0) == pytest.approx(70.0 - 6.02, abs=0.01)
    assert src.level_at(10.0) == pytest.approx(50.0)


def test_source_minimum_distance_clamp():
    src = NoiseSource("s", 70.0)
    assert src.level_at(0.0) == src.level_at(0.5)


def _field():
    world = World(50, 50)
    field = AcousticField(world, floor_db=40.0)
    world.place("mic", (25.0, 25.0))
    return world, field


def test_field_floor_only():
    _world, field = _field()
    assert field.level_at("mic") == pytest.approx(40.0)


def test_field_with_source():
    _world, field = _field()
    field.add_source(NoiseSource("fan", 70.0), (26.0, 25.0))
    level = field.level_at("mic")
    assert level > 65.0  # the 70 dB @1 m source dominates the 40 dB floor


def test_duplicate_source_rejected():
    _world, field = _field()
    field.add_source(NoiseSource("fan", 70.0), (0, 0))
    with pytest.raises(ConfigurationError):
        field.add_source(NoiseSource("fan", 60.0), (1, 1))


def test_remove_source_stops_radiating():
    _world, field = _field()
    field.add_source(NoiseSource("fan", 80.0), (25.5, 25.0))
    loud = field.level_at("mic")
    field.remove_source("fan")
    assert field.level_at("mic") < loud
    with pytest.raises(ConfigurationError):
        field.remove_source("fan")


def test_speech_snr():
    _world, field = _field()
    assert field.speech_snr_db(62.0, "mic") == pytest.approx(22.0)


def test_social_appropriateness_quiet_room():
    """In a quiet room, normal speech dominates — inappropriate."""
    _world, field = _field()
    assert not field.socially_appropriate("mic", speech_level_db=65.0)


def test_social_appropriateness_noisy_room():
    world = World(50, 50)
    field = AcousticField(world, floor_db=60.0)
    world.place("mic", (25.0, 25.0))
    assert field.socially_appropriate("mic", speech_level_db=65.0)


def test_typical_levels_ordering():
    assert TYPICAL_LEVELS_DB["quiet_office"] < TYPICAL_LEVELS_DB["subway"]
