"""Tests for devices, batteries and the NIC wrapper."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError
from repro.phys.devices import (
    AromaAdapter,
    Device,
    DigitalProjector,
    Laptop,
    PDA,
    laptop_form,
    pda_form,
)
from repro.phys.power import Battery, EnergyMeter


# ---------------------------------------------------------------------------
# Battery / energy
# ---------------------------------------------------------------------------

def test_battery_drain(sim):
    battery = Battery(sim, 100.0)
    used = battery.draw(10.0, 5.0)
    assert used == 50.0
    assert battery.fraction == pytest.approx(0.5)
    assert not battery.empty


def test_battery_clamps_at_zero_and_issues(sim):
    battery = Battery(sim, 10.0, "pda.battery")
    battery.draw(10.0, 5.0)
    assert battery.empty
    assert battery.drained_events == 1
    assert len(sim.tracer.select("issue.power")) == 1


def test_battery_invalid_args(sim):
    with pytest.raises(ConfigurationError):
        Battery(sim, 0.0)
    battery = Battery(sim, 10.0)
    with pytest.raises(ConfigurationError):
        battery.draw(-1.0, 1.0)


def test_energy_meter_accumulates(sim):
    meter = EnergyMeter(sim)
    meter.account("tx", 2.0)
    meter.account("idle", 10.0)
    assert meter.energy_j["tx"] == pytest.approx(2.8)
    assert meter.total_j == pytest.approx(2.8 + 7.5)


def test_energy_meter_unknown_state(sim):
    meter = EnergyMeter(sim)
    with pytest.raises(ConfigurationError):
        meter.account("warp", 1.0)


def test_energy_meter_drains_battery(sim):
    battery = Battery(sim, 100.0)
    meter = EnergyMeter(sim, battery)
    meter.account("tx", 10.0)
    assert battery.remaining_j == pytest.approx(100.0 - 14.0)


# ---------------------------------------------------------------------------
# Devices
# ---------------------------------------------------------------------------

def test_device_without_medium_is_offline(sim, world):
    device = Device(sim, world, "box", (1, 1))
    assert not device.networked
    with pytest.raises(ConfigurationError):
        device.reliable(10)


def test_device_with_medium_has_stack(sim, world, medium):
    device = Device(sim, world, "node", (1, 1), medium=medium)
    assert device.networked
    assert device.stack.address == "node"
    assert device.multicast is not None


def test_laptop_defaults(sim, world, medium):
    laptop = Laptop(sim, world, "laptop", (5, 5), medium)
    assert laptop.platform.ui.kind == "gui"
    assert laptop.battery is not None
    assert laptop.form.requires_proximity  # the tether


def test_pda_defaults(sim, world, medium):
    pda = PDA(sim, world, "pda", (5, 5), medium)
    assert not pda.platform.execution.multitasking
    assert pda.battery.capacity_j < 10_000


def test_projector_displays_only_when_ready(sim, world):
    projector = DigitalProjector(sim, world, "beamer", (1, 1))
    assert not projector.display("video-in", 1000)  # lamp off
    projector.power(True)
    assert not projector.display("video-in", 1000)  # wrong input
    projector.select_input("video-in")
    assert projector.display("video-in", 1000)
    assert projector.frames_displayed == 1
    assert projector.pixels_displayed == 1000


def test_projector_fps_window(sim, world):
    projector = DigitalProjector(sim, world, "beamer", (1, 1))
    projector.power(True)
    projector.select_input("x")
    for _ in range(10):
        projector.display("x", 100)
    # 10 frames at t=0 over the (clamped) window
    assert projector.displayed_fps(5.0) > 0.0


def test_projector_bad_resolution(sim, world):
    with pytest.raises(ConfigurationError):
        DigitalProjector(sim, world, "p", (0, 0), resolution=(0, 768))


def test_adapter_drives_connected_projector(sim, world, medium):
    adapter = AromaAdapter(sim, world, "adapter", (1, 1), medium)
    projector = DigitalProjector(sim, world, "beamer", (2, 1))
    assert not adapter.drive_display(100)  # nothing connected -> issue
    assert len(sim.tracer.select("issue.physical")) == 1
    adapter.connect_projector(projector)
    projector.power(True)
    assert adapter.drive_display(100)
    assert projector.input_source == AromaAdapter.VIDEO_SOURCE


def test_form_factor_presets():
    assert laptop_form().requires_proximity
    assert pda_form().weight_kg < 0.5


def test_device_position_property(sim, world, medium):
    device = Device(sim, world, "node", (3, 4), medium=medium)
    x, y = device.position
    assert (x, y) == (3.0, 4.0)


def test_dead_battery_silences_radio(sim, world, medium):
    from repro.phys.power import Battery

    weak = Battery(sim, 0.2, "weak")  # a fifth of a joule: ~100 frames
    device = Device(sim, world, "dying", (10, 10), medium=medium,
                    battery=weak)
    peer = Device(sim, world, "peer", (12, 10), medium=medium)
    sent = 0
    for _ in range(200):
        if device.nic.send("peer", None, 1400):
            sent += 1
        sim.run(until=sim.now + 0.05)
    assert device.nic.dead
    assert sent < 200  # refusals began once the battery emptied
    # The death is visible to the analysis layer.
    assert any("battery drained" in r.message
               for r in sim.tracer.select("issue.power"))
    # And reception is gone too.
    before = device.nic.mac.stats["rx_frames"]
    peer.nic.send("dying", None, 100)
    sim.run(until=sim.now + 1.0)
    assert device.nic.mac.stats["rx_frames"] == before


def test_mains_powered_nic_never_dies(sim, world, medium):
    device = Device(sim, world, "plugged", (10, 10), medium=medium)
    assert device.nic.dead is False
