"""Rule-by-rule fixtures for the LPC1xx determinism linter.

Every rule is exercised with at least one seeded violation (positive)
and one near-miss that must stay clean (negative), so a rule that stops
firing — or starts over-firing — breaks the suite, not just the lint.
"""

from __future__ import annotations

import pytest

from repro.checks import RULES, check_source


def codes(source: str) -> list:
    return [f.code for f in check_source("snippet.py", source)]


# ---------------------------------------------------------------------------
# LPC101 — wall clock
# ---------------------------------------------------------------------------
LPC101_POSITIVE = [
    "import time\nstamp = time.time()\n",
    "import time as t\nstamp = t.time_ns()\n",
    "from time import time\nstamp = time()\n",
    "import datetime\nnow = datetime.datetime.now()\n",
    "from datetime import datetime\nnow = datetime.utcnow()\n",
    "from datetime import date\ntoday = date.today()\n",
]

LPC101_NEGATIVE = [
    # perf_counter is the sanctioned benchmark clock.
    "import time\nt0 = time.perf_counter()\n",
    "import time\ntime.sleep(0.1)\n",
    "from datetime import datetime\nd = datetime.fromtimestamp(0)\n",
    # A local function named time() is not the stdlib.
    "def time():\n    return 0\nstamp = time()\n",
]


@pytest.mark.parametrize("source", LPC101_POSITIVE)
def test_lpc101_flags_wall_clock(source):
    assert "LPC101" in codes(source)


@pytest.mark.parametrize("source", LPC101_NEGATIVE)
def test_lpc101_ignores_safe_clocks(source):
    assert "LPC101" not in codes(source)


# ---------------------------------------------------------------------------
# LPC102 — stdlib random module
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("source", [
    "import random\n",
    "import random as rnd\n",
    "from random import randint\n",
])
def test_lpc102_flags_stdlib_random(source):
    assert "LPC102" in codes(source)


@pytest.mark.parametrize("source", [
    "from repro.kernel.random import RandomStreams\n",
    "import numpy.random\n",
    "from numpy import random\n",
])
def test_lpc102_ignores_kernel_and_numpy_random(source):
    assert "LPC102" not in codes(source)


# ---------------------------------------------------------------------------
# LPC103 — unseeded / global-state RNG
# ---------------------------------------------------------------------------
LPC103_POSITIVE = [
    "from numpy.random import default_rng\ng = default_rng()\n",
    "from numpy.random import default_rng\ng = default_rng(None)\n",
    "import numpy as np\ng = np.random.default_rng(seed=None)\n",
    "import numpy as np\nx = np.random.rand(3)\n",
    "import numpy as np\nnp.random.seed(0)\n",
    "import numpy.random as npr\nx = npr.shuffle([1, 2])\n",
    "from numpy import random\nx = random.choice([1, 2])\n",
    "from random import Random\nr = Random()\n",
]

LPC103_NEGATIVE = [
    "from numpy.random import default_rng\ng = default_rng(7)\n",
    "import numpy as np\ng = np.random.default_rng(1234)\n",
    "import numpy as np\ng = np.random.default_rng(seed=1)\n",
    "from random import Random\nr = Random(42)\n",
    # Methods on an existing generator are stream-local, not global.
    "def draw(rng):\n    return rng.random()\n",
]


@pytest.mark.parametrize("source", LPC103_POSITIVE)
def test_lpc103_flags_unseeded_rng(source):
    assert "LPC103" in codes(source)


@pytest.mark.parametrize("source", LPC103_NEGATIVE)
def test_lpc103_ignores_seeded_rng(source):
    assert "LPC103" not in codes(source)


# ---------------------------------------------------------------------------
# LPC104 — ordering-sensitive set iteration
# ---------------------------------------------------------------------------
LPC104_POSITIVE = [
    "for x in {1, 2, 3}:\n    print(x)\n",
    "def f(xs):\n    for x in set(xs):\n        yield x\n",
    "def f(xs):\n    return list(set(xs))\n",
    "def f(xs):\n    return tuple(frozenset(xs))\n",
    "def f(xs):\n    return [x for x in set(xs)]\n",
    "def f(xs):\n    return {x: 1 for x in set(xs)}\n",
    "def f(a, b):\n    for x in set(a) | set(b):\n        print(x)\n",
    "def f(xs):\n    return list({x.name for x in xs})\n",
]

LPC104_NEGATIVE = [
    # Order-insensitive consumption is fine.
    "def f(xs):\n    return sorted(set(xs))\n",
    "def f(xs):\n    return len(set(xs))\n",
    "def f(xs):\n    return max(set(xs))\n",
    "def f(xs, y):\n    return y in set(xs)\n",
    # Dict views are insertion-ordered in CPython >= 3.7.
    "def f(d):\n    for k in d.keys():\n        print(k)\n",
    "def f(d):\n    return list(d.values())\n",
    # Iterating a list/tuple is ordered.
    "for x in [3, 1, 2]:\n    print(x)\n",
]


@pytest.mark.parametrize("source", LPC104_POSITIVE)
def test_lpc104_flags_set_iteration(source):
    assert "LPC104" in codes(source)


@pytest.mark.parametrize("source", LPC104_NEGATIVE)
def test_lpc104_ignores_ordered_iteration(source):
    assert "LPC104" not in codes(source)


# ---------------------------------------------------------------------------
# LPC105 — id()-based ordering
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("source", [
    "def f(xs):\n    return sorted(xs, key=id)\n",
    "def f(xs):\n    xs.sort(key=id)\n",
    "def f(xs):\n    return sorted(xs, key=lambda o: id(o))\n",
])
def test_lpc105_flags_id_sorting(source):
    assert "LPC105" in codes(source)


@pytest.mark.parametrize("source", [
    "def f(xs):\n    return sorted(xs, key=str)\n",
    "def f(xs):\n    return sorted(xs, key=lambda o: o.name)\n",
    "def f(x):\n    return id(x)\n",   # id() alone is not an ordering
])
def test_lpc105_ignores_stable_keys(source):
    assert "LPC105" not in codes(source)


# ---------------------------------------------------------------------------
# LPC106 — mutable default arguments
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("source", [
    "def f(a, b=[]):\n    return b\n",
    "def f(a, b={}):\n    return b\n",
    "def f(a, b=set()):\n    return b\n",
    "def f(a, *, b=list()):\n    return b\n",
    "def f(a, b=dict()):\n    return b\n",
    "async def f(a, b=[]):\n    return b\n",
])
def test_lpc106_flags_mutable_defaults(source):
    assert "LPC106" in codes(source)


@pytest.mark.parametrize("source", [
    "def f(a, b=None):\n    return b or []\n",
    "def f(a, b=()):\n    return b\n",
    "def f(a, b=0, c='x'):\n    return b\n",
    "def f(a, b=frozenset()):\n    return b\n",
])
def test_lpc106_ignores_immutable_defaults(source):
    assert "LPC106" not in codes(source)


# ---------------------------------------------------------------------------
# LPC107 — heapq outside the kernel
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("source", [
    "import heapq\n",
    "import heapq as hq\n",
    "from heapq import heappush\n",
    "from heapq import heappush, heappop\n",
])
def test_lpc107_flags_heapq_outside_kernel(source):
    assert "LPC107" in codes(source)
    assert "LPC107" in [f.code for f in
                        check_source("src/repro/net/queueing.py", source)]


@pytest.mark.parametrize("path", [
    "src/repro/kernel/scheduler.py",
    "src/repro/kernel/batchq.py",
    "kernel/anything.py",
])
def test_lpc107_allows_heapq_inside_kernel(path):
    assert "LPC107" not in [f.code for f in
                            check_source(path, "import heapq\n")]


def test_lpc107_ignores_lookalike_names():
    # A module merely *mentioning* heapq, or importing a similarly named
    # local module, is not a violation.
    assert "LPC107" not in codes("import heapq2\n")
    assert "LPC107" not in codes("x = 'heapq'\n")


# ---------------------------------------------------------------------------
# LPC108 — cross-shard engine state outside the shard runtime
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("source", [
    "shard.sim.schedule(1.0, fn)\n",
    "x = other_shard.world\n",
    "shards[1].sim.run(until=2.0)\n",
    "t = self.shard.sim.now\n",
    "peer_shards[i].world.place('a', (0, 0))\n",
])
def test_lpc108_flags_cross_shard_engine_access(source):
    assert "LPC108" in codes(source)
    assert "LPC108" in [f.code for f in
                        check_source("src/repro/experiments/bad.py", source)]


@pytest.mark.parametrize("path", [
    "src/repro/kernel/shard.py",
    "kernel/shard.py",
])
def test_lpc108_allows_the_shard_coordinator(path):
    assert "LPC108" not in [f.code for f in
                            check_source(path, "x = shard.sim\n")]


@pytest.mark.parametrize("source", [
    "program.sim.run(until=1.0)\n",      # no shard-ish base name
    "shard.ports.send('ch', dst=1)\n",   # the sanctioned channel API
    "x = shard.lookahead\n",
    "sim.run(until=2.0)\n",              # bare engine, no handle
    "x = simulator.world\n",
])
def test_lpc108_ignores_sanctioned_access(source):
    assert "LPC108" not in codes(source)


# ---------------------------------------------------------------------------
# LPC109 — per-event attribute lookups inside registered hot loops
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("source", [
    # Attribute load in the loop body of a registered loop variant.
    "def loop_plain(sim, queue):\n"
    "    while queue:\n"
    "        fn = sim.handler\n"
    "        fn()\n",
    # ...or in the loop condition itself.
    "def loop_traced(sim, queue):\n"
    "    while sim.queue:\n"
    "        pass\n",
    # for-loops count too, and chained walks fire per link.
    "def loop_bounded(sim, queue):\n"
    "    for entry in queue:\n"
    "        sim.tracer.emit(entry)\n",
])
def test_lpc109_flags_hot_loop_attribute_loads(source):
    assert "LPC109" in codes(source)


@pytest.mark.parametrize("source", [
    # Not a registered hot loop: same shape, different name.
    "def drain(sim, queue):\n"
    "    while queue:\n"
    "        fn = sim.handler\n"
    "        fn()\n",
    # Allow-listed per-event reads (cancel flag, stop latch, span ctx).
    "def loop_plain(sim, queue):\n"
    "    while queue:\n"
    "        if sim._stopped:\n"
    "            break\n",
    "def loop_traced(sim, queue):\n"
    "    while queue:\n"
    "        ctx = sim._span_ctx\n",
    "def loop_bounded(sim, queue):\n"
    "    while queue:\n"
    "        if handle.cancelled:\n"
    "            continue\n",
    # Hoisted before the loop: the pattern the rule exists to enforce.
    "def loop_plain(sim, queue):\n"
    "    pop = sim.pop\n"
    "    while queue:\n"
    "        pop()\n",
    # Stores / augmented assignments are not lookup tax.
    "def loop_plain(sim, queue):\n"
    "    while queue:\n"
    "        sim._now = 1.0\n",
])
def test_lpc109_ignores_sanctioned_hot_loop_access(source):
    assert "LPC109" not in codes(source)


def test_lpc109_is_a_warning_with_hoist_hint():
    source = ("def loop_plain(sim, queue):\n"
              "    while queue:\n"
              "        fn = sim.handler\n")
    (finding,) = [f for f in check_source("snippet.py", source)
                  if f.code == "LPC109"]
    assert finding.severity == "warning"
    assert "hoist" in finding.hint


def test_lpc109_registry_matches_dispatch_module():
    """The registry must name real functions — a renamed loop variant
    that nobody re-registers would silently disable the rule."""
    from repro.kernel import dispatch

    for name in dispatch.HOT_LOOP:
        assert callable(getattr(dispatch, name))


# ---------------------------------------------------------------------------
# LPC001 — unparseable source
# ---------------------------------------------------------------------------
def test_lpc001_on_syntax_error():
    findings = check_source("bad.py", "def broken(:\n")
    assert [f.code for f in findings] == ["LPC001"]
    assert findings[0].severity == "error"


def test_findings_carry_location_and_hint():
    findings = check_source("mod.py", "import time\nx = time.time()\n")
    (finding,) = findings
    assert finding.path == "mod.py"
    assert finding.line == 2
    assert finding.code == "LPC101"
    assert finding.hint == RULES["LPC101"].hint
    assert "mod.py:2" in finding.format()


def test_every_lpc1xx_rule_has_a_fixture():
    """The catalogue and this file enumerate the same determinism rules."""
    fixture_codes = {"LPC101", "LPC102", "LPC103", "LPC104", "LPC105",
                     "LPC106", "LPC107", "LPC108", "LPC109"}
    catalogue = {code for code in RULES if code.startswith("LPC1")}
    assert catalogue == fixture_codes
