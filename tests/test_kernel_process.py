"""Tests for generator-based processes and signals."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ProcessError
from repro.kernel.process import Process, Signal, spawn


def test_process_sleeps_for_yielded_delay(sim):
    log = []

    def proc():
        log.append(("start", sim.now))
        yield 2.5
        log.append(("end", sim.now))

    spawn(sim, proc())
    sim.run()
    assert log == [("start", 0.0), ("end", 2.5)]


def test_process_result_captured(sim):
    def proc():
        yield 1.0
        return 42

    p = spawn(sim, proc())
    sim.run()
    assert p.done and p.result == 42 and p.error is None


def test_process_error_captured_not_raised(sim):
    def proc():
        yield 1.0
        raise ValueError("boom")

    p = spawn(sim, proc())
    sim.run()
    assert p.done and isinstance(p.error, ValueError)


def test_negative_delay_fails_process(sim):
    def proc():
        yield -1.0

    p = spawn(sim, proc())
    sim.run()
    assert isinstance(p.error, ProcessError)


def test_bad_yield_value_fails_process(sim):
    def proc():
        yield "nonsense"

    p = spawn(sim, proc())
    sim.run()
    assert isinstance(p.error, ProcessError)


def test_spawn_requires_generator(sim):
    with pytest.raises(ProcessError):
        spawn(sim, lambda: None)  # type: ignore[arg-type]


def test_spawn_with_delay(sim):
    times = []

    def proc():
        times.append(sim.now)
        yield 0.0

    spawn(sim, proc(), delay=3.0)
    sim.run()
    assert times == [3.0]


def test_signal_wakes_waiting_process(sim):
    signal = Signal(sim, "go")
    log = []

    def waiter():
        value = yield signal
        log.append((sim.now, value))

    spawn(sim, waiter())
    sim.schedule(5.0, signal.fire, "payload")
    sim.run()
    assert log == [(5.0, "payload")]


def test_signal_fire_count_and_waiter_count(sim):
    signal = Signal(sim, "s")
    results = []
    signal.wait(results.append)
    signal.wait(results.append)
    woken = signal.fire("v")
    assert woken == 2
    sim.run()
    assert results == ["v", "v"]
    assert signal.fire_count == 1


def test_signal_is_edge_triggered(sim):
    signal = Signal(sim, "s")
    results = []
    signal.fire("early")
    signal.wait(results.append)
    sim.run()
    assert results == []  # registered after the fire: waits for the next
    signal.fire("late")
    sim.run()
    assert results == ["late"]


def test_process_waits_for_child_process(sim):
    log = []

    def child():
        yield 2.0
        return "child-result"

    def parent():
        result = yield spawn(sim, child())
        log.append((sim.now, result))

    spawn(sim, parent())
    sim.run()
    assert log == [(2.0, "child-result")]


def test_waiting_on_finished_process_resumes_immediately(sim):
    def child():
        yield 1.0
        return 7

    child_proc = spawn(sim, child())

    def parent():
        yield 5.0  # child finishes long before
        value = yield child_proc
        return value

    parent_proc = spawn(sim, parent())
    sim.run()
    assert parent_proc.result == 7


def test_interrupt_ends_process(sim):
    def proc():
        yield 100.0

    p = spawn(sim, proc())
    sim.schedule(1.0, p.interrupt)
    sim.run()
    assert p.done
    assert isinstance(p.error, ProcessError)


def test_interrupt_finished_process_is_noop(sim):
    def proc():
        yield 0.5
        return "ok"

    p = spawn(sim, proc())
    sim.run()
    p.interrupt()
    assert p.result == "ok" and p.error is None


def test_process_finished_signal_fires(sim):
    hits = []

    def proc():
        yield 1.0
        return "r"

    p = spawn(sim, proc())
    p.finished.wait(hits.append)
    sim.run()
    assert hits == ["r"]
