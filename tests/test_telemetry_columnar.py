"""Tests for columnar telemetry export and streaming aggregation.

The contract under test: the columnar ``.npz`` export carries the same
logical lines as the JSONL export (and is byte-deterministic), and a
:class:`StreamingAggregator` folding the run live is byte-identical to
the record-replay paths (``telemetry_summary`` / ``layer_report``) on
unbounded traced runs — including when the tracer runs in ``stream``
mode and stores nothing at all.
"""

from __future__ import annotations

import json

import pytest

from repro.kernel.errors import ConfigurationError
from repro.kernel.scheduler import Simulator
from repro.telemetry.columnar import (HAVE_PYARROW, ColumnarWriter,
                                      read_columnar, read_telemetry,
                                      write_run_columnar)
from repro.telemetry.jsonl import read_jsonl, write_run_jsonl
from repro.telemetry.report import layer_report, layer_report_data
from repro.telemetry.streaming import (OVERFLOW_CATEGORY,
                                       StreamingAggregator,
                                       span_duration_histogram)
from repro.telemetry.summary import aggregate_telemetry, telemetry_summary

USERS = {"alice"}


def _workload(sim: Simulator) -> None:
    """A deterministic mixed workload: records, spans (one left open),
    issues in both columns, an unclassifiable issue, and metrics."""
    def tick(n: int) -> None:
        sim.trace("mac.tx", "adapter", "frame out", bytes=100 + n, n=n)
        if n % 3 == 0:
            with sim.span("transport.send", "laptop", item=n):
                sim.trace("mac.rx", "adapter", "frame in")
        if n == 2:
            sim.issue("radio", "adapter", "multipath fade")
            sim.issue("goal", "alice", "projection expectation unmet")
            sim.issue("???", "mystery", "unplaceable concern")
        sim.metrics.counter("mac.frames").add()

    for n in range(6):
        sim.schedule(0.5 * n, tick, n)
    sim.run(until=4.0)
    sim.span_begin("session.hold", "alice")  # deliberately left open


# ---------------------------------------------------------------------------
# Columnar export: logical equality with JSONL, determinism, edge cases
# ---------------------------------------------------------------------------

def test_columnar_round_trip_matches_jsonl(sim, tmp_path):
    _workload(sim)
    jsonl_path = tmp_path / "run.jsonl"
    npz_path = tmp_path / "run.npz"
    jsonl_counts = write_run_jsonl(jsonl_path, sim)
    npz_counts = write_run_columnar(npz_path, sim)
    assert npz_counts == jsonl_counts
    assert read_columnar(npz_path) == read_jsonl(jsonl_path)


def test_columnar_prefix_filter_matches_jsonl(sim, tmp_path):
    _workload(sim)
    a = write_run_jsonl(tmp_path / "a.jsonl", sim, prefix="mac",
                        include_metrics=False)
    b = write_run_columnar(tmp_path / "b.npz", sim, prefix="mac",
                           include_metrics=False)
    assert a == b
    assert (read_columnar(tmp_path / "b.npz")
            == read_jsonl(tmp_path / "a.jsonl"))


def test_columnar_npz_is_byte_deterministic(tmp_path):
    paths = []
    for name in ("a.npz", "b.npz"):
        sim = Simulator(seed=99)
        _workload(sim)
        path = tmp_path / name
        write_run_columnar(path, sim)
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()


def test_columnar_repeated_export_is_byte_identical(sim, tmp_path):
    _workload(sim)
    a, b = tmp_path / "a.npz", tmp_path / "b.npz"
    write_run_columnar(a, sim)
    write_run_columnar(b, sim)
    assert a.read_bytes() == b.read_bytes()


def test_columnar_open_span_and_parent_round_trip(sim, tmp_path):
    with sim.span("outer", "t"):
        with sim.span("inner", "t"):
            pass
    sim.span_begin("dangling", "t")
    path = tmp_path / "spans.npz"
    write_run_columnar(path, sim, include_metrics=False)
    spans = {line["category"]: line for line in read_columnar(path)}
    assert spans["outer"]["parent_id"] is None
    assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
    assert spans["dangling"]["end"] is None
    assert spans["outer"]["end"] is not None


def test_columnar_distinguishes_equal_payload_values(sim, tmp_path):
    """1, 1.0 and True are equal (and hash alike) in Python but are
    different JSON — the payload memo must never conflate them."""
    sim.trace("t", "s", "int", n=1)
    sim.trace("t", "s", "float", n=1.0)
    sim.trace("t", "s", "bool", n=True)
    path = tmp_path / "payloads.npz"
    write_run_columnar(path, sim, include_metrics=False)
    values = [line["data"]["n"] for line in read_columnar(path)]
    assert values == [1, 1.0, True]
    assert [type(v) for v in values] == [int, float, bool]


def test_columnar_unserialisable_payload_degrades_to_repr(sim, tmp_path):
    sim.trace("t", "s", "obj", obj=object())
    path = tmp_path / "obj.npz"
    write_run_columnar(path, sim, include_metrics=False)
    (line,) = read_columnar(path)
    assert line["data"]["obj"].startswith("<object object")


def test_columnar_unknown_backend_rejected(tmp_path):
    with pytest.raises(ConfigurationError):
        ColumnarWriter(tmp_path / "x.bin", backend="csv")


@pytest.mark.skipif(HAVE_PYARROW, reason="pyarrow installed here")
def test_columnar_parquet_backend_gated_without_pyarrow(tmp_path):
    with pytest.raises(ConfigurationError):
        ColumnarWriter(tmp_path / "x.parquet", backend="parquet")


@pytest.mark.skipif(not HAVE_PYARROW, reason="needs the pyarrow extra")
def test_columnar_parquet_round_trip_matches_jsonl(sim, tmp_path):
    _workload(sim)
    write_run_jsonl(tmp_path / "run.jsonl", sim)
    write_run_columnar(tmp_path / "run.parquet", sim)
    assert (read_columnar(tmp_path / "run.parquet")
            == read_jsonl(tmp_path / "run.jsonl"))


def test_read_telemetry_dispatches_by_suffix(sim, tmp_path):
    _workload(sim)
    write_run_jsonl(tmp_path / "run.jsonl", sim)
    write_run_columnar(tmp_path / "run.npz", sim)
    assert (read_telemetry(tmp_path / "run.npz")
            == read_telemetry(tmp_path / "run.jsonl"))


def test_columnar_writer_flush_and_context_manager(sim, tmp_path):
    sim.trace("t", "s", "one")
    path = tmp_path / "flush.npz"
    with ColumnarWriter(path) as writer:
        writer.write_record(sim.tracer.records[0])
        writer.flush()
        assert path.exists()
        mid = read_columnar(path)
    assert len(mid) == 1
    assert writer.bytes == path.stat().st_size > 0


# ---------------------------------------------------------------------------
# JSONL writer hardening (context manager, flush, truncated tail)
# ---------------------------------------------------------------------------

def test_jsonl_read_tolerates_truncated_final_line(sim, tmp_path):
    _workload(sim)
    path = tmp_path / "crash.jsonl"
    write_run_jsonl(path, sim)
    whole = read_jsonl(path)
    raw = path.read_bytes()
    path.write_bytes(raw[:-20])  # chop mid-way through the last line
    with pytest.warns(RuntimeWarning, match="truncated final line"):
        partial = read_jsonl(path)
    assert partial == whole[:-1]


def test_jsonl_read_raises_on_mid_file_corruption(sim, tmp_path):
    _workload(sim)
    path = tmp_path / "corrupt.jsonl"
    write_run_jsonl(path, sim)
    lines = path.read_text().splitlines()
    lines[1] = lines[1][:-5]  # damage a line that is *not* the last
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(ValueError):
        read_jsonl(path)


def test_export_counters_recorded_at_close(sim, tmp_path):
    _workload(sim)
    write_run_jsonl(tmp_path / "run.jsonl", sim, account=True)
    write_run_columnar(tmp_path / "run.npz", sim, account=True)
    counters = sim.metrics.snapshot()["counters"]
    for fmt in ("jsonl", "npz"):
        assert counters[f"telemetry.export.{fmt}.records"] > 0
        assert counters[f"telemetry.export.{fmt}.spans"] > 0
        assert counters[f"telemetry.export.{fmt}.bytes"] > 0
    # Accounting is once-per-writer even if close() is called again.
    before = counters["telemetry.export.jsonl.records"]
    assert before == len(sim.tracer.records)


# ---------------------------------------------------------------------------
# Streaming aggregation: byte-identical to replay
# ---------------------------------------------------------------------------

def _twin_runs():
    """Two identical seeded runs: one watched live, one replayed."""
    streamed = Simulator(seed=7)
    aggregator = StreamingAggregator(user_sources=USERS).attach(streamed)
    _workload(streamed)
    replayed = Simulator(seed=7)
    _workload(replayed)
    return aggregator, streamed, replayed


def test_streaming_summary_is_byte_identical_to_replay():
    aggregator, streamed, replayed = _twin_runs()
    live = telemetry_summary(streamed, user_sources=USERS, stream=aggregator)
    replay = telemetry_summary(replayed, user_sources=USERS)
    assert json.dumps(live, sort_keys=False) == \
        json.dumps(replay, sort_keys=False)
    assert list(live) == list(replay)  # key order, not just content
    assert live["issues_by_layer"]["unclassified"] == 1


def test_streaming_layer_report_is_byte_identical_to_replay():
    aggregator, _streamed, replayed = _twin_runs()
    assert (layer_report(aggregator, user_sources=USERS)
            == layer_report(replayed, user_sources=USERS))


def test_streaming_layer_report_data_matches_replay():
    aggregator, _streamed, replayed = _twin_runs()
    live = layer_report_data(aggregator, user_sources=USERS)
    replay = layer_report_data(replayed, user_sources=USERS)
    assert json.dumps(live, sort_keys=True) == \
        json.dumps(replay, sort_keys=True)
    assert live["totals"] == {"device": 1, "user": 1}
    assert live["unclassified_issues"] == 1


def test_stream_mode_stores_nothing_but_aggregates_everything():
    streamed = Simulator(seed=7, trace_mode="stream")
    aggregator = StreamingAggregator(user_sources=USERS).attach(streamed)
    _workload(streamed)
    assert streamed.tracer.records == []
    assert streamed.tracer.spans == []
    replayed = Simulator(seed=7)
    _workload(replayed)
    live = telemetry_summary(streamed, stream=aggregator)
    replay = telemetry_summary(replayed, user_sources=USERS)
    assert json.dumps(live) == json.dumps(replay)


def test_stream_mode_with_capacity_is_configuration_error():
    with pytest.raises(ConfigurationError):
        Simulator(trace_capacity=100, trace_mode="stream")


def test_streaming_counts_records_bounded_tracers_drop():
    """head/ring tracers drop records from *storage* but still dispatch
    them — the streaming totals are the more truthful of the two."""
    sim = Simulator(seed=7, trace_capacity=3, trace_mode="head")
    aggregator = StreamingAggregator().attach(sim)
    for n in range(10):
        sim.trace("tick", "t", str(n))
    assert len(sim.tracer.records) == 3
    assert sim.tracer.dropped == 7
    assert aggregator.records_seen == 10


def test_streaming_histograms_match_replay():
    aggregator, streamed, _replayed = _twin_runs()
    replay = span_duration_histogram(streamed.tracer.spans)
    assert aggregator.span_histograms() == replay
    hist = aggregator.span_histograms()["transport.send"]
    assert hist["count"] == sum(hist["buckets"]) == 2
    assert hist["min"] <= hist["max"]
    # The open session.hold span is not folded by either path.
    assert "session.hold" not in aggregator.span_histograms()


def test_streaming_histogram_category_cap_overflows():
    sim = Simulator(seed=1)
    aggregator = StreamingAggregator(max_categories=2).attach(sim)
    for n in range(5):
        with sim.span(f"cat.{n}", "t"):
            pass
    hists = aggregator.span_histograms()
    assert set(hists) == {"cat.0", "cat.1", OVERFLOW_CATEGORY}
    assert hists[OVERFLOW_CATEGORY]["count"] == 3


def test_streaming_install_default_feeds_later_sims():
    aggregator = StreamingAggregator(user_sources=USERS)
    remove = aggregator.install_default()
    try:
        sim = Simulator(seed=7)  # constructed *after* the hooks
        _workload(sim)
    finally:
        remove()
    aggregator.bind(sim)
    untouched = Simulator(seed=7)
    _workload(untouched)
    assert (layer_report(aggregator, user_sources=USERS)
            == layer_report(untouched, user_sources=USERS))
    before = aggregator.records_seen
    Simulator(seed=1).trace("tick", "t", "after removal")
    assert aggregator.records_seen == before


def test_streaming_summary_requires_a_simulator():
    with pytest.raises(ValueError):
        StreamingAggregator().summary()


# ---------------------------------------------------------------------------
# Aggregation across seeds and the fork pipe
# ---------------------------------------------------------------------------

def test_aggregate_telemetry_merges_streaming_summaries():
    summaries = []
    for seed in (3, 4):
        sim = Simulator(seed=seed, trace_mode="stream")
        aggregator = StreamingAggregator(user_sources=USERS).attach(sim)
        _workload(sim)
        summaries.append(telemetry_summary(sim, stream=aggregator))
    merged = aggregate_telemetry(summaries)
    assert merged["replicates"] == 2
    assert merged["records"] == sum(s["records"] for s in summaries)
    assert merged["issues_by_layer"]["environment"] == 2
    assert merged["issues_by_column"] == {"device": 2, "user": 2}
    assert merged["metrics"]["counters"]["mac.frames"] == 12


def _streamed_point(seed, knob):
    """A sweep run_one whose telemetry comes from a stream-mode run."""
    sim = Simulator(seed=seed, trace_mode="stream")
    aggregator = StreamingAggregator(user_sources=USERS).attach(sim)
    _workload(sim)
    return {"issues": aggregator.issues_seen,
            "telemetry": telemetry_summary(sim, stream=aggregator)}


def test_averaged_seeds_merge_streaming_summaries():
    from repro.experiments.sweeps import averaged_over_seeds, grid, sweep

    result = sweep("X", "streamed", _streamed_point,
                   grid(knob=[1]), seeds=(0, 1))
    averaged = averaged_over_seeds(result, group_by=("knob",),
                                   metrics=("issues",))
    (merged,) = averaged.telemetry
    assert merged["replicates"] == 2
    assert merged["records"] == sum(
        entry["records"] for entry in result.telemetry)
    assert merged["issues_by_column"] == {"device": 2, "user": 2}
    assert merged["metrics"]["counters"]["mac.frames"] == 12


def test_sweep_ships_streaming_telemetry_across_fork_pipe():
    """E2 (now summarised via a StreamingAggregator) must stay identical
    between serial and parallel execution — the aggregates, not the raw
    trace, cross the pipe."""
    from repro.experiments.e2_interference import run as e2_run

    serial = e2_run(densities=(0, 1), duration=2.0,
                    channel_plans=("cochannel",))
    parallel = e2_run(densities=(0, 1), duration=2.0,
                      channel_plans=("cochannel",), workers=2)
    assert serial.rows == parallel.rows
    assert serial.telemetry == parallel.telemetry
    merged = aggregate_telemetry(serial.telemetry)
    assert merged["replicates"] == len(serial.rows)


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------

def test_cli_report_stream_matches_replay(capsys):
    # Session counters are per-simulator state now, so back-to-back CLI
    # runs are byte-identical with no counter pinning.
    from repro.cli import main

    assert main(["report", "--lpc", "--horizon", "30"]) == 0
    plain = capsys.readouterr().out
    assert main(["report", "--lpc", "--horizon", "30", "--stream"]) == 0
    streamed = capsys.readouterr().out
    assert streamed == plain


def test_cli_report_format_json_is_machine_readable(capsys):
    from repro.cli import main

    assert main(["report", "--lpc", "--horizon", "30",
                 "--format", "json"]) == 0
    first = capsys.readouterr().out
    data = json.loads(first)
    assert data["title"].startswith("LPC run report")
    assert len(data["layers"]) == 5
    assert {"device", "user"} == set(data["totals"])
    assert first == json.dumps(data, sort_keys=True, indent=2) + "\n"
    assert main(["report", "--lpc", "--horizon", "30",
                 "--format", "json", "--stream"]) == 0
    assert capsys.readouterr().out == first


def test_cli_report_format_json_requires_lpc(capsys):
    from repro.cli import main

    assert main(["report", "--format", "json"]) == 2
    assert "--lpc" in capsys.readouterr().err


def test_cli_demo_trace_columnar_export(capsys, tmp_path):
    from repro.cli import main

    out = tmp_path / "demo.npz"
    assert main(["demo", "--horizon", "20", "--trace", "mac",
                 "--trace-out", str(out), "--telemetry-format",
                 "columnar"]) == 0
    assert "columnar lines" in capsys.readouterr().err
    lines = read_telemetry(out)
    assert lines
    assert all(line["category"].startswith("mac") for line in lines)
    assert {line["type"] for line in lines} <= {"record", "span"}
