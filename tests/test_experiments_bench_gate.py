"""Unit fixtures for the kernel bench gate — synthetic payloads, no
actual benchmarking, so these run in milliseconds inside tier-1.

Two contracts are pinned:

* the **calibration-relative dispatch floor**: events/sec divided by
  the machine-speed calibration figure must be at least
  ``DISPATCH_MIN_SPEEDUP`` times the committed baseline's same ratio —
  so host speed cancels out of the ≥2x claim in both directions;
* the **backend marker**: every kernel payload records whether the
  compiled backend was available, and when it was not, *why* — the
  explicit skip marker that keeps the compiled path from silently
  degrading to the Python fallback.
"""

from __future__ import annotations

from repro.experiments.bench import (DISPATCH_MIN_SPEEDUP, backend_payload,
                                     check_regression)
from repro.kernel.backend import compiled_info

BASELINE = {
    "name": "kernel",
    "source": "in-process",
    "events_per_sec": 1_000_000.0,
    "events_per_sec_public_schedule": 600_000.0,
    "calibration_ops_per_sec": 25_000_000.0,
}


def _current(events_per_sec: float, calibration: float = 25_000_000.0):
    return {
        "name": "kernel",
        "source": "in-process",
        "events_per_sec": events_per_sec,
        "events_per_sec_public_schedule": events_per_sec * 0.6,
        "calibration_ops_per_sec": calibration,
    }


def test_dispatch_floor_passes_at_2x():
    assert check_regression(_current(2_600_000.0), BASELINE) == []


def test_dispatch_floor_fails_below_2x():
    failures = check_regression(_current(1_500_000.0), BASELINE)
    assert any("dispatch speedup" in f for f in failures)
    assert any(f"{DISPATCH_MIN_SPEEDUP:.1f}x" in f for f in failures)


def test_dispatch_floor_is_calibration_relative():
    # A 2x-slower host: raw 1.4M ev/s is under 2x the baseline's 1.0M,
    # but the host's calibration halved too — the normalised ratio is
    # 2.8x and must pass.  The raw 20% floor passes as well (1.4M > 800k).
    slow_host = _current(1_400_000.0, calibration=12_500_000.0)
    assert check_regression(slow_host, BASELINE) == []
    # A 2x-faster host cannot hide a regressed loop: raw 2.6M clears the
    # naive 2x, but normalised it is only 1.3x.
    fast_host = _current(2_600_000.0, calibration=50_000_000.0)
    failures = check_regression(fast_host, BASELINE)
    assert any("dispatch speedup" in f for f in failures)


def test_dispatch_floor_skips_without_calibration_figures():
    baseline = {k: v for k, v in BASELINE.items()
                if k != "calibration_ops_per_sec"}
    # Identity/tolerance gating still applies; the speedup floor cannot.
    assert check_regression(_current(2_600_000.0), baseline) == []


def test_gate_skips_unlike_sources():
    other = dict(BASELINE, source="pytest-benchmark")
    assert check_regression(_current(100.0), other) == []


def test_tolerance_floor_still_fires():
    failures = check_regression(_current(700_000.0), BASELINE)
    assert any("events_per_sec" in f and "below the committed baseline" in f
               for f in failures)


def test_backend_payload_marks_skip_explicitly():
    payload = backend_payload()
    available, reason = compiled_info()
    assert payload["compiled_available"] is available
    if available:
        assert "compiled_skipped_reason" not in payload
    else:
        # Never a silent fallback: the reason must travel with the
        # payload and be non-empty.
        assert payload["backend"] == "python"
        assert payload["compiled_skipped_reason"] == reason
        assert payload["compiled_skipped_reason"]
