"""Tests for multicast discovery, the client, and remote events
(end to end over the simulated radio)."""

from __future__ import annotations

import pytest

from repro.discovery.client import ServiceDiscoveryClient
from repro.discovery.events import ADDED, EXPIRED, EventMailbox, RemoteEvent
from repro.discovery.protocol import AnnouncingRegistry, RegistryLocator
from repro.discovery.records import (
    ServiceItem,
    ServiceProxy,
    ServiceTemplate,
    new_service_id,
)
from repro.discovery.registry import LookupService, REGISTRY_PORT
from repro.kernel.errors import DiscoveryError
from repro.phys.devices import Device


@pytest.fixture
def deployment(sim, world, medium):
    hub = Device(sim, world, "hub", (20, 12), medium=medium)
    provider = Device(sim, world, "provider", (25, 12), medium=medium)
    consumer = Device(sim, world, "consumer", (15, 12), medium=medium)
    registry = LookupService(sim, hub, "reg", sweep_interval=0.5)
    announcer = AnnouncingRegistry(
        sim, hub, RegistryLocator("reg", "hub", REGISTRY_PORT),
        announce_interval=5.0)
    return hub, provider, consumer, registry, announcer


def _item(provider="provider", **attrs):
    return ServiceItem(new_service_id(), "projection",
                       ServiceProxy(provider, 33, "vnc"), attrs)


def test_passive_discovery_from_announcements(sim, deployment):
    _hub, _provider, consumer, _registry, _announcer = deployment
    client = ServiceDiscoveryClient(sim, consumer)
    found = []
    client.discover(lambda loc: found.append(loc.registry_id))
    sim.run(until=1.0)
    assert found == ["reg"]


def test_active_probe_speeds_discovery(sim, deployment):
    _hub, _provider, consumer, _registry, announcer = deployment
    client = ServiceDiscoveryClient(sim, consumer)
    client.discover()
    sim.run(until=0.2)
    # Found well before the first periodic announcement at 5 s would not
    # have been needed (announcer also announces at 0.05 s, so check the
    # recorded discovery time).
    assert client.agent.discovery_times["reg"] < 1.0


def test_register_and_find_end_to_end(sim, deployment):
    _hub, provider, consumer, registry, _announcer = deployment
    item = _item(room="A")
    prov = ServiceDiscoveryClient(sim, provider)
    prov.discover(lambda loc: prov.register(item, 30.0))
    cons = ServiceDiscoveryClient(sim, consumer)
    results = []
    cons.discover()
    sim.schedule(2.0, lambda: cons.find(
        ServiceTemplate(service_type="projection"),
        lambda items: results.append([i.service_id for i in items])))
    sim.run(until=5.0)
    assert results == [[item.service_id]]


def test_find_no_match_returns_empty(sim, deployment):
    _hub, _provider, consumer, _registry, _announcer = deployment
    cons = ServiceDiscoveryClient(sim, consumer)
    results = []
    cons.discover()
    sim.schedule(1.0, lambda: cons.find(ServiceTemplate(service_type="nothing"),
                                        results.append))
    sim.run(until=3.0)
    assert results == [[]]


def test_require_registry_before_discovery_raises(sim, deployment):
    _hub, _provider, consumer, _reg, _ann = deployment
    client = ServiceDiscoveryClient(sim, consumer)
    with pytest.raises(DiscoveryError):
        client.require_registry()


def test_auto_renewal_keeps_registration_alive(sim, deployment):
    _hub, provider, _consumer, registry, _announcer = deployment
    prov = ServiceDiscoveryClient(sim, provider)
    item = _item()
    prov.discover(lambda loc: prov.register(item, 10.0))
    sim.run(until=60.0)
    assert len(registry.items()) == 1
    assert prov.registrations[0].renewals >= 5


def test_registration_without_renewal_expires(sim, deployment):
    _hub, provider, _consumer, registry, _announcer = deployment
    prov = ServiceDiscoveryClient(sim, provider)
    item = _item()
    prov.discover(lambda loc: prov.register(item, 10.0, auto_renew=False))
    sim.run(until=30.0)
    assert registry.items() == []


def test_cancel_registration(sim, deployment):
    _hub, provider, _consumer, registry, _announcer = deployment
    prov = ServiceDiscoveryClient(sim, provider)
    item = _item()
    outcomes = []

    def registered(registration):
        prov.cancel_registration(registration, outcomes.append)

    prov.discover(lambda loc: prov.register(item, 30.0,
                                            on_registered=registered))
    sim.run(until=5.0)
    assert outcomes == [True]
    assert registry.items() == []


def test_subscription_delivers_remote_events(sim, deployment):
    _hub, provider, consumer, _registry, _announcer = deployment
    cons = ServiceDiscoveryClient(sim, consumer)
    events = []
    cons.discover(lambda loc: cons.subscribe(
        ServiceTemplate(service_type="projection"),
        lambda ev: events.append(ev.kind), lease_duration=60.0))
    prov = ServiceDiscoveryClient(sim, provider)
    item = _item()
    sim.schedule(1.0, lambda: prov.register(item, 5.0, auto_renew=False))
    sim.run(until=15.0)
    assert events == [ADDED, EXPIRED]


def test_request_timeout_returns_none(sim, world, medium):
    # A consumer with a locator pointing at a silent address.
    consumer = Device(sim, world, "lonely", (5, 5), medium=medium)
    client = ServiceDiscoveryClient(sim, consumer, request_timeout=0.5)
    ghost = RegistryLocator("ghost", "lonely-hub", REGISTRY_PORT)
    results = []
    from repro.discovery.registry import LookupRequest, new_request_id

    client.request(ghost, LookupRequest(new_request_id(sim), ServiceTemplate()),
                   64, results.append)
    sim.run(until=5.0)
    assert results == [None]
    assert client.timeouts == 1


# ---------------------------------------------------------------------------
# EventMailbox
# ---------------------------------------------------------------------------

def _event(seq, registration=1):
    return RemoteEvent(seq, ADDED, ServiceItem(
        new_service_id(), "t", ServiceProxy("p", 1, "x")), registration)


def test_mailbox_delivers_and_dedupes():
    got = []
    mailbox = EventMailbox(got.append)
    event = _event(1)
    assert mailbox.deliver(event)
    assert not mailbox.deliver(event)
    assert mailbox.delivered == 1 and mailbox.duplicates == 1


def test_mailbox_gap_detection():
    mailbox = EventMailbox(lambda ev: None)
    mailbox.deliver(_event(1))
    mailbox.deliver(_event(5))
    assert mailbox.gaps_detected == 1


def test_mailbox_gap_tracking_per_registration():
    mailbox = EventMailbox(lambda ev: None)
    mailbox.deliver(_event(1, registration=1))
    mailbox.deliver(_event(2, registration=2))
    assert mailbox.gaps_detected == 0
