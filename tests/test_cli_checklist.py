"""Tests for the CLI and the design-review checklist generator."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.core.checklist import (
    GENERIC_QUESTIONS,
    Checklist,
    ChecklistItem,
    build_checklist,
)
from repro.core.layers import Layer, RELATIONS
from repro.core.model import LPCModel, smart_projector_model


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_figures_all(capsys):
    assert main(["figures"]) == 0
    out = capsys.readouterr().out
    for i in range(1, 6):
        assert f"Figure {i}" in out


def test_cli_figures_single(capsys):
    assert main(["figures", "3"]) == 0
    out = capsys.readouterr().out
    assert "resource layer" in out


def test_cli_figures_bad_number(capsys):
    assert main(["figures", "9"]) == 2
    assert "no figure 9" in capsys.readouterr().err


def test_cli_experiments_lists(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "E9" in out and "F1-F5" in out


def test_cli_run_experiment(capsys):
    assert main(["run", "E3-range-table"]) == 0
    out = capsys.readouterr().out
    assert "1Mbps" in out and "range_m" in out


def test_cli_run_unknown(capsys):
    assert main(["run", "E999"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_run_with_seed(capsys):
    assert main(["run", "E4-hijack", "--seed", "5"]) == 0
    assert "hijacks_succeeded" in capsys.readouterr().out


def test_cli_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_demo_trace_writes_jsonl(capsys, tmp_path):
    out = tmp_path / "demo.jsonl"
    assert main(["demo", "--horizon", "20", "--trace", "mac",
                 "--trace-out", str(out)]) == 0
    captured = capsys.readouterr()
    assert "JSONL lines" in captured.err
    from repro.telemetry.jsonl import read_jsonl

    lines = read_jsonl(out)
    assert lines
    assert all(line["category"].startswith("mac") for line in lines)
    assert {line["type"] for line in lines} <= {"record", "span"}


def test_cli_demo_trace_hooks_are_removed(capsys, tmp_path):
    """A later simulator in the same process must not inherit the hooks."""
    from repro.kernel.trace import _DEFAULT_SPAN_HOOKS, _DEFAULT_SUBSCRIBERS

    before = (len(_DEFAULT_SUBSCRIBERS), len(_DEFAULT_SPAN_HOOKS))
    assert main(["demo", "--horizon", "10", "--trace", "mac",
                 "--trace-out", str(tmp_path / "t.jsonl")]) == 0
    capsys.readouterr()
    assert (len(_DEFAULT_SUBSCRIBERS), len(_DEFAULT_SPAN_HOOKS)) == before


def test_cli_run_trace_flag(capsys, tmp_path):
    out = tmp_path / "run.jsonl"
    assert main(["run", "E4-hijack", "--seed", "5",
                 "--trace", "session", "--trace-out", str(out)]) == 0
    assert "hijacks_succeeded" in capsys.readouterr().out
    assert out.exists()


def test_cli_cache_stats_and_clear(capsys, tmp_path):
    from repro.experiments.cache import RunCache, cache_key

    cache = RunCache(tmp_path)
    cache.put(cache_key("X", "m:f", {"k": 1}, 0, src_digest="s"), {"v": 1})
    assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert str(tmp_path) in out and "entries   : 1" in out
    assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
    assert "removed 1 entries" in capsys.readouterr().out
    assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
    assert "entries   : 0" in capsys.readouterr().out


def test_cli_cache_dir_env_override(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert main(["cache", "stats"]) == 0
    assert str(tmp_path / "elsewhere") in capsys.readouterr().out


def test_cli_cache_policy_sets_and_restores_env(monkeypatch):
    """``run --cache`` / ``--no-cache`` drive the env knobs sweep()
    consults, and restore them afterwards (no leakage into the caller)."""
    import argparse
    import os

    from repro.cli import _cache_policy
    from repro.experiments.cache import (CACHE_OFF_ENV, CACHE_ON_ENV,
                                         RunCache, resolve_cache)

    monkeypatch.delenv(CACHE_ON_ENV, raising=False)
    monkeypatch.delenv(CACHE_OFF_ENV, raising=False)
    with _cache_policy(argparse.Namespace(cache=True, no_cache=False)):
        assert os.environ[CACHE_ON_ENV] == "1"
        assert isinstance(resolve_cache(None), RunCache)
    assert CACHE_ON_ENV not in os.environ
    with _cache_policy(argparse.Namespace(cache=True, no_cache=True)):
        assert resolve_cache(None) is None  # --no-cache wins
    assert CACHE_OFF_ENV not in os.environ


def test_cli_run_cache_env_round_trip(tmp_path, monkeypatch):
    """With the cache enabled by env, a second E2 run replays from the
    directory REPRO_CACHE_DIR points at."""
    import os

    from repro.experiments.cache import CACHE_ON_ENV
    from repro.experiments.e2_interference import run as e2_run

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.setenv(CACHE_ON_ENV, "1")
    cold = e2_run(densities=(0,), duration=1.0)
    warm = e2_run(densities=(0,), duration=1.0)
    assert cold.rows == warm.rows
    assert warm.meta["cache"]["hit_rate"] == 1.0
    assert os.listdir(tmp_path)  # entries landed under REPRO_CACHE_DIR


def test_cli_report_lpc_deterministic(capsys):
    assert main(["report", "--lpc", "--horizon", "30"]) == 0
    first = capsys.readouterr().out
    assert main(["report", "--lpc", "--horizon", "30"]) == 0
    second = capsys.readouterr().out
    assert first == second
    assert "LPC run report" in first
    # Both columns of the paper's Figure 1 grid are present.
    assert "device artifact" in first and "user artifact" in first
    for layer in Layer:
        assert layer.title in first


# ---------------------------------------------------------------------------
# Checklist
# ---------------------------------------------------------------------------

def test_checklist_covers_all_layers():
    checklist = build_checklist(smart_projector_model())
    for layer in Layer:
        assert checklist.section(layer)


def test_checklist_pairwise_questions_use_relations():
    checklist = build_checklist(smart_projector_model())
    paired = [item for item in checklist.items if item.entities]
    assert paired
    for item in paired:
        assert "presenter" in item.entities
        assert RELATIONS[item.layer] in item.question


def test_checklist_pairs_only_shared_layers():
    checklist = build_checklist(smart_projector_model())
    # The laptop has no intentional facet, so no presenter/laptop pair at
    # the intentional layer.
    intentional_pairs = [item for item in checklist.section(Layer.INTENTIONAL)
                         if "laptop" in item.entities]
    assert intentional_pairs == []


def test_checklist_generic_questions_present():
    checklist = build_checklist(LPCModel("bare"))
    total_generic = sum(len(qs) for qs in GENERIC_QUESTIONS.values())
    assert len(checklist.items) == total_generic  # no entities -> no pairs


def test_checklist_progress_and_findings():
    checklist = build_checklist(LPCModel("bare"))
    assert checklist.progress == 0.0
    first = checklist.items[0]
    first.resolve("tethered to the laptop")
    assert checklist.progress > 0.0
    assert checklist.findings() == [first]
    assert len(checklist.open_items()) == len(checklist.items) - 1


def test_checklist_render():
    checklist = build_checklist(smart_projector_model())
    checklist.items[0].resolve("a finding")
    text = checklist.render()
    assert "Design-review checklist" in text
    assert "[x]" in text and "[ ]" in text
    assert "finding: a finding" in text
    for layer in Layer:
        assert layer.title in text
