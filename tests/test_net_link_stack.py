"""Tests for wired links, the stack, multicast and the bridge."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ConfigurationError, NetworkError
from repro.net.bridge import Bridge
from repro.net.frames import Frame
from repro.net.link import WiredLink
from repro.net.multicast import MULTICAST_PORT, GroupDatagram, MulticastService
from repro.net.stack import NetworkStack


# ---------------------------------------------------------------------------
# WiredLink
# ---------------------------------------------------------------------------

def test_wired_delivery_both_directions(sim):
    link = WiredLink(sim, "a", "b")
    got_a, got_b = [], []
    link.port_a.on_receive = got_a.append
    link.port_b.on_receive = got_b.append
    link.port_a.send("b", "to-b", 100)
    link.port_b.send("a", "to-a", 100)
    sim.run()
    assert got_b[0].payload == "to-b"
    assert got_a[0].payload == "to-a"


def test_wired_delay_and_serialisation(sim):
    link = WiredLink(sim, "a", "b", rate_bps=1e6, delay_s=0.01)
    arrivals = []
    link.port_b.on_receive = lambda f: arrivals.append(sim.now)
    link.port_a.send("b", None, 1000)
    sim.run()
    expected = 8 * (1000 + 34) / 1e6 + 0.01
    assert arrivals[0] == pytest.approx(expected)


def test_wired_fifo_serialisation_backlog(sim):
    link = WiredLink(sim, "a", "b", rate_bps=1e5, delay_s=0.0)
    arrivals = []
    link.port_b.on_receive = lambda f: arrivals.append((f.payload, sim.now))
    for i in range(3):
        link.port_a.send("b", i, 1000)
    sim.run()
    assert [p for p, _t in arrivals] == [0, 1, 2]
    gaps = [arrivals[i + 1][1] - arrivals[i][1] for i in range(2)]
    per_frame = 8 * 1034 / 1e5
    for gap in gaps:
        assert gap == pytest.approx(per_frame)


def test_wired_loss(sim):
    link = WiredLink(sim, "a", "b", loss=0.5, queue_frames=256)
    got = []
    link.port_b.on_receive = got.append
    for _ in range(200):
        link.port_a.send("b", None, 10)
    sim.run()
    assert 40 < len(got) < 160
    assert link.frames_lost == 200 - len(got)


def test_wired_queue_overflow(sim):
    link = WiredLink(sim, "a", "b", rate_bps=1e3, queue_frames=2)
    accepted = [link.port_a.send("b", None, 1000) for _ in range(10)]
    assert accepted.count(False) > 0


def test_wired_validation(sim):
    with pytest.raises(ConfigurationError):
        WiredLink(sim, "a", "a")
    with pytest.raises(ConfigurationError):
        WiredLink(sim, "a", "b", loss=1.0)
    with pytest.raises(ConfigurationError):
        WiredLink(sim, "a", "b", rate_bps=0)


def test_other_end(sim):
    link = WiredLink(sim, "a", "b")
    assert link.other_end("a") is link.port_b
    assert link.other_end("b") is link.port_a
    with pytest.raises(ConfigurationError):
        link.other_end("c")


# ---------------------------------------------------------------------------
# NetworkStack
# ---------------------------------------------------------------------------

def _stack_pair(sim):
    link = WiredLink(sim, "a", "b")
    return NetworkStack(sim, link.port_a), NetworkStack(sim, link.port_b)


def test_stack_port_demux(sim):
    sa, sb = _stack_pair(sim)
    got7, got9 = [], []
    sb.bind(7, got7.append)
    sb.bind(9, got9.append)
    sa.send("b", "seven", 10, port=7)
    sa.send("b", "nine", 10, port=9)
    sim.run()
    assert got7[0].payload == "seven"
    assert got9[0].payload == "nine"


def test_stack_unbound_port_counted(sim):
    sa, sb = _stack_pair(sim)
    sa.send("b", None, 10, port=42)
    sim.run()
    assert sb.rx_unbound == 1


def test_stack_double_bind_rejected(sim):
    sa, _sb = _stack_pair(sim)
    sa.bind(1, lambda f: None)
    with pytest.raises(NetworkError):
        sa.bind(1, lambda f: None)


def test_stack_unbind(sim):
    sa, sb = _stack_pair(sim)
    unbind = sb.bind(1, lambda f: None)
    unbind()
    assert not sb.is_bound(1)
    sb.bind(1, lambda f: None)  # rebinding now works


def test_stack_ignores_frames_for_others(sim):
    sa, sb = _stack_pair(sim)
    got = []
    sb.bind(1, got.append)
    # Address the frame to a third party; the wire still carries it.
    sa.interface.send_frame(Frame("a", "charlie", None, 10, port=1))
    sim.run()
    assert got == []


def test_stack_negative_port_rejected(sim):
    sa, _sb = _stack_pair(sim)
    with pytest.raises(ConfigurationError):
        sa.bind(-1, lambda f: None)


# ---------------------------------------------------------------------------
# Multicast
# ---------------------------------------------------------------------------

def _wireless_pair(sim, world, medium):
    from repro.phys.devices import Device

    a = Device(sim, world, "ma", (10, 10), medium=medium)
    b = Device(sim, world, "mb", (12, 10), medium=medium)
    return a, b


def test_multicast_group_delivery(sim, world, medium):
    a, b = _wireless_pair(sim, world, medium)
    got = []
    b.multicast.join("news", lambda src, data: got.append((src, data)))
    a.multicast.send("news", {"headline": "hi"})
    sim.run(until=1.0)
    assert got == [("ma", {"headline": "hi"})]


def test_multicast_nonmember_filtered(sim, world, medium):
    a, b = _wireless_pair(sim, world, medium)
    got = []
    b.multicast.join("sports", lambda src, data: got.append(data))
    a.multicast.send("news", "x")
    sim.run(until=1.0)
    assert got == []
    assert b.multicast.datagrams_filtered == 1


def test_multicast_leave(sim, world, medium):
    a, b = _wireless_pair(sim, world, medium)
    got = []
    leave = b.multicast.join("news", lambda src, data: got.append(data))
    leave()
    a.multicast.send("news", "x")
    sim.run(until=1.0)
    assert got == []
    assert not b.multicast.member_of("news")


def test_multicast_empty_group_rejected(sim, world, medium):
    a, _b = _wireless_pair(sim, world, medium)
    with pytest.raises(ConfigurationError):
        a.multicast.send("", "x")
    with pytest.raises(ConfigurationError):
        a.multicast.join("", lambda s, d: None)


# ---------------------------------------------------------------------------
# Bridge
# ---------------------------------------------------------------------------

def test_bridge_floods_then_forwards(sim):
    link1 = WiredLink(sim, "host1", "br-p1")
    link2 = WiredLink(sim, "host2", "br-p2")
    bridge = Bridge(sim)
    bridge.attach(link1.port_b)
    bridge.attach(link2.port_b)
    s1 = NetworkStack(sim, link1.port_a)
    s2 = NetworkStack(sim, link2.port_a)
    got = []
    s2.bind(5, got.append)
    s1.send("host2", "first", 10, port=5)  # unknown dst -> flood
    sim.run()
    assert got[0].payload == "first"
    assert bridge.flooded >= 1
    s2.send("host1", "reply", 10, port=5)
    s1.bind(5, got.append)
    sim.run()
    # host1 was learned from the first frame: forwarded, not flooded.
    assert bridge.forwarded >= 1
    assert bridge.learned()["host1"] == "br-p1"


def test_bridge_filters_same_segment(sim):
    link1 = WiredLink(sim, "host1", "br-p1")
    bridge = Bridge(sim)
    bridge.attach(link1.port_b)
    # host1 sends to an address learned on its own port.
    link1.port_a.send_frame(Frame("host1", "host1b", None, 10))
    sim.run()
    link1.port_a.send_frame(Frame("host1b", "host1", None, 10))
    sim.run()
    assert bridge.filtered >= 1


def test_bridge_duplicate_interface_rejected(sim):
    link = WiredLink(sim, "x", "y")
    bridge = Bridge(sim)
    bridge.attach(link.port_a)
    with pytest.raises(ConfigurationError):
        bridge.attach(link.port_a)
