"""Tests for the telemetry pipeline: JSONL export, run summaries, layer
reports, and end-to-end causal-tree reconstruction over the wireless stack."""

from __future__ import annotations

from repro.env.world import World
from repro.kernel.scheduler import Simulator
from repro.net.stack import NetworkStack
from repro.net.transport import ReliableEndpoint
from repro.phys.mac import WirelessMedium
from repro.phys.nic import WirelessNIC
from repro.services.sessions import SessionManager
from repro.telemetry.jsonl import (read_jsonl, span_ancestry_categories,
                                   span_lines, write_run_jsonl)
from repro.telemetry.report import layer_report
from repro.telemetry.summary import telemetry_summary


# ---------------------------------------------------------------------------
# JSONL round-trip
# ---------------------------------------------------------------------------

def test_jsonl_round_trip(sim, tmp_path):
    sim.trace("mac.tx", "a", "frame out", bytes=100)
    with sim.span("work", "tester", item=1):
        pass
    sim.metrics.counter("mac.drops").add(2)
    path = tmp_path / "run.jsonl"
    counts = write_run_jsonl(path, sim)
    assert counts == {"records": 1, "spans": 1, "metrics": 1}
    lines = read_jsonl(path)
    assert [line["type"] for line in lines] == ["record", "span", "metrics"]
    record, span, metrics = lines
    assert record["category"] == "mac.tx"
    assert record["data"] == {"bytes": 100}
    assert span["status"] == "ok"
    assert span["data"] == {"item": 1}
    assert metrics["counters"] == {"mac.drops": 2}


def test_jsonl_prefix_filter_and_unserialisable_payload(sim, tmp_path):
    sim.trace("mac.tx", "a", "kept", obj=object())  # repr-degraded, not fatal
    sim.trace("session.grant", "b", "filtered")
    path = tmp_path / "run.jsonl"
    counts = write_run_jsonl(path, sim, prefix="mac", include_metrics=False)
    assert counts["records"] == 1
    (line,) = read_jsonl(path)
    assert line["message"] == "kept"
    assert line["data"]["obj"].startswith("<object object")


def test_jsonl_export_is_deterministic(sim, tmp_path):
    for i in range(3):
        sim.trace("tick", "t", str(i), n=i)
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_run_jsonl(a, sim)
    write_run_jsonl(b, sim)
    assert a.read_bytes() == b.read_bytes()


# ---------------------------------------------------------------------------
# End-to-end: reconstruct a frame's journey across the stack from the export
# ---------------------------------------------------------------------------

def _wireless_pair(sim):
    world = World(100.0, 60.0)
    medium = WirelessMedium(sim, world)
    world.place("laptop", (10, 10))
    world.place("adapter", (15, 10))
    nic_a = WirelessNIC(sim, medium, "laptop")
    nic_b = WirelessNIC(sim, medium, "adapter")
    stack_a = NetworkStack(sim, nic_a)
    stack_b = NetworkStack(sim, nic_b)
    return stack_a, stack_b


def test_multi_hop_span_tree_from_export(sim, tmp_path):
    """A message's journey — transport.send -> mac.tx -> transport.deliver
    -> session.acquire — is reconstructable from the JSONL export alone."""
    stack_a, stack_b = _wireless_pair(sim)
    sessions = SessionManager(sim, "projection", use_leases=False)

    def on_message(src: str, _obj, _n: int) -> None:
        sessions.acquire(src)

    sender = ReliableEndpoint(sim, stack_a, 50)
    ReliableEndpoint(sim, stack_b, 50, on_message=on_message)
    sender.send("adapter", {"cmd": "project"}, 400)
    sim.run(until=5.0)
    assert sessions.holder == "laptop"

    path = tmp_path / "journey.jsonl"
    write_run_jsonl(path, sim)
    lines = read_jsonl(path)
    acquires = [s for s in span_lines(lines)
                if s["category"] == "session.acquire"]
    assert len(acquires) == 1
    chain = span_ancestry_categories(lines, acquires[0]["span_id"])
    assert chain[0] == "session.acquire"
    assert chain[1] == "transport.deliver"
    assert "mac.tx" in chain
    assert chain[-1] == "transport.send"
    # The deliver hop sits below the airtime hop, which sits below the send.
    assert chain.index("transport.deliver") < chain.index("mac.tx")


def test_transport_failure_closes_span_as_failed(sim, tmp_path):
    """An undeliverable message leaves a 'failed' transport.send span."""
    stack_a, _stack_b = _wireless_pair(sim)
    sender = ReliableEndpoint(sim, stack_a, 50, timeout=0.05, max_retries=1)
    sender.send("nobody-home", "lost", 100)
    sim.run(until=10.0)
    sends = sim.tracer.select_spans("transport.send")
    assert [s.status for s in sends] == ["failed"]


# ---------------------------------------------------------------------------
# Run summaries (what sweeps ship across the fork pipe)
# ---------------------------------------------------------------------------

def test_telemetry_summary_counts_and_classifies(sim):
    sim.trace("mac.tx", "a", "out")
    sim.issue("radio", "a", "multipath fade")
    sim.issue("goal", "alice", "projection expectation unmet")
    sim.metrics.counter("mac.drops").add()
    summary = telemetry_summary(sim, user_sources={"alice"})
    assert summary["records"] == 3  # issues are records too
    assert summary["issues_by_layer"]["environment"] == 1
    assert summary["issues_by_layer"]["intentional"] == 1
    assert summary["issues_by_column"] == {"device": 1, "user": 1}
    assert summary["metrics"]["counters"]["mac.drops"] == 1
    assert sim.metrics.closed  # summary is the end-of-run harvest


def test_sweep_ships_telemetry_serial_and_parallel():
    """E2 rows stay identical under workers>1 and every point carries a
    telemetry summary (the raw trace never crosses the pipe)."""
    from repro.experiments.e2_interference import run as e2_run

    serial = e2_run(densities=(0, 1), duration=2.0,
                    channel_plans=("cochannel",))
    parallel = e2_run(densities=(0, 1), duration=2.0,
                      channel_plans=("cochannel",), workers=2)
    assert serial.rows == parallel.rows
    assert len(serial.telemetry) == len(serial.rows)
    assert all(entry is not None for entry in serial.telemetry)
    assert serial.telemetry == parallel.telemetry
    assert "telemetry" not in serial.columns
    for entry in serial.telemetry:
        assert entry["metrics"]["counters"]["medium.transmissions"] >= 0


# ---------------------------------------------------------------------------
# Layer report
# ---------------------------------------------------------------------------

def test_layer_report_places_issues_in_both_columns(sim):
    sim.issue("radio", "adapter", "interference burst")
    sim.issue("goal", "alice", "meeting started late")
    sim.metrics.counter("mac.drops").add(4)
    report = layer_report(sim, user_sources={"alice"})
    assert "LPC run report" in report
    lines = report.splitlines()
    env_row = next(line for line in lines if line.startswith("Environment"))
    intent_row = next(line for line in lines if line.startswith("Intentional"))
    # Device column count for the radio issue, user column for the goal.
    assert env_row.split()[-2] == "1" or "1" in env_row
    assert intent_row.rstrip().endswith("1")
    assert "mac.drops" in report
    assert report.endswith("\n")


def test_layer_report_is_deterministic(sim):
    sim.issue("radio", "a", "fade")
    first = layer_report(sim, user_sources={"u"})
    second = layer_report(sim, user_sources={"u"})
    assert first == second
