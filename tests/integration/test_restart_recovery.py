"""Integration: recovery paths after a registry cold restart.

A restarted lookup service has lost all state; providers discover their
leases are gone at the next renewal and must re-register from scratch —
the middleware's self-healing loop, end to end.
"""

from __future__ import annotations

import pytest

from repro.discovery.leases import LeaseTable
from repro.discovery.records import ServiceTemplate
from repro.experiments.workloads import projector_room


def _cold_restart(registry) -> None:
    """Wipe the registrar's state as a process restart would."""
    registry._items.clear()
    registry._lease_to_service.clear()
    registry._service_to_lease.clear()
    # Replace the lease table wholesale (old one forgotten with the heap).
    registry.leases.stop()
    registry.leases = LeaseTable(registry.sim,
                                 f"{registry.registry_id}.registrations",
                                 max_duration=300.0,
                                 on_expired=registry._registration_expired,
                                 sweep_interval=1.0)


def test_providers_reregister_after_registry_restart():
    room = projector_room(seed=210, registration_lease_s=10.0)
    room.sim.run(until=3.0)
    assert len(room.registry.items()) == 2

    _cold_restart(room.registry)
    assert room.registry.items() == []

    # The adapter's next renewal gets "lease unknown" and re-registers.
    room.sim.run(until=30.0)
    assert len(room.registry.items()) == 2
    # The re-registration path emitted the lease-lost issue.
    assert any("re-registering" in record.message
               for record in room.sim.tracer.select("issue.discovery"))


def test_consumers_find_services_again_after_restart():
    room = projector_room(seed=211, registration_lease_s=10.0)
    room.sim.run(until=3.0)
    _cold_restart(room.registry)

    results = []
    room.sim.schedule(25.0, lambda: room.laptop_discovery.find(
        ServiceTemplate(service_type="projection"),
        lambda items: results.append(len(items))))
    room.sim.run(until=30.0)
    assert results == [1]


def test_registration_handle_reflects_recovery():
    room = projector_room(seed=212, registration_lease_s=10.0)
    room.sim.run(until=3.0)
    registrations_before = list(room.adapter_discovery.registrations)
    _cold_restart(room.registry)
    room.sim.run(until=30.0)
    # The client grew fresh registration handles for the re-registered
    # items; the old handles are deactivated.
    assert len(room.adapter_discovery.registrations) > len(registrations_before)
    active = [r for r in room.adapter_discovery.registrations if r.active]
    assert len(active) >= 2
