"""Soak tests: long simulated horizons must stay bounded and healthy."""

from __future__ import annotations

import pytest

from repro.experiments.workloads import presentation_workflow, projector_room
from repro.services.content import SlideShow


def test_one_hour_presentation_stays_bounded():
    """An hour of simulated presenting: queues drain, trace capacity
    holds, sessions stay renewed, pixels keep flowing."""
    room = projector_room(seed=200, trace=True, session_lease_s=60.0)
    room.sim.tracer.capacity = 20_000  # bounded even with tracing on
    presentation_workflow(room)
    SlideShow(room.sim, room.client.fb, dwell_s=25.0).start()
    room.sim.every(20.0, room.client.renew_sessions, start=20.0)

    checkpoints = []

    def checkpoint() -> None:
        checkpoints.append({
            "t": room.sim.now,
            "frames": room.projector.frames_displayed,
            "laptop_queue": room.laptop.nic.mac.queue_depth(),
            "pending_events": room.sim.pending(),
            "holder": room.smart.projection_sessions.holder,
        })

    room.sim.every(600.0, checkpoint)
    room.sim.run(until=3600.0)

    assert len(checkpoints) == 6
    for point in checkpoints:
        assert point["holder"] == "laptop"        # renewals held the session
        assert point["laptop_queue"] < 32          # no queue creep
        assert point["pending_events"] < 500       # no event-leak
    # Frames keep arriving throughout, not just at the start.
    frame_counts = [p["frames"] for p in checkpoints]
    assert all(b > a for a, b in zip(frame_counts, frame_counts[1:]))
    # MAC-level health: still nearly loss-free on a clean channel.
    stats = room.laptop.nic.mac.stats
    assert stats["tx_retry_drops"] == 0
    assert stats["tx_success"] > 100


def test_registry_hours_of_lease_churn():
    """Thousands of grant/renew/expire cycles leave no lease residue."""
    room = projector_room(seed=201, trace=False,
                          registration_lease_s=5.0)
    room.sim.run(until=1800.0)  # adapter auto-renews both services
    # Only the two live registrations remain in the table.
    assert len(room.registry.leases.live()) == 2
    assert len(room.registry.items()) == 2
    assert room.registry.leases.renewed_count > 300
    # Sweeps never removed a renewed lease.
    assert room.registry.leases.expired_count == 0


def test_event_heap_does_not_accumulate_cancelled_events():
    """Cancelling periodic work must not leave the heap growing."""
    from repro.kernel.scheduler import Simulator

    sim = Simulator(seed=0, trace=False)
    for i in range(200):
        task = sim.every(0.5, lambda: None)
        sim.schedule(float(i % 7) + 0.1, task.cancel)
    sim.run(until=100.0)
    assert sim.pending() == 0
