"""Integration tests: full middleware paths across packages."""

from __future__ import annotations

import pytest

from repro.core.instrument import LPCInstrument
from repro.core.layers import Layer
from repro.core.model import smart_projector_model
from repro.discovery.records import ServiceTemplate
from repro.env.mobility import LinearMobility
from repro.experiments.workloads import presentation_workflow, projector_room
from repro.services.content import SlideShow
from repro.services.errorsvc import DiagnosticsAgent, FaultInjector


def test_registration_survives_registry_outage_with_diagnostics():
    """Registry dies mid-run; diagnostics revives it; auto-renewal (with
    its re-register fallback) restores the services."""
    room = projector_room(seed=50, registration_lease_s=10.0)
    injector = FaultInjector(room.sim)
    DiagnosticsAgent(room.sim, injector, check_interval=1.0, repair_time=3.0)
    room.sim.run(until=5.0)
    assert len(room.registry.items()) == 2
    injector.kill_registry(room.registry)
    room.sim.run(until=60.0)
    # Services re-registered after the outage window.
    assert len(room.registry.items()) == 2


def test_forgetful_presenter_then_second_user_full_path():
    """User A presents and walks away; after the session lease expires,
    user B can acquire via the real RPC path."""
    room = projector_room(seed=51, session_lease_s=30.0)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    assert room.smart.projection_sessions.holder == "laptop"

    from repro.phys.devices import Laptop
    from repro.discovery.client import ServiceDiscoveryClient
    from repro.services.projector import SmartProjectorClient

    second = Laptop(room.sim, room.world, "laptop2", (9, 9), room.medium)
    disc2 = ServiceDiscoveryClient(room.sim, second)
    disc2.discover()
    client2 = SmartProjectorClient(room.sim, second, disc2)
    outcomes = []

    def attempt():
        client2.discover_services(
            lambda ok, v: client2.acquire_projection(
                lambda ok2, v2: outcomes.append(ok2)) if ok else None)

    # First attempt while A still holds (t=12, lease runs to ~32.5);
    # retry after A's lease expired.
    room.sim.schedule(2.0, attempt)
    room.sim.schedule(35.0, attempt)
    room.sim.run(until=48.0)
    assert outcomes[0] is False
    assert outcomes[1] is True
    assert room.smart.projection_sessions.holder == "laptop2"


def test_walking_presenter_keeps_projecting():
    """The presenter walks across the room mid-talk; rate adaptation keeps
    the projection alive."""
    room = projector_room(seed=52, width=80.0, height=40.0,
                          laptop_pos=(5.0, 20.0), adapter_pos=(70.0, 20.0))
    presentation_workflow(room)
    SlideShow(room.sim, room.client.fb, dwell_s=4.0).start()
    room.sim.every(10.0, room.client.renew_sessions, start=10.0)
    walk = LinearMobility(room.sim, room.world, "laptop",
                          target=(60.0, 20.0), speed=2.0)
    room.sim.schedule(8.0, lambda: walk.start())
    room.sim.run(until=60.0)
    assert room.projector.frames_displayed >= 5
    assert walk.arrived


def test_instrumented_run_produces_layered_report():
    """A full run with the LPC instrument attached yields a readable,
    multi-layer report."""
    room = projector_room(seed=53, session_lease_s=6.0)
    model = smart_projector_model()
    LPCInstrument(room.sim, model)
    presentation_workflow(room)
    room.sim.run(until=40.0)  # session expires, issues emitted
    counts = model.concern_counts()
    assert counts[Layer.ABSTRACT] >= 1
    report = model.report()
    assert "Abstract" in report and "reclaimed" in report


def test_discovery_cache_refresh_after_service_restart():
    """Consumer sees EXPIRED then ADDED when the provider restarts."""
    room = projector_room(seed=54, registration_lease_s=5.0)
    kinds = []
    room.laptop_discovery.discover(
        lambda loc: room.laptop_discovery.subscribe(
            ServiceTemplate(service_type="projection"),
            lambda ev: kinds.append(ev.kind), lease_duration=120.0))
    room.sim.run(until=3.0)
    # Stop renewing: drop the adapter's registrations by deactivating them.
    for registration in room.adapter_discovery.registrations:
        registration.active = False
        if registration._renew_event is not None:
            registration._renew_event.cancel()
    room.sim.run(until=12.0)
    # Re-register.
    room.smart.register(room.adapter_discovery, 30.0)
    room.sim.run(until=20.0)
    assert "added" in kinds and "expired" in kinds
    assert kinds.index("expired") < len(kinds) - 1  # an added follows


def test_multi_device_smart_space_discovery():
    """Several providers register distinct service types; a consumer finds
    exactly what each template asks for."""
    room = projector_room(seed=55)
    from repro.discovery.client import ServiceDiscoveryClient
    from repro.discovery.records import ServiceItem, ServiceProxy, new_service_id
    from repro.phys.devices import Device

    extra_types = ["printer", "display", "coffee"]
    for i, service_type in enumerate(extra_types):
        dev = Device(room.sim, room.world, f"extra-{i}", (10 + i, 20),
                     medium=room.medium)
        disc = ServiceDiscoveryClient(room.sim, dev)
        item = ServiceItem(new_service_id(), service_type,
                           ServiceProxy(dev.name, 40 + i, service_type))
        disc.discover(lambda loc, d=disc, it=item: d.register(it, 60.0))
    room.sim.run(until=5.0)
    results = {}
    for service_type in extra_types + ["projection"]:
        room.laptop_discovery.find(
            ServiceTemplate(service_type=service_type),
            lambda items, t=service_type: results.update({t: len(items)}))
    room.sim.run(until=10.0)
    assert results == {"printer": 1, "display": 1, "coffee": 1,
                       "projection": 1}
