"""Integration: the abstract layer's consistency relation against the
*live* Smart Projector state.

"The key issue ... is maintaining consistency between the user's
reasoning and expectations and the logic and state of the application."
These tests drive the real system out from under a user's mental model
and watch the consistency metric (and the surprises) respond.
"""

from __future__ import annotations

import pytest

from repro.core.constraints import check_abstract_consistency
from repro.experiments.workloads import presentation_workflow, projector_room
from repro.resource.faculties import casual_user, researcher
from repro.user.mental import MentalModel


def _believing_user(room, name="presenter"):
    """A mental model matching reality right after the happy-path setup."""
    mental = MentalModel(room.sim, name, researcher(name))
    for key, value in room.smart.application_state().items():
        mental.believe(key, value)
    return mental


def test_consistent_right_after_setup():
    room = projector_room(seed=400)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    mental = _believing_user(room)
    result = check_abstract_consistency(mental,
                                        room.smart.application_state())
    assert result.satisfied and result.score == 1.0


def test_lease_expiry_desynchronises_the_model():
    """The session expires behind the presenter's back: their model is now
    wrong on every session-derived key."""
    room = projector_room(seed=401, session_lease_s=8.0)
    presentation_workflow(room)
    room.sim.run(until=6.0)
    mental = _believing_user(room)
    room.sim.run(until=40.0)  # leases gone, viewer stopped
    state = room.smart.application_state()
    result = check_abstract_consistency(mental, state)
    assert not result.satisfied
    assert result.score <= 0.6
    # The user now observes the status display: surprises are recorded
    # and the model corrects itself.
    for key, value in state.items():
        mental.observe(key, value)
    assert len(mental.surprises) >= 2
    assert check_abstract_consistency(
        mental, room.smart.application_state()).satisfied


def test_remote_control_change_surprises_the_presenter():
    """Someone switches the projector input from the panel: the presenter's
    'projecting' belief is falsified even though their session is fine."""
    room = projector_room(seed=402)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    mental = _believing_user(room)
    # A janitor flips the appliance to the VGA input at the device itself.
    room.projector.select_input("vga-1")
    state = room.smart.application_state()
    # One of five keys is now wrong: consistency dips below perfect, and a
    # stricter reviewer threshold flags it.
    result = check_abstract_consistency(mental, state, threshold=0.9)
    assert not result.satisfied
    assert result.score == pytest.approx(0.8)
    assert mental.belief("input") == "video-in"  # the stale belief
    mental.observe("input", state["input"])
    assert mental.surprises[-1].key == "input"


def test_issue_stream_carries_the_surprise():
    room = projector_room(seed=403, session_lease_s=8.0)
    presentation_workflow(room)
    room.sim.run(until=6.0)
    mental = _believing_user(room)
    room.sim.run(until=40.0)
    for key, value in room.smart.application_state().items():
        mental.observe(key, value)
    issues = room.sim.tracer.select("issue.mental")
    assert any("expected" in record.message for record in issues)
