"""Integration: connecting the wireless cell to the traditional wired
network through an access-point bridge — the Aroma project's first
research area."""

from __future__ import annotations

import pytest

from repro.discovery.client import ServiceDiscoveryClient
from repro.discovery.protocol import AnnouncingRegistry, RegistryLocator
from repro.discovery.records import ServiceTemplate
from repro.discovery.registry import LookupService, REGISTRY_PORT
from repro.env.world import World
from repro.kernel.scheduler import Simulator
from repro.net.bridge import Bridge
from repro.net.link import WiredLink
from repro.net.multicast import MulticastService
from repro.net.stack import NetworkStack
from repro.net.transport import ReliableEndpoint
from repro.phys.devices import Device, Laptop
from repro.phys.mac import WirelessMedium


class _WiredHost:
    """A minimal wired device compatible with LookupService/clients."""

    def __init__(self, sim, port):
        self.sim = sim
        self.name = port.address
        self.stack = NetworkStack(sim, port)
        self.multicast = MulticastService(sim, self.stack)

    def reliable(self, port_number, on_message=None, **kwargs):
        return ReliableEndpoint(self.sim, self.stack, port_number,
                                on_message, **kwargs)


@pytest.fixture
def backbone():
    """Wireless cell + AP bridge + wired server hosting the registry."""
    sim = Simulator(seed=77)
    world = World(60, 30)
    medium = WirelessMedium(sim, world)

    # The access point: one promiscuous NIC + one wired port.
    ap = Device(sim, world, "ap", (30, 15), medium=medium)
    ap.nic.mac.promiscuous = True
    wire = WiredLink(sim, "server", "ap-wired")
    bridge = Bridge(sim, "ap-bridge")
    # Take the raw interfaces (bridge owns their receive slots).
    bridge.attach(ap.nic)
    bridge.attach(wire.port_b)

    server = _WiredHost(sim, wire.port_a)
    registry = LookupService(sim, server, "backbone-registry")
    announcer = AnnouncingRegistry(
        sim, server,
        RegistryLocator("backbone-registry", "server", REGISTRY_PORT),
        announce_interval=3.0)

    laptop = Laptop(sim, world, "laptop", (10, 10), medium)
    return sim, world, medium, bridge, server, registry, laptop


def test_wireless_client_discovers_wired_registry(backbone):
    sim, _w, _m, bridge, _server, _registry, laptop = backbone
    client = ServiceDiscoveryClient(sim, laptop)
    found = []
    client.discover(lambda loc: found.append(loc.registry_id))
    sim.run(until=8.0)
    assert found == ["backbone-registry"]
    # The announcement crossed the bridge from wired to wireless.
    assert bridge.flooded >= 1


def test_wireless_client_registers_and_looks_up_across_bridge(backbone):
    sim, world, medium, _bridge, _server, registry, laptop = backbone
    from repro.discovery.records import ServiceItem, ServiceProxy, new_service_id

    provider = Device(sim, world, "gadget", (20, 20), medium=medium)
    provider_client = ServiceDiscoveryClient(sim, provider)
    item = ServiceItem(new_service_id(), "badge-service",
                       ServiceProxy("gadget", 50, "badge"))
    provider_client.discover(lambda loc: provider_client.register(item, 30.0))

    consumer = ServiceDiscoveryClient(sim, laptop)
    results = []
    consumer.discover()
    sim.schedule(5.0, lambda: consumer.find(
        ServiceTemplate(service_type="badge-service"),
        lambda items: results.append([i.service_id for i in items])))
    sim.run(until=10.0)
    assert results == [[item.service_id]]
    assert len(registry.items()) == 1


def test_bridge_learns_both_sides(backbone):
    sim, _w, _m, bridge, _server, _registry, laptop = backbone
    client = ServiceDiscoveryClient(sim, laptop)
    client.discover()
    sim.run(until=8.0)
    learned = bridge.learned()
    assert "server" in learned   # from the wired side
    assert "laptop" in learned   # from the wireless side


def test_promiscuous_overhearing_required():
    """Without promiscuous mode at the AP, a wireless unicast to a wired
    host dies at the MAC — demonstrating why the flag exists."""
    sim = Simulator(seed=78)
    world = World(60, 30)
    medium = WirelessMedium(sim, world)
    ap = Device(sim, world, "ap", (30, 15), medium=medium)  # NOT promiscuous
    wire = WiredLink(sim, "server", "ap-wired")
    bridge = Bridge(sim)
    bridge.attach(ap.nic)
    bridge.attach(wire.port_b)
    got = []
    server_stack = NetworkStack(sim, wire.port_a)
    server_stack.bind(9, got.append)

    laptop = Laptop(sim, world, "laptop", (10, 10), medium)
    laptop.stack.send("server", "hello", 50, port=9)
    sim.run(until=5.0)
    assert got == []  # the AP never heard the unicast

    # Flip promiscuous on and retry: the frame crosses.
    ap.nic.mac.promiscuous = True
    laptop.stack.send("server", "hello2", 50, port=9)
    sim.run(until=10.0)
    assert [f.payload for f in got] == ["hello2"]
