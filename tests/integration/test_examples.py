"""Smoke tests: every shipped example must run end-to-end and print the
findings it promises."""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)  # type: ignore[union-attr]
    module.main()
    return capsys.readouterr().out


def test_quickstart_example(capsys):
    out = _run_example("quickstart", capsys)
    assert "Figure 1" in out
    assert "LPC analysis" in out
    assert "weakest layer" in out


def test_smart_projector_example(capsys):
    out = _run_example("smart_projector", capsys)
    assert "presentation started ok: True" in out
    assert "projector free again: True" in out
    assert "granted the session from the wait queue" in out
    assert "coverage" in out


def test_smart_space_example(capsys):
    out = _run_example("smart_space", capsys)
    assert "PDA sees" in out
    assert "coffee-machine -> expired" in out


def test_voice_badge_example(capsys):
    out = _run_example("voice_badge", capsys)
    assert "quiet office" in out and "machine room" in out
    assert "double bind" in out


def test_design_review_example(capsys):
    out = _run_example("design_review", capsys)
    assert "Design-review checklist" in out
    assert "intended user" in out
    assert "constraint violations" in out
