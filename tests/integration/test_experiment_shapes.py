"""Shape tests: scaled-down runs of every experiment must reproduce the
paper's qualitative claims (who wins, where the knees are)."""

from __future__ import annotations

import math

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="module")
def e1():
    return run_experiment("E1", rates=("2Mbps", "11Mbps"), duration=25.0)


def test_e1_slides_survive_both_rates(e1):
    for row in e1.select(content="slides"):
        assert row["delivery_ratio"] >= 0.8


def test_e1_animation_dies_at_low_rate(e1):
    slow = e1.select(rate="2Mbps", content="animation")[0]
    fast = e1.select(rate="11Mbps", content="animation")[0]
    assert fast["displayed_fps"] > 4 * slow["displayed_fps"]
    assert slow["displayed_fps"] < 1.0  # "prevents rapid animation"


def test_e1_latency_grows_as_rate_drops(e1):
    slow = e1.select(rate="2Mbps", content="animation")[0]
    fast = e1.select(rate="11Mbps", content="animation")[0]
    assert slow["update_latency_p50_s"] > fast["update_latency_p50_s"]


def test_e1_encoding_ablation_dirty_rect_wins():
    result = run_experiment("E1-ablation", duration=25.0)
    dirty = result.select(encoding="dirty-rect")[0]
    full = result.select(encoding="full-frame")[0]
    assert full["bytes_per_update"] > 2 * dirty["bytes_per_update"]


def test_e2_density_degrades_cochannel_link():
    result = run_experiment("E2", densities=(0, 16), duration=8.0)
    quiet = result.select(interferer_pairs=0, channel_plan="cochannel")[0]
    crowded = result.select(interferer_pairs=16, channel_plan="cochannel")[0]
    assert crowded["goodput_kbps"] < 0.8 * quiet["goodput_kbps"]
    assert crowded["backoffs_per_frame"] > quiet["backoffs_per_frame"]
    # Spreading over 1/6/11 recovers throughput.
    spread = result.select(interferer_pairs=16, channel_plan="spread")[0]
    assert spread["goodput_kbps"] > crowded["goodput_kbps"]


def test_e3_range_table_ordering():
    result = run_experiment("E3-range-table")
    ranges = result.column("range_m")
    assert ranges == sorted(ranges, reverse=True)


def test_e3_rate_adaptation_degrades_gracefully():
    result = run_experiment("E3", distances=(10.0, 120.0, 300.0),
                            duration=4.0)
    adaptive = {row["distance_m"]: row
                for row in result.select(mode="adaptive")}
    pinned = {row["distance_m"]: row for row in result.select(mode="11Mbps")}
    # At mid range the adaptive link still works; pinned 11 Mb/s is dead.
    assert adaptive[120.0]["goodput_kbps"] > 5 * pinned[120.0]["goodput_kbps"]
    # Far beyond range both die.
    assert adaptive[300.0]["delivery_ratio"] < 0.3


def test_e4_stale_session_wait_bounded_by_lease():
    result = run_experiment("E4-stale", lease_durations=(10.0, 30.0),
                            admin_after_s=120.0, horizon=200.0)
    lease10 = result.select(policy="lease=10s")[0]
    lease30 = result.select(policy="lease=30s")[0]
    admin = result.select(policy="admin intervention")[0]
    stuck = result.select(policy="no lease, no admin")[0]
    assert lease10["wait_s"] <= 10.0 + 4.0
    assert lease30["wait_s"] <= 30.0 + 4.0
    assert lease10["wait_s"] < lease30["wait_s"] < admin["wait_s"]
    assert math.isinf(stuck["wait_s"])


def test_e4_hijack_never_succeeds():
    result = run_experiment("E4-hijack", attempts=100)
    assert result.rows[0]["hijacks_succeeded"] == 0


def test_e5_completion_collapses_with_burden():
    result = run_experiment("E5", burdens=(2, 12), users_per_cell=25)
    for population in ("lab", "casual"):
        easy = result.select(population=population, burden=2)[0]
        hard = result.select(population=population, burden=12)[0]
        assert easy["completed"] > 0.9
        assert hard["completed"] < 0.3
    # Casual users do no better than researchers at high burden.
    lab8 = result.select(population="lab", burden=12)[0]
    casual8 = result.select(population="casual", burden=12)[0]
    assert casual8["completed"] <= lab8["completed"] + 0.05


def test_e5_prototype_vs_product():
    result = run_experiment("E5-prototype", users_per_cell=30)
    prototype = result.select(variant="research-prototype")[0]
    product = result.select(variant="commercial-product")[0]
    assert product["completed"] > 0.9
    assert prototype["completed"] < 0.4


def test_e6_population_gap_and_soc_fix():
    result = run_experiment("E6", population_size=50)
    lab = result.select(platform="research-adapter", population="lab")[0]
    casual = result.select(platform="research-adapter",
                           population="casual")[0]
    assert lab["usable_fraction"] > 0.9
    assert casual["usable_fraction"] < 0.2
    soc_casual = result.select(platform="commercial-soc",
                               population="casual")[0]
    assert soc_casual["usable_fraction"] > 0.8


def test_e6_recovery_diagnostics_beat_humans():
    result = run_experiment("E6-recovery", horizon=100.0)
    for fault in ("adapter", "registry"):
        rows = result.select(fault=fault)
        skilled = next(r for r in rows if "0.90" in r["remedy"])
        unskilled = next(r for r in rows if "0.15" in r["remedy"])
        auto = next(r for r in rows if r["remedy"] == "diagnostics")
        assert auto["outage_s"] < skilled["outage_s"]
        assert not unskilled["recovered"]


def test_e7_harmony_diagonal():
    result = run_experiment("E7", population_size=50)
    proto_res = result.select(purpose="research-prototype",
                              population="researchers")[0]
    proto_cas = result.select(purpose="research-prototype",
                              population="casual-presenters")[0]
    prod_cas = result.select(purpose="commercial-product",
                             population="casual-presenters")[0]
    assert proto_res["in_harmony_fraction"] > 0.9
    assert proto_cas["in_harmony_fraction"] < 0.1
    assert prod_cas["in_harmony_fraction"] > 0.9


def test_e8_wer_monotone_in_noise():
    result = run_experiment("E8", floor_levels_db=(35, 55, 75), speakers=6,
                            words_per_speaker=30)
    wers = result.column("word_error_rate")
    assert wers[0] < 0.3
    assert wers == sorted(wers)
    assert wers[-1] > 0.9
    # Social appropriateness flips the other way.
    social = result.column("socially_ok")
    assert social[0] < 0.5 and social[-1] > 0.5


def test_e9_full_model_beats_device_only():
    result = run_experiment("E9", horizon=240.0)
    full = result.rows[0]
    ablated = result.rows[1]
    assert full["coverage"] >= 0.85
    assert ablated["coverage"] <= full["coverage"] - 0.3


def test_figures_regenerate():
    result = run_experiment("F1-F5")
    assert len(result.rows) == 5
    assert all(row["mentions_relation"] for row in result.rows)


def test_full_quick_report_runs_every_experiment():
    """The one-shot report regenerates every registered table."""
    from repro.experiments import list_experiments
    from repro.experiments.report import run_all

    results = run_all(budget="quick")
    assert len(results) == len(list_experiments())
    for result in results:
        assert result.rows, f"{result.experiment_id} produced no rows"


def test_e9_deterministic_per_seed():
    first = run_experiment("E9", seed=42, horizon=240.0)
    second = run_experiment("E9", seed=42, horizon=240.0)
    assert first.rows == second.rows
