"""Batched execution oracle: ``batching=True`` must be byte-identical to
the legacy per-event heap on seeded workloads.

The batched engine shares the kernel's global sequence counter, so every
entry — heap or batch — consumes the same ``(time, priority, seq)`` key
in both modes and the interleaving is *exactly* reproduced, not merely
statistically equivalent.  These tests pin that contract on the three
workloads that exercise the converted producers hardest: the full
projector room with co-channel interferers (MAC backoff/ACK/finish
timers), the broadcast-heavy scale room, and a lease storm (sweep +
renewal chains).

Process-global id counters (frame ids, lease ids, transport message ids,
service-id suffixes) advance in construction order, not execution order,
so absolute values differ between two rooms built in one process no
matter the engine; messages are compared with those ids normalised away
— the same convention as ``test_phys_culling_equivalence``.
"""

from __future__ import annotations

import re

from repro.discovery.leases import LeaseTable
from repro.experiments.workloads import (broadcast_room, interferer_field,
                                         projector_room)
from repro.kernel.scheduler import Simulator

#: Process-global id artifacts scrubbed from trace messages before
#: comparison: frame ids ("#12"), lease/request ids, service-id suffixes.
_ID = re.compile(r"#\d+|\b(?:lease|request) \d+|-\d{4}\b")

#: Span/record data keys carrying those same process-global ids.
_ID_KEYS = {"frame", "lease", "request", "msg"}


def _records(sim):
    return [(r.time, r.category, r.source, _ID.sub("<id>", r.message))
            for r in sim.tracer.records]


def _spans(sim):
    return [(s.category, s.source, s.start, s.end, s.status,
             {k: v for k, v in (s.data or {}).items() if k not in _ID_KEYS})
            for s in sim.tracer.spans]


def _metrics(sim):
    """Metrics snapshot minus the kernel's own engine internals.

    ``kernel.*`` gauges and the "kernel" probe report *how* events were
    executed (cohorts, compactions, cancelled ratio) — legitimately
    different between engines — while everything else reports *what*
    the simulation did, which must match.
    """
    snap = sim.metrics.snapshot()
    out = {}
    for section, values in snap.items():
        if isinstance(values, dict):
            out[section] = {name: value for name, value in values.items()
                            if not name.startswith("kernel")}
        else:
            out[section] = values
    return out


def _outcome(sim):
    return (sim.now, sim.events_executed, _records(sim), _spans(sim),
            _metrics(sim))


def _projector_outcome(batching: bool):
    room = projector_room(seed=3, batching=batching)
    interferer_field(room, 6, frames_per_second=40.0)
    room.sim.run(until=12.0)
    macs = {name: dict(room.medium._macs[name].stats)
            for name in room.medium.stations()}
    return _outcome(room.sim) + (macs,)


def test_projector_room_byte_identical():
    batched = _projector_outcome(batching=True)
    legacy = _projector_outcome(batching=False)
    for got, want in zip(batched, legacy):
        assert got == want


def _broadcast_outcome(batching: bool):
    room = broadcast_room(60, seed=11, batching=batching)
    room.sim.run(until=6.0)
    return (room.sim.now, room.sim.events_executed, list(room.deliveries))


def test_broadcast_room_byte_identical():
    assert _broadcast_outcome(True) == _broadcast_outcome(False)


def _lease_storm_outcome(batching: bool):
    """A renewal-chain storm straight on the lease table: grants with a
    handful of standard durations, each renewed at 45% of its duration
    until the horizon, under a fast sweep."""
    sim = Simulator(seed=9, batching=batching)
    table = LeaseTable(sim, sweep_interval=0.5)
    rng = sim.rng("storm")
    durations = [2.0, 3.0, 5.0]
    renewed = [0]

    def chain(lease_id: int, duration: float) -> None:
        lease = table.get(lease_id)
        if lease is None or sim.now + 0.45 * duration > 25.0:
            return
        table.renew(lease_id)
        renewed[0] += 1
        sim.schedule(0.45 * duration, chain, lease_id, duration)

    for i in range(120):
        duration = durations[int(rng.integers(0, len(durations)))]
        lease = table.grant(f"holder-{i}", f"res-{i}", duration)
        sim.schedule(0.45 * duration, chain, lease.lease_id, duration)

    sim.run(until=30.0)
    return (sim.now, sim.events_executed, renewed[0], len(table),
            _records(sim), _metrics(sim))


def test_lease_storm_byte_identical():
    batched = _lease_storm_outcome(batching=True)
    legacy = _lease_storm_outcome(batching=False)
    for got, want in zip(batched, legacy):
        assert got == want


def test_storm_bench_outcomes_identical():
    """The bench gate's identity invariant, pinned in tier-1: the
    100k-backoff/10k-renewal storm executes the same events to the same
    clock in both modes."""
    from repro.experiments.bench import _storm_run

    batched = _storm_run(batching=True)
    legacy = _storm_run(batching=False)
    for key in ("events", "fired_backoffs", "fired_renewals", "now"):
        assert batched[key] == legacy[key]
