"""Tests for the uniform-grid spatial index behind ``World.within``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.env.spatialindex import MIN_SEPARATION_M, SpatialGrid
from repro.env.world import World
from repro.kernel.errors import ConfigurationError


def brute_force_within(world: World, name: str, radius: float):
    """The reference O(n) scan the grid must reproduce exactly."""
    out = []
    for other in world.names():
        if other == name:
            continue
        if world.distance_between(name, other) <= radius:
            out.append(other)
    return out


def scatter(world: World, count: int, seed: int = 3) -> None:
    rng = np.random.default_rng(seed)
    for i in range(count):
        world.place(f"e{i}", (rng.uniform(0, world.width),
                              rng.uniform(0, world.height)))


# ---------------------------------------------------------------------------
# Exact equivalence with the brute-force scan
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("radius", [0.05, 0.1, 1.0, 7.0, 25.0, 1000.0])
def test_grid_matches_brute_force(radius):
    world = World(100.0, 60.0)
    scatter(world, 120)
    grid = SpatialGrid(world)
    for name in ("e0", "e17", "e119"):
        assert grid.neighbors_within(name, radius) == \
            brute_force_within(world, name, radius)


def test_grid_matches_brute_force_many_seeds():
    for seed in range(5):
        world = World(200.0, 200.0)
        scatter(world, 80, seed=seed)
        grid = SpatialGrid(world)
        for name in world.names()[::13]:
            for radius in (2.0, 10.0, 50.0):
                assert grid.neighbors_within(name, radius) == \
                    brute_force_within(world, name, radius)


def test_results_in_insertion_order():
    world = World(10.0, 10.0)
    for name in ("z", "m", "a", "q"):
        world.place(name, (5.0, 5.0))
    # All co-located: everything within 0.1 of everything, insertion order.
    assert world.within("m", 0.2) == ["z", "a", "q"]


def test_min_separation_clip_matches_world():
    world = World(10.0, 10.0)
    world.place("a", (5.0, 5.0))
    world.place("b", (5.0, 5.0))  # co-located -> clipped to 0.1 m
    grid = SpatialGrid(world)
    assert grid.neighbors_within("a", MIN_SEPARATION_M) == ["b"]
    assert grid.neighbors_within("a", MIN_SEPARATION_M / 2) == []


# ---------------------------------------------------------------------------
# Epoch-keyed lazy rebuilds
# ---------------------------------------------------------------------------

def test_rebuilds_only_when_epoch_moves():
    world = World(50.0, 50.0)
    scatter(world, 20)
    grid = SpatialGrid(world)
    grid.neighbors_within("e0", 5.0)
    grid.neighbors_within("e1", 5.0)
    assert grid.stats()["rebuilds"] == 1  # second query reused the build

    world.move("e3", (1.0, 1.0))
    grid.neighbors_within("e0", 5.0)
    assert grid.stats()["rebuilds"] == 2


def test_moves_are_observed():
    world = World(100.0, 100.0)
    world.place("a", (10.0, 10.0))
    world.place("b", (90.0, 90.0))
    grid = SpatialGrid(world)
    assert grid.neighbors_within("a", 5.0) == []
    world.move("b", (12.0, 10.0))  # crosses into a's neighbourhood
    assert grid.neighbors_within("a", 5.0) == ["b"]
    assert grid.neighbors_within("a", 5.0) == \
        brute_force_within(world, "a", 5.0)


def test_placements_after_build_are_observed():
    world = World(100.0, 100.0)
    world.place("a", (50.0, 50.0))
    grid = SpatialGrid(world)
    assert grid.neighbors_within("a", 10.0) == []
    world.place("b", (52.0, 50.0))
    assert grid.neighbors_within("a", 10.0) == ["b"]


# ---------------------------------------------------------------------------
# Configuration and edge cases
# ---------------------------------------------------------------------------

def test_bad_cell_size_rejected():
    world = World(10.0, 10.0)
    with pytest.raises(ConfigurationError):
        SpatialGrid(world, cell_size=0.0)
    with pytest.raises(ConfigurationError):
        SpatialGrid(world, cell_size=-1.0)


def test_pinned_cell_size_used():
    world = World(100.0, 100.0)
    scatter(world, 30)
    grid = SpatialGrid(world, cell_size=12.5)
    grid.neighbors_within("e0", 5.0)
    assert grid.stats()["cell_m"] == 12.5


def test_world_spanning_radius_takes_full_scan_path():
    world = World(100.0, 100.0)
    scatter(world, 50)
    grid = SpatialGrid(world)
    result = grid.neighbors_within("e0", 10_000.0)
    assert grid.stats()["full_scans"] >= 1
    assert result == brute_force_within(world, "e0", 10_000.0)
    assert len(result) == 49


def test_single_entity_world():
    world = World(10.0, 10.0)
    world.place("only", (5.0, 5.0))
    grid = SpatialGrid(world)
    assert grid.neighbors_within("only", 100.0) == []


def test_world_within_uses_shared_grid():
    world = World(100.0, 100.0)
    scatter(world, 40)
    assert world.within("e0", 15.0) == brute_force_within(world, "e0", 15.0)
    assert world.grid() is world.grid()
    assert world.grid().stats()["queries"] >= 1
