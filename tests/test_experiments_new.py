"""Shape tests for the extension experiments (training, mobile code,
energy)."""

from __future__ import annotations
import pytest

import math

from repro.experiments import run_experiment


def test_e5_training_learning_curve():
    result = run_experiment("E5-training", sessions=6, users_per_cell=30)
    completed = result.column("completed")
    knowledge = result.column("mean_domain_knowledge")
    # Faculties develop monotonically with practice...
    assert knowledge == sorted(knowledge)
    # ...and late-session completion beats the first session.
    late = sum(completed[-3:]) / 3
    assert late > completed[0] + 0.05


def test_e4_proxy_download_scaling():
    result = run_experiment("E4-proxy", code_sizes=(1024, 65536))
    fast_small = result.select(rate="11Mbps", proxy_kb=1.0)[0]
    fast_large = result.select(rate="11Mbps", proxy_kb=64.0)[0]
    slow_large = result.select(rate="1Mbps", proxy_kb=64.0)[0]
    # Bind time grows with proxy size and shrinks with rate.
    assert fast_large["bind_time_s"] > fast_small["bind_time_s"]
    assert slow_large["bind_time_s"] > 5 * fast_large["bind_time_s"]
    # 64 kB at 1 Mb/s is roughly half a second of airtime.
    assert 0.3 < slow_large["bind_time_s"] < 2.0
    assert not math.isnan(fast_small["bind_time_s"])


def test_e10_energy_duty_cycle_dominates():
    result = run_experiment("E10-energy", beacon_periods_s=(0.1, 60.0),
                            measure_s=60.0)
    always_on_quiet = result.select(rx_duty=1.0, beacon_period_s=60.0)[0]
    always_on_chatty = result.select(rx_duty=1.0, beacon_period_s=0.1)[0]
    sleepy_quiet = result.select(rx_duty=0.05, beacon_period_s=60.0)[0]
    sleepy_chatty = result.select(rx_duty=0.05, beacon_period_s=0.1)[0]
    # Always-on receiver: beaconing barely matters (idle dominates).
    assert always_on_chatty["battery_life_h"] > \
        0.9 * always_on_quiet["battery_life_h"]
    # Duty cycling buys ~an order of magnitude.
    assert sleepy_quiet["battery_life_h"] > \
        5 * always_on_quiet["battery_life_h"]
    # Once sleepy, chattiness costs measurably.
    assert sleepy_chatty["battery_life_h"] < sleepy_quiet["battery_life_h"]


def test_e10_energy_power_budget_sane():
    result = run_experiment("E10-energy", beacon_periods_s=(1.0,),
                            duty_cycles=(1.0,), measure_s=30.0)
    row = result.rows[0]
    # An always-on 1999 radio draws roughly its idle power.
    assert 0.7 < row["avg_power_w"] < 1.0


def test_e4_orders_atomic_eliminates_deadlock():
    result = run_experiment("E4-orders", repeats=12)
    split = result.select(strategy="split")[0]
    atomic = result.select(strategy="atomic")[0]
    assert split["deadlocks"] > 0
    assert atomic["deadlocks"] == 0
    assert atomic["mean_completion_s"] < 20.0


def test_e8_auth_fails_closed():
    result = run_experiment("E8-auth", genuine_trials=150,
                            impostor_trials=150)
    rows = {row["ambient_db"]: row for row in result.rows}
    # FRR climbs with ambient noise...
    frrs = [rows[db]["frr"] for db in sorted(rows)]
    assert frrs == sorted(frrs)
    assert frrs[0] < 0.2 and frrs[-1] > 0.8
    # ...while FAR never escapes the neighbourhood of the design target.
    for row in result.rows:
        assert row["far"] <= 0.05


def test_e2_scale_broad_grows_filtered_flat():
    result = run_experiment("E2-scale", service_counts=(4, 64))
    broad4 = result.select(services=4, query="broad")[0]
    broad64 = result.select(services=64, query="broad")[0]
    filtered4 = result.select(services=4, query="filtered")[0]
    filtered64 = result.select(services=64, query="filtered")[0]
    # Broad lookups scale ~linearly in population...
    assert broad64["latency_s"] > 8 * broad4["latency_s"]
    assert broad64["matches"] == 64
    # ...while filtered templates stay flat.
    assert filtered64["latency_s"] == pytest.approx(filtered4["latency_s"],
                                                    rel=0.5)
    assert filtered64["matches"] == 1


def test_e2_autochannel_recovers_goodput():
    result = run_experiment("E2-autochannel", pairs=20, duration=16.0)
    before = result.rows[0]
    after = result.rows[1]
    assert after["goodput_kbps"] > 1.5 * before["goodput_kbps"]
    assert after["channel"] != 6


def test_e6_accessibility_age_gradient():
    result = run_experiment("E6-accessibility", population_size=40)
    pda = {row["age_group"]: row
           for row in result.select(form_factor="pda")}
    panel = {row["age_group"]: row
             for row in result.select(form_factor="touch-panel")}
    # The PDA sheds older users; the accessible panel holds everyone.
    assert pda["older"]["compatible_fraction"] < \
        pda["adult"]["compatible_fraction"]
    for age_group in ("young", "adult", "older"):
        assert panel[age_group]["compatible_fraction"] == 1.0


def test_e1_replicated_averages_seeds():
    result = run_experiment("E1-replicated", seeds=(1, 2), duration=12.0)
    by_rate = {row["rate"]: row for row in result.rows}
    assert by_rate["11Mbps"]["replicates"] == 2
    assert by_rate["11Mbps"]["mean_displayed_fps"] > \
        by_rate["2Mbps"]["mean_displayed_fps"]
