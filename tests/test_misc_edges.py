"""Edge-case tests sweeping up less-travelled paths."""

from __future__ import annotations

import pytest

from repro.discovery.protocol import DiscoveryAgent, RegistryLocator
from repro.experiments.workloads import projector_room
from repro.phys.devices import Device
from repro.services.vnc import VNCViewer


# ---------------------------------------------------------------------------
# DiscoveryAgent freshness bookkeeping
# ---------------------------------------------------------------------------

def test_agent_staleness_and_forget(sim, world, medium):
    device = Device(sim, world, "node", (5, 5), medium=medium)
    agent = DiscoveryAgent(sim, device)
    locator = RegistryLocator("reg", "hub", 10)
    agent._learn(locator)
    assert agent.stale(max_age=100.0) == []
    sim.schedule(50.0, lambda: None)
    sim.run()
    assert agent.stale(max_age=10.0) == ["reg"]
    agent.forget("reg")
    assert agent.known == {}
    # Re-learning after forgetting fires listeners again.
    found = []
    agent.on_found(found.append)
    agent._learn(locator)
    assert len(found) == 1


def test_agent_on_found_replays_known(sim, world, medium):
    device = Device(sim, world, "node", (5, 5), medium=medium)
    agent = DiscoveryAgent(sim, device)
    agent._learn(RegistryLocator("reg", "hub", 10))
    late = []
    agent.on_found(late.append)  # registered after discovery
    assert [loc.registry_id for loc in late] == ["reg"]


def test_agent_probing_stops_after_discovery(sim, world, medium):
    device = Device(sim, world, "node", (5, 5), medium=medium)
    agent = DiscoveryAgent(sim, device, probe_interval=0.5, max_probes=10)
    agent.discover()
    sim.schedule(1.2, lambda: agent._learn(RegistryLocator("reg", "hub", 10)))
    sim.run(until=10.0)
    # Probes stop once something is known: far fewer than max_probes sent.
    assert agent._probes_sent <= 4


# ---------------------------------------------------------------------------
# VNC stall backoff
# ---------------------------------------------------------------------------

def test_vnc_stall_backoff_doubles_and_caps():
    room = projector_room(seed=300, register=False)
    viewer = VNCViewer(room.sim, room.adapter, "laptop",
                       room.adapter.drive_display, target_fps=10.0,
                       stall_timeout=1.0)
    # No server running: stalls accumulate with exponential spacing.
    viewer.start()
    room.sim.run(until=70.0)
    waits = [1.0 * (2 ** k) for k in range(viewer.stalls)]
    assert viewer.stalls >= 4
    assert viewer._current_stall_wait() <= 16.0  # capped


def test_vnc_backoff_resets_after_recovery():
    from repro.services.framebuffer import Framebuffer
    from repro.services.vnc import VNCServer

    room = projector_room(seed=301, register=False)
    room.projector.power(True)
    fb = Framebuffer(256, 256)
    server = VNCServer(room.sim, room.laptop, fb)
    viewer = VNCViewer(room.sim, room.adapter, "laptop",
                       room.adapter.drive_display, target_fps=10.0,
                       stall_timeout=1.0)
    viewer.start()
    room.sim.schedule(5.0, server.start)
    room.sim.run(until=20.0)
    assert viewer.updates_received > 0
    assert viewer._consecutive_stalls == 0


# ---------------------------------------------------------------------------
# User behaviour: repeated verify failure ends in abandonment
# ---------------------------------------------------------------------------

def test_persistent_verify_failure_abandons(sim):
    from repro.resource.faculties import FacultyProfile
    from repro.user.behavior import Procedure, Step, UserAgent

    # A user with minimal patience facing a step whose effect never works.
    faculties = FacultyProfile("f", gui_literacy=0.9, domain_knowledge=0.9,
                               frustration_tolerance=0.05, learning_rate=0.9)
    agent = UserAgent(sim, "f", faculties, frustration_per_fumble=0.5)
    procedure = Procedure("broken", [
        Step("futile", lambda: None, think_time=0.1,
             verify=lambda: False)])
    results = []
    agent.attempt(procedure, results.append)
    sim.run(until=600.0)
    assert results[0].abandoned
    assert not results[0].completed


# ---------------------------------------------------------------------------
# CLI demo subcommand (slowest CLI path)
# ---------------------------------------------------------------------------

def test_cli_demo_runs(capsys):
    from repro.cli import main

    assert main(["demo", "--horizon", "60", "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "LPC analysis" in out
    assert "coverage" in out
