"""Tests for the LPC model object, instrumentation, figures and the
paper-coverage analysis."""

from __future__ import annotations

import pytest

from repro.core.analysis import compare_with_paper
from repro.core.concerns import Concern
from repro.core.figures import ALL_FIGURES, figure1, figure2, figure3, figure4, figure5, render_all
from repro.core.instrument import LPCInstrument
from repro.core.layers import Column, Layer, RELATIONS
from repro.core.model import LPCModel, smart_projector_model
from repro.core.paper import (
    layer_counts,
    paper_inventory,
    paper_inventory_by_layer,
    user_column_items,
)
from repro.kernel.errors import ModelError


# ---------------------------------------------------------------------------
# LPCModel
# ---------------------------------------------------------------------------

def test_model_entities():
    model = smart_projector_model()
    assert len(model.entities()) == 4
    assert model.entity("presenter").kind == "user"
    with pytest.raises(ModelError):
        model.entity("nobody")
    with pytest.raises(ModelError):
        model.add_entity(model.entity("presenter"))


def test_entities_filtered_by_layer():
    model = smart_projector_model()
    at_intentional = {e.name for e in model.entities(Layer.INTENTIONAL)}
    assert at_intentional == {"presenter", "smart-projector"}


def test_add_concern_classified():
    model = LPCModel("test")
    concern = model.add_concern("users forget to release the session",
                                topic="session")
    assert concern.layer == Layer.ABSTRACT
    assert model.concerns(Layer.ABSTRACT) == [concern]


def test_add_concern_explicit_layer_and_column():
    model = LPCModel("test")
    concern = model.add_concern("anything", layer=Layer.PHYSICAL,
                                column=Column.USER)
    assert concern.layer == Layer.PHYSICAL
    assert model.concerns(column=Column.USER) == [concern]


def test_concern_column_follows_entity():
    model = smart_projector_model()
    concern = model.add_concern("mental overload", topic="mental",
                                entity="presenter")
    assert concern.column == Column.USER


def test_concern_counts():
    model = LPCModel("t")
    model.add_concern("a", topic="session")
    model.add_concern("b", topic="radio")
    counts = model.concern_counts()
    assert counts[Layer.ABSTRACT] == 1
    assert counts[Layer.ENVIRONMENT] == 1
    assert counts[Layer.PHYSICAL] == 0


def test_checks_and_health():
    from repro.core.constraints import check_resource_match
    from repro.resource.faculties import casual_user
    from repro.resource.platform import adapter_platform, soc_platform

    model = LPCModel("t")
    model.record_check(check_resource_match(adapter_platform(), casual_user()))
    model.record_check(check_resource_match(soc_platform(), casual_user()))
    assert len(model.checks(Layer.RESOURCE)) == 2
    assert len(model.violations()) == 1
    health = model.layer_health()
    assert 0.0 <= health[Layer.RESOURCE] < 1.0
    assert health[Layer.ABSTRACT] == 1.0  # nothing checked there


def test_report_mentions_all_layers_and_relations():
    model = smart_projector_model()
    model.add_concern("interference burst", topic="interference")
    report = model.report()
    for layer in Layer:
        assert layer.title in report
    for relation in RELATIONS.values():
        assert relation in report
    assert "interference burst" in report


# ---------------------------------------------------------------------------
# Instrumentation
# ---------------------------------------------------------------------------

def test_instrument_collects_and_classifies(sim):
    model = smart_projector_model()
    instrument = LPCInstrument(sim, model, user_sources={"presenter"})
    sim.issue("session", "projector", "bob denied: alice holds the session")
    sim.issue("mental", "presenter", "expected lamp on, observed off")
    assert instrument.observed == 2
    assert model.concern_counts()[Layer.ABSTRACT] == 2
    columns = {c.column for c in model.concerns()}
    assert columns == {Column.DEVICE, Column.USER}


def test_instrument_catches_up_on_existing_issues(sim):
    sim.issue("radio", "nic", "frame dropped (collisions)")
    model = smart_projector_model()
    instrument = LPCInstrument(sim, model)
    assert model.concern_counts()[Layer.ENVIRONMENT] == 1


def test_instrument_dedup_counts(sim):
    model = smart_projector_model()
    LPCInstrument(sim, model, dedup=True)
    for _ in range(5):
        sim.issue("session", "projector", "identical message")
    concerns = model.concerns(Layer.ABSTRACT)
    assert len(concerns) == 1
    assert concerns[0].count == 5


def test_instrument_detach(sim):
    model = smart_projector_model()
    instrument = LPCInstrument(sim, model)
    instrument.detach()
    sim.issue("session", "projector", "after detach")
    assert model.concerns() == []


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------

def test_figure1_structure():
    text = figure1()
    # All five layers present, environment spans the bottom.
    for label in ("Design Purpose", "User Goals", "Application",
                  "Mental Models", "User Faculties", "Physical Devices",
                  "Physical User", "Environment"):
        assert label in text
    # Temporal-specificity annotation present.
    assert "temporal specificity" in text
    # Top-down order: intentional artifacts appear before physical ones.
    assert text.index("Design Purpose") < text.index("Physical Devices")


def test_figure2_has_relation_and_footnote():
    text = figure2()
    assert RELATIONS[Layer.PHYSICAL] in text
    assert "either a user or a device" in text


def test_figure3_lists_all_boxes():
    text = figure3()
    for box in ("Mem", "Sto", "Exe", "UI", "Net"):
        assert box in text
    assert RELATIONS[Layer.RESOURCE] in text
    assert "temperament" in text


def test_figure4_and_5_relations():
    assert RELATIONS[Layer.ABSTRACT] in figure4()
    assert "User Reasoning" in figure4()
    assert RELATIONS[Layer.INTENTIONAL] in figure5()


def test_render_all_contains_every_figure():
    text = render_all()
    for i in ALL_FIGURES:
        assert f"Figure {i}" in text


# ---------------------------------------------------------------------------
# Paper inventory and coverage
# ---------------------------------------------------------------------------

def test_paper_inventory_counts():
    inventory = paper_inventory()
    assert len(inventory) >= 20
    counts = layer_counts()
    assert sum(counts.values()) == len(inventory)
    assert counts[Layer.ABSTRACT] >= 6  # richest section of the paper
    by_layer = paper_inventory_by_layer()
    assert all(len(by_layer[layer]) == counts[layer] for layer in Layer)


def test_user_column_items_majority():
    """The paper's argument: most of its issues involve the user."""
    assert len(user_column_items()) >= len(paper_inventory()) * 0.4


def test_coverage_empty_observation():
    report = compare_with_paper([])
    assert report.coverage == 0.0
    assert report.extras == []


def test_coverage_requires_matching_layer():
    # Right keywords, wrong layer: no credit.
    wrong = [Concern("session denied: holder keeps the session",
                     Layer.PHYSICAL)]
    report = compare_with_paper(wrong)
    session_items = [i for i in report.items
                     if "one person" in i.stated.description]
    assert not session_items[0].covered


def test_coverage_matches_on_signature():
    observed = [Concern("bob denied: alice holds the session",
                        Layer.ABSTRACT)]
    report = compare_with_paper(observed)
    covered_texts = [i.stated.description for i in report.items if i.covered]
    assert any("one person" in t for t in covered_texts)
    assert report.extras == []


def test_ablation_loses_user_items():
    observed = [Concern("users assumed to speak English only: language gap",
                        Layer.RESOURCE)]
    full = compare_with_paper(observed, include_user_column=True)
    ablated = compare_with_paper(observed, include_user_column=False)
    assert full.coverage > ablated.coverage


def test_extras_reported():
    observed = [Concern("totally novel issue about quantum projectors",
                        Layer.ABSTRACT)]
    report = compare_with_paper(observed)
    assert len(report.extras) == 1


def test_summary_renders():
    report = compare_with_paper([Concern(
        "bob denied: alice holds the session", Layer.ABSTRACT)])
    text = report.summary()
    assert "coverage" in text
    for layer in Layer:
        assert layer.title in text
