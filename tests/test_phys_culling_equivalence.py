"""Culled vs exhaustive equivalence: the fast path may only be faster.

The audibility-culling fast path must be *outcome-invisible*: both modes
apply the identical audibility predicate before any RNG draw, so seeded
runs produce byte-identical delivery logs, MAC statistics and event
counts.  These tests pin that across three scenario families — the
projector room with E2-style interferers, a broadcast-heavy flat
population, and a mobile population whose movers cross grid cells —
plus the medium's station/partition caches.
"""

from __future__ import annotations

import pytest

from repro.env.mobility import RandomWaypoint
from repro.env.radio import PropagationModel
from repro.env.world import World
from repro.experiments.workloads import (
    broadcast_room,
    interferer_field,
    projector_room,
)
from repro.kernel.scheduler import Simulator
from repro.phys.mac import CsmaMac, WirelessMedium


def mac_outcomes(medium: WirelessMedium):
    """Per-station statistics, keyed by address (culling counters excluded:
    they measure the *mechanism*, which legitimately differs by mode)."""
    return {address: dict(mac.stats)
            for address, mac in medium._macs.items()}


# ---------------------------------------------------------------------------
# Scenario 1: the projector room with co-channel interferers (E2 shape)
# ---------------------------------------------------------------------------

def run_interference_room(culling: bool):
    room = projector_room(seed=11, trace=False, culling=culling)
    interferer_field(room, 6, frames_per_second=25.0, frame_bytes=800)
    room.sim.run(until=6.0)
    return room


def test_projector_room_with_interferers_identical():
    culled = run_interference_room(True)
    exhaustive = run_interference_room(False)
    assert culled.sim.events_executed == exhaustive.sim.events_executed
    assert mac_outcomes(culled.medium) == mac_outcomes(exhaustive.medium)
    # The discovery workflow reached the same state too.
    assert (len(culled.registry.items())
            == len(exhaustive.registry.items()))


# ---------------------------------------------------------------------------
# Scenario 2: broadcast-heavy flat population (the benchmark workload)
# ---------------------------------------------------------------------------

def run_broadcast(culling: bool, stations: int = 150):
    room = broadcast_room(stations, culling=culling)
    room.sim.run(until=2.0)
    return room


def test_broadcast_population_identical():
    culled = run_broadcast(True)
    exhaustive = run_broadcast(False)
    # Delivery logs compare (time, src, rx) — frame ids come from a global
    # counter and are construction-order artefacts, not outcomes.
    assert sorted(culled.deliveries) == sorted(exhaustive.deliveries)
    assert culled.sim.events_executed == exhaustive.sim.events_executed
    assert mac_outcomes(culled.medium) == mac_outcomes(exhaustive.medium)
    # And culling actually culled — otherwise this test proves nothing.
    stats = culled.medium.culling_stats()
    assert stats["enabled"] is True
    assert stats["culled"] > 0
    assert stats["cull_rate"] > 0.5
    assert exhaustive.medium.culling_stats()["enabled"] is False


def test_broadcast_population_with_fading_identical():
    """Rayleigh fading draws from the shared decode RNG; the 30 dB culling
    margin must keep the draw sequence identical in both modes."""
    def build(culling: bool):
        sim = Simulator(seed=23, trace=False)
        world = World(600.0, 600.0)
        propagation = PropagationModel(exponent=3.5, shadowing_sigma_db=3.0,
                                       rng=sim.rng("radio.shadowing"))
        medium = WirelessMedium(sim, world, propagation=propagation,
                                fast_fading=True, culling=culling)
        rng = sim.rng("fade.placement")
        deliveries = []
        for i in range(60):
            name = f"f{i}"
            world.place(name, (rng.uniform(0, 600), rng.uniform(0, 600)))
            mac = CsmaMac(sim, medium, name, channel=1, tx_power_dbm=2.0)
            mac.on_receive = (lambda frame, rx=name:
                              deliveries.append((sim.now, frame.src, rx)))
            from repro.net.addresses import BROADCAST
            from repro.net.frames import Frame
            sim.every(0.5, lambda m=mac: m.send(
                Frame(m.address, BROADCAST, payload_bytes=120)),
                start=float(rng.uniform(0, 0.5)))
        sim.run(until=3.0)
        return deliveries, mac_outcomes(medium), sim.events_executed

    culled = build(True)
    exhaustive = build(False)
    assert sorted(culled[0]) == sorted(exhaustive[0])
    assert culled[1] == exhaustive[1]
    assert culled[2] == exhaustive[2]


# ---------------------------------------------------------------------------
# Scenario 3: mobility — movers cross grid cells, the grid must track them
# ---------------------------------------------------------------------------

def run_mobile(culling: bool):
    room = broadcast_room(80, culling=culling, width=800.0, height=800.0)
    movers = [RandomWaypoint(room.sim, room.world, mac.address,
                             speed_min=20.0, speed_max=60.0, pause=0.0,
                             update_interval=0.25).start()
              for mac in room.macs[:20]]
    room.sim.run(until=4.0)
    # Fast movers at 60 m/s cover up to 240 m — many grid cells.
    assert any(m.legs_completed >= 0 for m in movers)
    return room


def test_mobile_population_identical():
    culled = run_mobile(True)
    exhaustive = run_mobile(False)
    assert sorted(culled.deliveries) == sorted(exhaustive.deliveries)
    assert culled.sim.events_executed == exhaustive.sim.events_executed
    assert mac_outcomes(culled.medium) == mac_outcomes(exhaustive.medium)
    # Movement forced grid rebuilds (epoch-keyed invalidation worked).
    assert culled.medium.culling_stats()["grid"]["rebuilds"] > 1


# ---------------------------------------------------------------------------
# Audible sets and the medium's station/partition caches
# ---------------------------------------------------------------------------

def test_audible_set_matches_inline_predicate():
    room = broadcast_room(100, culling=True)
    room.sim.run(until=0.5)  # populate caches
    medium = room.medium
    for sender in room.macs[::17]:
        entry = medium._audible_entry(sender)
        expected = {mac.address for mac in medium._macs.values()
                    if mac is not sender
                    and medium._audible_to(sender, mac)}
        assert set(entry[3]) == expected


def test_stations_cache_invalidated_by_attach(sim, world):
    medium = WirelessMedium(sim, world)
    world.place("a", (1.0, 1.0))
    CsmaMac(sim, medium, "a", channel=6)
    assert medium.stations() == ["a"]
    world.place("b", (2.0, 2.0))
    CsmaMac(sim, medium, "b", channel=11)
    assert medium.stations() == ["a", "b"]
    assert medium.stations_on_channel(6) == ["a"]
    assert medium.stations_on_channel(11) == ["b"]
    assert medium.stations_on_channel(1) == []


def test_partition_tracks_retune_and_promiscuous(sim, world):
    medium = WirelessMedium(sim, world)
    world.place("a", (1.0, 1.0))
    world.place("b", (2.0, 2.0))
    a = CsmaMac(sim, medium, "a", channel=6)
    b = CsmaMac(sim, medium, "b", channel=6)
    assert medium.stations_on_channel(6) == ["a", "b"]
    assert medium._promiscuous_macs() == ()

    b.channel = 11
    assert medium.stations_on_channel(6) == ["a"]
    assert medium.stations_on_channel(11) == ["b"]

    a.promiscuous = True
    assert medium._promiscuous_macs() == (a,)
    a.promiscuous = False
    assert medium._promiscuous_macs() == ()


def test_audible_cache_reused_until_topology_moves():
    room = broadcast_room(60, culling=True)
    medium = room.medium
    sender = room.macs[0]
    medium._audible_entry(sender)
    builds_before = medium.culling_stats()["set_builds"]
    medium._audible_entry(sender)
    stats = medium.culling_stats()
    assert stats["set_builds"] == builds_before  # reused
    assert stats["set_reuses"] >= 1

    room.world.move(sender.address, (0.0, 0.0))
    medium._audible_entry(sender)
    assert medium.culling_stats()["set_builds"] == builds_before + 1


def test_exhaustive_mode_never_builds_sets():
    room = broadcast_room(60, culling=False)
    room.sim.run(until=1.0)
    stats = room.medium.culling_stats()
    assert stats["set_builds"] == 0
    assert stats["set_reuses"] == 0


def test_small_room_culls_nothing():
    """In the paper's 40x25 m room every station hears every other; the
    predicate passes for all pairs and culling is a no-op."""
    room = projector_room(seed=3, trace=False)
    interferer_field(room, 4)
    room.sim.run(until=3.0)
    stats = room.medium.culling_stats()
    assert stats["culled"] == 0
