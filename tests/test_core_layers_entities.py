"""Tests for the LPC structural vocabulary and model entities."""

from __future__ import annotations

import pytest

from repro.core.entities import Facet, ModelEntity, smart_projector_entities
from repro.core.layers import (
    ABSTRACT_DEVICE_PARTS,
    ABSTRACT_USER_PARTS,
    Column,
    DEVICE_SIDE,
    Layer,
    RELATIONS,
    RESOURCE_BOXES,
    USER_SIDE,
    USER_TIMESCALES,
    device_abstraction_rank,
    layers_bottom_up,
    layers_top_down,
    user_temporal_rank,
)
from repro.kernel.errors import ModelError


def test_five_layers_in_order():
    assert list(layers_bottom_up()) == [
        Layer.ENVIRONMENT, Layer.PHYSICAL, Layer.RESOURCE,
        Layer.ABSTRACT, Layer.INTENTIONAL]
    assert list(layers_top_down()) == list(reversed(layers_bottom_up()))


def test_every_layer_has_both_sides_and_relation():
    for layer in Layer:
        assert layer in DEVICE_SIDE
        assert layer in USER_SIDE
        assert layer in RELATIONS


def test_paper_relation_wording():
    assert RELATIONS[Layer.PHYSICAL] == "must be compatible with"
    assert RELATIONS[Layer.RESOURCE] == "must not be frustrated by"
    assert RELATIONS[Layer.ABSTRACT] == "must be consistent with"
    assert RELATIONS[Layer.INTENTIONAL] == "must be in harmony with"


def test_resource_boxes_are_figure3():
    shorts = [short for short, _long in RESOURCE_BOXES]
    assert shorts == ["Mem", "Sto", "Exe", "UI", "Net"]


def test_abstract_layer_parts():
    assert "User Reasoning" in ABSTRACT_USER_PARTS
    assert "Software State" in ABSTRACT_DEVICE_PARTS


def test_device_abstraction_increases_upward():
    ranks = [device_abstraction_rank(layer) for layer in layers_bottom_up()]
    assert ranks == sorted(ranks)


def test_user_temporal_specificity_increases_upward():
    """Higher user strata change faster: goals > mental models > faculties
    > physiology."""
    user_layers = [Layer.PHYSICAL, Layer.RESOURCE, Layer.ABSTRACT,
                   Layer.INTENTIONAL]
    ranks = [user_temporal_rank(layer) for layer in user_layers]
    assert ranks == [0, 1, 2, 3]
    assert all(layer in USER_TIMESCALES for layer in user_layers)


def test_environment_not_a_user_stratum():
    with pytest.raises(ModelError):
        user_temporal_rank(Layer.ENVIRONMENT)


# ---------------------------------------------------------------------------
# Entities
# ---------------------------------------------------------------------------

def test_entity_kind_validation():
    with pytest.raises(ModelError):
        ModelEntity("x", "robot")


def test_entity_default_column():
    assert ModelEntity("u", "user").default_column == Column.USER
    assert ModelEntity("d", "device").default_column == Column.DEVICE
    assert ModelEntity("s", "service").default_column == Column.DEVICE


def test_facets_and_layers():
    entity = ModelEntity("laptop", "device")
    entity.add_facet(Layer.PHYSICAL, "hardware")
    entity.add_facet(Layer.RESOURCE, "runtime", subject={"ram": 128})
    assert entity.layers() == (Layer.PHYSICAL, Layer.RESOURCE)
    assert entity.facet_at(Layer.RESOURCE).subject == {"ram": 128}
    assert entity.facet_at(Layer.INTENTIONAL) is None
    assert len(entity.facets()) == 2
    assert len(entity.facets(Layer.PHYSICAL)) == 1


def test_facet_column_override():
    entity = ModelEntity("hybrid", "device")
    facet = entity.add_facet(Layer.ABSTRACT, "shared view",
                             column=Column.USER)
    assert facet.column == Column.USER


def test_smart_projector_entities_match_paper():
    entities = smart_projector_entities()
    names = {e.name for e in entities}
    assert names == {"presenter", "laptop", "smart-projector", "jini-lookup"}
    presenter = next(e for e in entities if e.name == "presenter")
    assert presenter.kind == "user"
    # The presenter appears at all four user strata.
    assert presenter.layers() == (Layer.PHYSICAL, Layer.RESOURCE,
                                  Layer.ABSTRACT, Layer.INTENTIONAL)
    lookup = next(e for e in entities if e.name == "jini-lookup")
    assert lookup.kind == "infrastructure"
