"""Meta-check: the repo is permanently clean under its own static pass.

This is the tier-1 gate the ISSUE asked for: the full determinism +
layer-boundary pass runs over ``src/`` and must report zero unsuppressed
findings, every baseline entry must still be load-bearing (stale entries
are findings themselves), and the documentation must enumerate every
shipped rule.
"""

from __future__ import annotations

import json
import pathlib

from repro.checks import RULES, load_baseline, run_checks

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "checks_baseline.json"


def _report():
    return run_checks([REPO_ROOT / "src"], base=REPO_ROOT,
                      baseline=BASELINE, jobs=2)


def test_src_has_zero_unsuppressed_findings():
    report = _report()
    details = "\n".join(f.format() for f in report.findings)
    assert report.clean, f"static pass found violations:\n{details}"
    assert report.files >= 100  # the whole tree was actually scanned


def test_baseline_is_minimal_and_justified():
    """Every suppression is used (no LPC002 in the report) and justified."""
    suppressions = load_baseline(BASELINE)
    report = _report()
    assert len(report.suppressed) >= len(suppressions)
    for suppression in suppressions:
        assert len(suppression.justification) > 20, (
            f"{suppression.code} at {suppression.path}: justification "
            "too thin to audit")


def test_layer_graph_matches_the_declared_architecture():
    """The real import graph stays inside the documented layer edges."""
    graph = _report().graph
    # Spot-check the load-bearing edges the docs describe.
    assert "net" in graph["phys"]          # MAC transmits net frames
    assert "kernel" in graph["env"]
    assert "discovery" in graph["services"]
    assert "core" in graph["telemetry"]
    # And the inverted edges must not exist.
    assert "phys" not in graph.get("net", [])
    assert "services" not in graph.get("kernel", [])
    assert "experiments" not in graph.get("core", [])


def test_docs_catalogue_every_rule():
    doc = (REPO_ROOT / "docs" / "static_analysis.md").read_text()
    for code in RULES:
        assert code in doc, f"docs/static_analysis.md is missing {code}"


def test_json_findings_schema_is_stable():
    """`repro.cli check --format json` consumers rely on these keys."""
    payload = json.loads(_report().to_json())
    assert set(payload) >= {"version", "files", "findings", "suppressed",
                            "import_graph", "rules"}
    for entry in payload["suppressed"]:
        assert set(entry) == {"path", "line", "col", "code", "message",
                              "severity", "hint"}
