"""Positive/negative fixtures for the fork-safety flow rules (LPC3xx)."""

from __future__ import annotations

import pathlib

from repro.checks import run_checks


def _tree(tmp_path: pathlib.Path, files: dict) -> pathlib.Path:
    """Write ``{relative_path: source}`` under ``tmp_path/repro``."""
    for rel, source in files.items():
        path = tmp_path / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


def _codes(tmp_path, files, **kw):
    root = _tree(tmp_path, files)
    report = run_checks([root], base=root, **kw)
    return [(f.code, f.path) for f in report.findings], report


# A module full of hazards, and a cli.py that makes it fork-reachable
# (repro.cli:main is a default fork entry point).
_HAZARDS = (
    "import itertools\n"
    "CACHE = {}\n"
    "_seq = itertools.count(1)\n"
    "def put(k, v):\n"
    "    CACHE[k] = v\n"
    "def look(k):\n"
    "    return CACHE.get(k)\n"
    "def mint():\n"
    "    return next(_seq)\n")
_CLI_IMPORTING = "from repro.services import hazard\n"


# ---------------------------------------------------------------------------
# LPC301 — mutation reachable from a fork entry
# ---------------------------------------------------------------------------
def test_lpc301_fires_when_fork_reachable(tmp_path):
    codes, _ = _codes(tmp_path, {
        "services/hazard.py": _HAZARDS,
        "cli.py": _CLI_IMPORTING,
    })
    assert ("LPC301", "repro/services/hazard.py") in codes


def test_lpc301_silent_when_unreachable(tmp_path):
    # Same hazards, but nothing connects them to a fork entry point.
    codes, _ = _codes(tmp_path, {
        "services/hazard.py": _HAZARDS,
        "cli.py": "def main():\n    return 0\n",
    })
    assert all(code != "LPC301" for code, _path in codes)


def test_lpc301_gates_on_custom_entry_points(tmp_path):
    root = _tree(tmp_path, {"services/hazard.py": _HAZARDS})
    silent = run_checks([root], base=root, entry_points=[])
    flagged = run_checks([root], base=root,
                         entry_points=["repro.services.hazard:put"])
    assert all(f.code != "LPC301" for f in silent.findings)
    assert any(f.code == "LPC301" for f in flagged.findings)


# ---------------------------------------------------------------------------
# LPC302 — cross-run contamination (ungated by reachability)
# ---------------------------------------------------------------------------
def test_lpc302_fires_on_mutated_and_read_container(tmp_path):
    codes, _ = _codes(tmp_path, {"services/hazard.py": _HAZARDS})
    assert ("LPC302", "repro/services/hazard.py") in codes


def test_lpc302_silent_for_write_only_container(tmp_path):
    codes, _ = _codes(tmp_path, {
        "services/log.py": (
            "EVENTS = []\n"
            "def record(e):\n"
            "    EVENTS.append(e)\n"),
    })
    # .append() loads EVENTS on the mutation line, which must not count
    # as a read-back.
    assert all(code != "LPC302" for code, _path in codes)


def test_lpc302_silent_for_read_only_constant_table(tmp_path):
    codes, _ = _codes(tmp_path, {
        "services/table.py": (
            "NAMES = {'a': 1}\n"
            "def look(k):\n"
            "    return NAMES.get(k)\n"),
    })
    assert all(code != "LPC302" for code, _path in codes)


# ---------------------------------------------------------------------------
# LPC303 — module-level RNG streams
# ---------------------------------------------------------------------------
def test_lpc303_fires_on_module_rng_and_captures(tmp_path):
    codes, report = _codes(tmp_path, {
        "services/rngmod.py": (
            "import numpy as np\n"
            "_RNG = np.random.default_rng(1234)\n"   # seeded: still shared
            "_LATE = None\n"
            "def seed_me():\n"
            "    global _LATE\n"
            "    _LATE = np.random.default_rng(5)\n"),
        "cli.py": "from repro.services import rngmod\n",
    })
    lines = sorted(f.line for f in report.findings if f.code == "LPC303")
    assert len(lines) == 2           # the binding and the capture


def test_lpc303_silent_for_function_local_rng(tmp_path):
    codes, _ = _codes(tmp_path, {
        "services/localrng.py": (
            "import numpy as np\n"
            "def draw(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.random()\n"),
        "cli.py": "from repro.services import localrng\n",
    })
    assert all(code != "LPC303" for code, _path in codes)


# ---------------------------------------------------------------------------
# LPC304 — fork-unsafe resources
# ---------------------------------------------------------------------------
def test_lpc304_fires_on_module_lock_and_pool_capture(tmp_path):
    codes, report = _codes(tmp_path, {
        "services/resmod.py": (
            "import multiprocessing\n"
            "import threading\n"
            "_LOCK = threading.Lock()\n"
            "_POOL = None\n"
            "def start(n):\n"
            "    global _POOL\n"
            "    ctx = multiprocessing.get_context('fork')\n"
            "    _POOL = ctx.Pool(n)\n"),
        "cli.py": "from repro.services import resmod\n",
    })
    lines = sorted(f.line for f in report.findings if f.code == "LPC304")
    assert len(lines) == 2           # the Lock binding and the Pool capture


def test_lpc304_silent_for_domain_class_named_lock(tmp_path):
    codes, _ = _codes(tmp_path, {
        "services/doors.py": (
            "from repro.services.parts import Lock\n"
            "FRONT_DOOR = Lock()\n"),
        "services/parts.py": (
            "class Lock:\n"
            "    pass\n"),
        "cli.py": "from repro.services import doors\n",
    })
    assert all(code != "LPC304" for code, _path in codes)


# ---------------------------------------------------------------------------
# The historical sessions._session_seq bug (pre-PR-8 shape)
# ---------------------------------------------------------------------------
def test_session_seq_regression_fixture_is_flagged(tmp_path):
    """The exact module-global counter PR 8 removed must stay detectable.

    This is the pre-PR-8 ``services/sessions.py`` shape verbatim-in-
    miniature: a module-level ``itertools.count`` minting session ids and
    tokens.  Run N+1 in one process minted different tokens than run N
    (token *length* even fed RPC wire sizes), and forked shards diverged
    from the inline oracle.  LPC301 exists so this class can never return
    silently.
    """
    root = _tree(tmp_path, {
        "services/sessions.py": (
            "import itertools\n"
            "\n"
            "_session_seq = itertools.count(1)\n"
            "\n"
            "\n"
            "class SessionService:\n"
            "    def acquire(self, owner, rng):\n"
            "        token = f'tok-{next(_session_seq)}-"
            "{rng.integers(1, 1 << 30)}'\n"
            "        return next(_session_seq), owner, token\n"),
        "cli.py": "from repro.services import sessions\n",
    })
    report = run_checks([root], base=root)
    flagged = [f for f in report.findings if f.code == "LPC301"]
    assert {f.path for f in flagged} == {"repro/services/sessions.py"}
    assert {f.line for f in flagged} == {8, 9}
    assert any("_session_seq" in f.message for f in flagged)
