"""Tests for the Smart Projector host and client (full middleware path)."""

from __future__ import annotations

import pytest

from repro.experiments.workloads import presentation_workflow, projector_room
from repro.kernel.errors import ServiceError


def test_full_happy_path_presents(sim):
    room = projector_room(seed=11)
    outcomes = []
    presentation_workflow(room, on_done=outcomes.append)
    # slide content so something flows once projecting
    from repro.services.content import SlideShow

    SlideShow(room.sim, room.client.fb, dwell_s=3.0).start()
    room.sim.every(8.0, room.client.renew_sessions, start=8.0)
    room.sim.run(until=30.0)
    assert outcomes == [True]
    assert room.projector.lamp_on
    assert room.projector.frames_displayed >= 2
    assert room.smart.projection_sessions.holder == "laptop"


def test_second_user_cannot_hijack(sim):
    room = projector_room(seed=12)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    # A squatter calls stop with a fabricated token via raw RPC.
    from repro.services.base import RpcClient
    from repro.phys.devices import Device

    intruder = Device(room.sim, room.world, "intruder", (18, 12),
                      medium=room.medium)
    rpc = RpcClient(room.sim, intruder, room.smart.projection_item().proxy)
    results = []
    rpc.call("stop", {}, results.append, token="tok-1-12345")
    room.sim.run(until=15.0)
    assert results[0] is not None and results[0].ok is False
    assert room.smart.viewer is not None and room.smart.viewer.running


def test_acquire_busy_projector_fails(sim):
    room = projector_room(seed=13)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    from repro.services.base import RpcClient
    from repro.phys.devices import Device

    second = Device(room.sim, room.world, "second", (18, 12),
                    medium=room.medium)
    rpc = RpcClient(room.sim, second, room.smart.projection_item().proxy)
    results = []
    rpc.call("acquire", {"owner": "second"}, results.append)
    room.sim.run(until=15.0)
    assert results[0].ok is False
    assert "in use" in results[0].error


def test_release_then_reacquire(sim):
    room = projector_room(seed=14)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    done = []
    room.client.stop_projection(lambda ok, v: room.client.release_all(
        lambda ok2, v2: done.append(ok2)))
    room.sim.run(until=15.0)
    assert done == [True]
    assert room.smart.projection_sessions.available
    assert room.smart.control_sessions.available


def test_lease_expiry_recovers_forgotten_session(sim):
    room = projector_room(seed=15, session_lease_s=5.0)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    # The presenter walks away without releasing; no renewals happen.
    room.sim.run(until=30.0)
    assert room.smart.projection_sessions.available
    # Eviction also stopped the projection stream.
    assert room.smart.viewer is None


def test_no_lease_variant_stays_stuck(sim):
    room = projector_room(seed=16, use_session_leases=False)
    presentation_workflow(room)
    room.sim.run(until=60.0)
    assert room.smart.projection_sessions.holder == "laptop"


def test_status_methods(sim):
    room = projector_room(seed=17)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    from repro.services.base import RpcClient
    from repro.phys.devices import Device

    observer = Device(room.sim, room.world, "observer", (18, 12),
                      medium=room.medium)
    results = []
    rpc = RpcClient(room.sim, observer, room.smart.projection_item().proxy)
    rpc.call("status", {}, lambda r: results.append(r.value))
    room.sim.run(until=14.0)
    assert results[0]["holder"] == "laptop"
    assert results[0]["projecting"] is True
    assert results[0]["lamp_on"] is True


def test_services_registered_in_lookup(sim):
    room = projector_room(seed=18)
    room.sim.run(until=5.0)
    types = sorted(i.service_type for i in room.registry.items())
    assert types == ["projection", "projector-control"]


def test_client_steps_recorded(sim):
    room = projector_room(seed=19)
    presentation_workflow(room)
    room.sim.run(until=10.0)
    names = [name for _t, name in room.client.steps_performed]
    assert names[0] == "discover"
    assert "start_vnc_server" in names
    assert "start_projection" in names


def test_smart_projector_requires_connected_projector(sim, world, medium):
    from repro.phys.devices import AromaAdapter
    from repro.services.projector import SmartProjector

    adapter = AromaAdapter(sim, world, "bare-adapter", (5, 5), medium)
    with pytest.raises(ServiceError):
        SmartProjector(sim, adapter)


def test_start_requires_vnc_address(sim):
    room = projector_room(seed=20)
    results = []

    def after_acquire(ok, v):
        room.client._rpc("projection").call(
            "start", {"vnc_address": ""},
            room.client._unwrap(lambda ok2, v2: results.append((ok2, v2))),
            token=room.client.projection_token)

    def go():
        room.client.discover_services(
            lambda ok, v: room.client.acquire_projection(after_acquire))

    room.sim.schedule(2.0, go)
    room.sim.run(until=10.0)
    assert results and results[0][0] is False
