"""Tests for named random streams and the structured tracer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernel.random import RandomStreams
from repro.kernel.trace import TraceRecord, Tracer


# ---------------------------------------------------------------------------
# RandomStreams
# ---------------------------------------------------------------------------

def test_same_seed_same_stream():
    a = RandomStreams(1).stream("mac")
    b = RandomStreams(1).stream("mac")
    assert a.random() == b.random()


def test_different_names_independent():
    streams = RandomStreams(1)
    a = streams.stream("a").random(100)
    b = streams.stream("b").random(100)
    assert not np.allclose(a, b)


def test_stream_identity_is_cached():
    streams = RandomStreams(1)
    assert streams.stream("x") is streams.stream("x")


def test_creation_order_does_not_matter():
    s1 = RandomStreams(5)
    s1.stream("alpha")
    first = s1.stream("beta").random()

    s2 = RandomStreams(5)
    second = s2.stream("beta").random()  # created without alpha first
    assert first == second


def test_variance_isolation_draw_count():
    """Consuming more numbers from one stream must not shift another."""
    s1 = RandomStreams(9)
    s1.stream("noisy").random(1000)
    value_after_heavy_use = s1.stream("probe").random()

    s2 = RandomStreams(9)
    s2.stream("noisy").random(1)
    value_after_light_use = s2.stream("probe").random()
    assert value_after_heavy_use == value_after_light_use


def test_names_listing():
    streams = RandomStreams(0)
    streams.stream("b")
    streams.stream("a")
    assert streams.names() == ["a", "b"]
    assert "a" in streams and "zz" not in streams


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

def _record(time=0.0, category="mac.tx", source="nic", message="m", **data):
    return TraceRecord(time, category, source, message, data)


def test_tracer_stores_records():
    tracer = Tracer()
    tracer.emit(_record())
    assert len(tracer) == 1


def test_tracer_disabled_drops_records():
    tracer = Tracer(enabled=False)
    tracer.emit(_record())
    assert len(tracer) == 0


def test_category_prefix_matching():
    record = _record(category="mac.tx")
    assert record.matches("mac")
    assert record.matches("mac.tx")
    assert not record.matches("mac.t")
    assert not record.matches("session")


def test_select_by_prefix():
    tracer = Tracer()
    tracer.emit(_record(category="mac.tx"))
    tracer.emit(_record(category="mac.rx"))
    tracer.emit(_record(category="session.acquire"))
    assert len(tracer.select("mac")) == 2
    assert len(tracer.select("session")) == 1


def test_issues_helper():
    tracer = Tracer()
    tracer.emit(_record(category="issue.session"))
    tracer.emit(_record(category="mac.tx"))
    assert len(tracer.issues()) == 1


def test_subscription_delivers_matching_records():
    tracer = Tracer()
    got = []
    tracer.subscribe("issue", got.append)
    tracer.emit(_record(category="issue.vnc"))
    tracer.emit(_record(category="mac.tx"))
    assert len(got) == 1 and got[0].category == "issue.vnc"


def test_unsubscribe_stops_delivery():
    tracer = Tracer()
    got = []
    unsubscribe = tracer.subscribe("mac", got.append)
    tracer.emit(_record(category="mac.tx"))
    unsubscribe()
    tracer.emit(_record(category="mac.tx"))
    assert len(got) == 1


def test_capacity_bounds_storage_and_counts_drops():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.emit(_record(message=str(i)))
    assert len(tracer) == 2
    assert tracer.dropped == 3
    # Head of the run is preserved.
    assert [r.message for r in tracer.records] == ["0", "1"]


def test_clear_resets():
    tracer = Tracer(capacity=1)
    tracer.emit(_record())
    tracer.emit(_record())
    tracer.clear()
    assert len(tracer) == 0 and tracer.dropped == 0
