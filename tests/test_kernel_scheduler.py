"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.kernel.errors import ScheduleError, SimulationFinished
from repro.kernel.events import Priority
from repro.kernel.scheduler import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_and_run_single_event(sim):
    fired = []
    sim.schedule(5.0, fired.append, "a")
    executed = sim.run()
    assert executed == 1
    assert fired == ["a"]
    assert sim.now == 5.0


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(3.0, order.append, 3)
    sim.schedule(1.0, order.append, 1)
    sim.schedule(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order(sim):
    order = []
    for i in range(10):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_priority_breaks_ties(sim):
    order = []
    sim.schedule(1.0, order.append, "app", priority=Priority.APP)
    sim.schedule(1.0, order.append, "medium", priority=Priority.MEDIUM)
    sim.schedule(1.0, order.append, "protocol", priority=Priority.PROTOCOL)
    sim.run()
    assert order == ["medium", "protocol", "app"]


def test_negative_delay_rejected(sim):
    with pytest.raises(ScheduleError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ScheduleError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_advances_clock_to_horizon(sim):
    sim.schedule(1.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_excludes_later_events(sim):
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=3.0)
    assert fired == ["early"]
    sim.run()
    assert fired == ["early", "late"]


def test_cancel_event(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_cancel_is_idempotent(sim):
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.run() == 0


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def chain():
        fired.append("first")
        sim.schedule(1.0, fired.append, "second")

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_call_soon_runs_at_current_time(sim):
    times = []
    sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_max_events_limits_execution(sim):
    for i in range(10):
        sim.schedule(float(i + 1), lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending() == 6


def test_step_runs_exactly_one_event(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_stop_discards_pending_events(sim):
    sim.schedule(1.0, lambda: None)
    sim.stop()
    assert sim.stopped
    with pytest.raises(SimulationFinished):
        sim.run()
    with pytest.raises(SimulationFinished):
        sim.schedule(1.0, lambda: None)


def test_stop_during_run_halts(sim):
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]


def test_peek_returns_next_live_event_time(sim):
    a = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.peek() == 1.0
    a.cancel()
    assert sim.peek() == 2.0


def test_peek_empty_queue(sim):
    assert sim.peek() is None


def test_periodic_task_fires_repeatedly(sim):
    times = []
    sim.every(2.0, lambda: times.append(sim.now))
    sim.run(until=9.0)
    assert times == [2.0, 4.0, 6.0, 8.0]


def test_periodic_task_start_offset(sim):
    times = []
    sim.every(2.0, lambda: times.append(sim.now), start=0.5)
    sim.run(until=5.0)
    assert times == [0.5, 2.5, 4.5]


def test_periodic_task_cancel(sim):
    times = []
    task = sim.every(1.0, lambda: times.append(sim.now))
    sim.schedule(3.5, task.cancel)
    sim.run(until=10.0)
    assert times == [1.0, 2.0, 3.0]
    assert task.fires == 3


def test_periodic_task_rejects_bad_interval(sim):
    with pytest.raises(ScheduleError):
        sim.every(0.0, lambda: None)


def test_events_executed_counter(sim):
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_deterministic_given_same_seed():
    def run_one(seed):
        sim = Simulator(seed=seed)
        values = []
        rng = sim.rng("test")
        sim.every(1.0, lambda: values.append(float(rng.random())))
        sim.run(until=10.0)
        return values

    assert run_one(7) == run_one(7)
    assert run_one(7) != run_one(8)


def test_issue_recorded_even_when_tracing_disabled():
    sim = Simulator(seed=0, trace=False)
    sim.trace("mac.tx", "x", "not recorded")
    sim.issue("session", "x", "recorded")
    assert len(sim.tracer.records) == 1
    assert sim.tracer.records[0].category == "issue.session"


def test_context_registry_shared(sim):
    sim.context["medium"] = object()
    assert "medium" in sim.context
