"""Batch-queue bookkeeping: cancellation accounting and bounded storage.

The lazy-cancel design never removes an entry at ``cancel()`` time — it
bumps a generation and leaves the row in place — so an unbounded
cancel/reschedule workload (retry timers, lease renewals torn down on
every renewal) would grow the struct-of-arrays forever without the
threshold compaction these tests pin down.
"""

from __future__ import annotations

from repro.kernel.batchq import COMPACT_MIN_QUEUE
from repro.kernel.scheduler import Simulator


def test_cancel_heavy_batch_storage_stays_bounded():
    sim = Simulator(seed=0, trace=False)
    queue = sim.batch_class("test.retry", lambda owner, _p: None,
                            cancellable=True)
    # 200 rounds of "arm 50 retry timers, then cancel them all" — the
    # pattern a renewal/retry subsystem produces continuously.  Without
    # threshold compaction this stores 10 000 dead rows.
    for round_no in range(200):
        handles = [queue.schedule(1000.0 + round_no + i * 1e-3)
                   for i in range(50)]
        for handle in handles:
            handle.cancel()
        # Compaction keeps the tracked population (live + dead rows)
        # bounded by the threshold floor plus one round's churn, no
        # matter how many rounds have passed.
        assert (queue._live + queue._dead
                <= max(COMPACT_MIN_QUEUE * 2, queue._live) + 50)
    assert queue.compactions > 0
    assert len(queue) == 0
    assert queue._dead <= COMPACT_MIN_QUEUE * 2


def test_mixed_cancel_survivors_still_fire_after_compaction():
    sim = Simulator(seed=0, trace=False)
    fired = []
    queue = sim.batch_class("test.mixed", lambda owner, _p: fired.append(owner),
                            cancellable=True)
    survivors = set()
    for i in range(1000):
        handle = queue.schedule(1.0 + i * 1e-4, owner=i)
        if i % 10 == 0:
            survivors.add(i)
        else:
            handle.cancel()
    assert queue.compactions > 0  # the 90% cancel rate forced compaction
    sim.run()
    assert sorted(fired) == sorted(survivors)


def test_cancelled_ratio_property_and_gauge():
    sim = Simulator(seed=0, trace=False)
    sim.metrics  # create the registry (and with it the gauge) up front
    queue = sim.batch_class("test.gauge", lambda owner, _p: None,
                            cancellable=True)
    handles = [queue.schedule(5.0, owner=i) for i in range(40)]
    assert sim.cancelled_ratio == 0.0
    for handle in handles[:10]:
        handle.cancel()
    # 10 dead of 40 stored — below the compaction threshold, so all rows
    # are still in place and the ratio sees them.
    assert abs(sim.cancelled_ratio - 0.25) < 1e-9
    gauges = sim.metrics.snapshot()["gauges"]
    assert abs(gauges["kernel.cancelled_ratio"]["value"] - 0.25) < 1e-9
    sim.run()
    assert sim.cancelled_ratio == 0.0


def test_kernel_probe_reports_per_class_stats():
    sim = Simulator(seed=0, trace=False)
    sim.metrics
    queue = sim.batch_class("test.stats", lambda owner, _p: None,
                            cancellable=True)
    handles = [queue.schedule(1.0) for _ in range(8)]
    handles[0].cancel()
    sim.run()
    probe = sim.metrics.snapshot()["probes"]["kernel"]
    stats = probe["batch"]["test.stats"]
    assert stats["scheduled"] == 8
    assert stats["cancelled"] == 1
    assert stats["executed"] == 7
    assert stats["pending"] == 0
    assert probe["cancelled_ratio"] == 0.0
