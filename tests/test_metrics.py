"""Tests for counters, gauges, time series, latency and statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernel.errors import ConfigurationError
from repro.metrics.counters import Counter, CounterSet, Gauge
from repro.metrics.recorder import LatencyRecorder
from repro.metrics.series import TimeSeries, periodic_sampler
from repro.metrics.stats import (
    confidence_halfwidth,
    jains_fairness,
    ratio,
    summarize,
)


# ---------------------------------------------------------------------------
# Counter / Gauge
# ---------------------------------------------------------------------------

def test_counter_add_and_rate():
    counter = Counter("frames")
    counter.add()
    counter.add(4)
    assert counter.value == 5
    assert counter.rate(10.0) == 0.5
    assert counter.rate(0.0) == 0.0


def test_counter_rejects_negative():
    with pytest.raises(ConfigurationError):
        Counter("x").add(-1)


def test_counter_set_creates_on_demand():
    counters = CounterSet()
    counters["tx"].add(2)
    counters["rx"].add(1)
    assert counters.snapshot() == {"rx": 1.0, "tx": 2.0}


def test_gauge_time_average(sim):
    gauge = Gauge(sim, "queue")
    sim.schedule(2.0, gauge.set, 10.0)
    sim.schedule(6.0, gauge.set, 0.0)
    sim.run(until=10.0)
    # 0 for 2 s, 10 for 4 s, 0 for 4 s -> 40/10 = 4
    assert gauge.time_average() == pytest.approx(4.0)
    assert gauge.peak == 10.0


def test_gauge_adjust(sim):
    gauge = Gauge(sim, "sessions")
    gauge.adjust(+1)
    gauge.adjust(+1)
    gauge.adjust(-1)
    assert gauge.value == 1


# ---------------------------------------------------------------------------
# TimeSeries
# ---------------------------------------------------------------------------

def test_series_records_and_grows(sim):
    series = TimeSeries(sim, "s", capacity=2)
    for i in range(10):
        series.record(float(i), time=float(i))
    assert len(series) == 10
    assert np.allclose(series.values, np.arange(10.0))
    assert np.allclose(series.times, np.arange(10.0))


def test_series_uses_sim_clock(sim):
    series = TimeSeries(sim, "s")
    sim.schedule(3.5, series.record, 1.0)
    sim.run()
    assert series.times[0] == 3.5


def test_series_window(sim):
    series = TimeSeries(sim, "s")
    for t in range(10):
        series.record(float(t), time=float(t))
    times, values = series.window(3.0, 7.0)
    assert list(times) == [3.0, 4.0, 5.0, 6.0]


def test_series_mean_and_rate(sim):
    series = TimeSeries(sim, "s")
    assert series.mean() == 0.0
    for t in (0.0, 1.0, 2.0):
        series.record(6.0, time=t)
    assert series.mean() == 6.0
    sim.schedule(2.0, lambda: None)
    sim.run()
    # Samples at t=0,1,2 all fall in the trailing 2 s window ending at t=2.
    assert series.rate_per_second(2.0) == pytest.approx(1.5)


def test_periodic_sampler(sim):
    series = TimeSeries(sim, "depth")
    state = {"v": 0}
    periodic_sampler(sim, series, 1.0, lambda: state["v"])
    sim.schedule(2.5, lambda: state.update(v=7))
    sim.run(until=5.0)
    assert len(series) == 5
    assert series.values[-1] == 7.0


# ---------------------------------------------------------------------------
# LatencyRecorder
# ---------------------------------------------------------------------------

def test_latency_pairing(sim):
    recorder = LatencyRecorder(sim, "rpc")
    recorder.start("a")
    sim.schedule(1.5, recorder.stop, "a")
    sim.run()
    assert recorder.samples == [1.5]
    assert recorder.summary().mean == pytest.approx(1.5)


def test_latency_unmatched_stop(sim):
    recorder = LatencyRecorder(sim, "rpc")
    assert recorder.stop("ghost") is None
    assert recorder.unmatched_stops == 1


def test_latency_restart_abandons(sim):
    recorder = LatencyRecorder(sim, "rpc")
    recorder.start("a")
    recorder.start("a")
    assert recorder.abandoned == 1
    assert recorder.pending() == 1


def test_latency_cancel(sim):
    recorder = LatencyRecorder(sim, "rpc")
    recorder.start("a")
    recorder.cancel("a")
    assert recorder.pending() == 0
    assert recorder.abandoned == 1


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

def test_summarize_basic():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.n == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.minimum == 1.0 and summary.maximum == 4.0
    assert summary.p50 == pytest.approx(2.5)


def test_summarize_empty_and_single():
    assert summarize([]).n == 0
    single = summarize([7.0])
    assert single.std == 0.0 and single.mean == 7.0


def test_summary_str():
    assert "mean=" in str(summarize([1.0, 2.0]))


def test_confidence_halfwidth():
    assert confidence_halfwidth([5.0]) == 0.0
    hw = confidence_halfwidth([1.0, 2.0, 3.0, 4.0, 5.0])
    assert hw > 0.0


def test_ratio_safe():
    assert ratio(4.0, 2.0) == 2.0
    assert ratio(4.0, 0.0) == 0.0


def test_jains_fairness_properties():
    assert jains_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    skewed = jains_fairness([10.0, 0.0, 0.0])
    assert skewed == pytest.approx(1 / 3)
    assert jains_fairness([0.0, 0.0]) == 1.0
    with pytest.raises(ConfigurationError):
        jains_fairness([])
