"""Tests for the VNC-like remote framebuffer protocol."""

from __future__ import annotations

import pytest

from repro.env.radio import RATE_BY_NAME
from repro.phys.devices import AromaAdapter, DigitalProjector, Laptop
from repro.services.content import Animation, SlideShow
from repro.services.framebuffer import Framebuffer
from repro.services.vnc import VNCServer, VNCViewer


@pytest.fixture
def rig(sim, world, medium):
    laptop = Laptop(sim, world, "laptop", (10, 10), medium)
    adapter = AromaAdapter(sim, world, "adapter", (20, 10), medium)
    projector = DigitalProjector(sim, world, "beamer", (21, 10))
    adapter.connect_projector(projector)
    projector.power(True)
    fb = Framebuffer(512, 384)
    server = VNCServer(sim, laptop, fb)
    viewer = VNCViewer(sim, adapter, "laptop", adapter.drive_display,
                       target_fps=10.0, stall_timeout=1.0)
    return laptop, adapter, projector, fb, server, viewer


def test_update_flows_to_projector(sim, rig):
    _laptop, _adapter, projector, fb, server, viewer = rig
    server.start()
    fb.touch_all()
    viewer.start()
    sim.run(until=3.0)
    assert viewer.updates_received >= 1
    assert projector.frames_displayed >= 1
    assert viewer.bytes_received > 0


def test_no_dirty_content_small_replies(sim, rig):
    _l, _a, projector, _fb, server, viewer = rig
    server.start()
    viewer.start()
    sim.run(until=3.0)
    # Polls happen but carry no pixels; nothing is displayed.
    assert viewer.updates_received >= 10
    assert projector.frames_displayed == 0


def test_incremental_updates_only_send_changes(sim, rig):
    _l, _a, _p, fb, server, viewer = rig
    server.start()
    fb.touch_all()
    viewer.start()
    sim.run(until=2.0)
    bytes_after_full = viewer.bytes_received
    fb.touch_rect(0, 0, 32, 32)  # one tile
    sim.run(until=4.0)
    incremental = viewer.bytes_received - bytes_after_full
    assert 0 < incremental < bytes_after_full / 4


def test_viewer_stalls_when_server_not_started(sim, rig):
    _l, _a, _p, _fb, server, viewer = rig
    viewer.start()  # classic mistake: nobody started the server
    sim.run(until=10.0)
    assert viewer.stalls >= 1
    assert viewer.updates_received == 0
    issues = sim.tracer.select("issue.vnc")
    assert issues


def test_viewer_recovers_when_server_starts_late(sim, rig):
    _l, _a, projector, fb, server, viewer = rig
    fb.touch_all()
    viewer.start()
    sim.schedule(3.0, server.start)
    sim.run(until=15.0)
    assert viewer.updates_received >= 1
    assert projector.frames_displayed >= 1


def test_server_stop_closes_endpoint(sim, rig):
    _l, _a, _p, _fb, server, viewer = rig
    server.start()
    server.stop()
    assert not server.running
    server.stop()  # idempotent
    viewer.start()
    sim.run(until=3.0)
    assert viewer.updates_received == 0


def test_viewer_stop_halts_polling(sim, rig):
    _l, _a, _p, fb, server, viewer = rig
    server.start()
    viewer.start()
    sim.run(until=2.0)
    viewer.stop()
    count = server.requests_served
    sim.run(until=6.0)
    assert server.requests_served <= count + 1  # at most one in-flight


def test_polling_rate_capped_by_target_fps(sim, rig):
    _l, _a, _p, _fb, server, viewer = rig
    server.start()
    viewer.start()
    sim.run(until=5.0)
    # 10 fps cap over 5 s: about 50 polls, certainly under 60.
    assert viewer.updates_received <= 60


def test_latency_recorded(sim, rig):
    _l, _a, _p, fb, server, viewer = rig
    server.start()
    fb.touch_all()
    viewer.start()
    sim.run(until=3.0)
    assert len(viewer.latency) >= 1
    assert viewer.latency.summary().mean > 0.0


def test_goodput_and_fps_accessors(sim, rig):
    _l, _a, _p, fb, server, viewer = rig
    server.start()
    SlideShow(sim, fb, dwell_s=1.0).start()
    viewer.start()
    sim.run(until=10.0)
    assert viewer.goodput_bps(10.0) > 0
    assert viewer.achieved_fps(10.0) > 0
    with pytest.raises(Exception):
        viewer.achieved_fps(0.0)


def test_animation_outpaces_slow_link(sim, world):
    """At a pinned 1 Mb/s, animation content cannot be delivered at its
    offered rate — the paper's 'prevents rapid animation'."""
    from repro.phys.mac import WirelessMedium

    medium = WirelessMedium(sim, world)
    rate = RATE_BY_NAME["1Mbps"]
    laptop = Laptop(sim, world, "laptop", (10, 10), medium, fixed_rate=rate)
    adapter = AromaAdapter(sim, world, "adapter", (14, 10), medium,
                           fixed_rate=rate)
    projector = DigitalProjector(sim, world, "beamer", (15, 10))
    adapter.connect_projector(projector)
    projector.power(True)
    fb = Framebuffer()
    server = VNCServer(sim, laptop, fb)
    server.start()
    Animation(sim, fb, fps=15.0).start()
    viewer = VNCViewer(sim, adapter, "laptop", adapter.drive_display,
                       target_fps=15.0)
    viewer.start()
    sim.run(until=20.0)
    assert viewer.achieved_fps(20.0) < 2.0  # nowhere near 15


def test_viewer_parameter_validation(sim, rig):
    laptop, adapter, _p, fb, _server, _viewer = rig
    from repro.kernel.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        VNCViewer(sim, adapter, "laptop", lambda p: True, target_fps=0.0,
                  port=99)
