"""Conservative parallel DES: the sharded simulator and its boundary API.

The load-bearing claims, each pinned here:

* zero lookahead is rejected outright (conservative sync degenerates);
* boundary events below the lookahead are rejected at ``send`` time;
* simultaneous boundary events from different shards land in one
  ``(time, seq)`` cohort in deterministic source order, so the
  in-process and multi-process coordinators are byte-identical;
* a worker that dies mid-run surfaces as a clear ``ExperimentError``
  instead of a hang, and a worker exception ships its traceback;
* a disjoint-cells configuration is byte-identical to the
  single-process culled oracle — rows *and* merged telemetry.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.experiments.cellgrid import (cell_layout, cell_room_builders,
                                        cell_rooms, coupled_cell_builders,
                                        deliveries_by_room)
from repro.kernel.errors import (ConfigurationError, ExperimentError,
                                 ScheduleError, SimulationFinished)
from repro.kernel.scheduler import Simulator
from repro.kernel.shard import (ShardedSimulator, ShardPorts, ShardProgram,
                                merge_summaries)
from repro.telemetry.summary import telemetry_summary

fork_available = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not fork_available,
                                reason="no fork start method")


def quiet_builder(ctx):
    return ShardProgram(Simulator(seed=1, trace=False))


def summarized_builder(ctx):
    sim = Simulator(seed=1, trace=False)
    return ShardProgram(sim, summarize=lambda s: telemetry_summary(s))


# ---------------------------------------------------------------------------
# Configuration and lifecycle errors
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("lookahead", [0.0, -0.5])
def test_zero_or_negative_lookahead_rejected(lookahead):
    with pytest.raises(ConfigurationError, match="positive lookahead"):
        ShardedSimulator([quiet_builder], lookahead=lookahead)


def test_empty_builder_list_rejected():
    with pytest.raises(ConfigurationError):
        ShardedSimulator([], lookahead=0.1)


def test_run_needs_a_positive_horizon():
    engine = ShardedSimulator([quiet_builder], lookahead=0.1,
                              processes=False)
    with pytest.raises(ConfigurationError):
        engine.run()
    with pytest.raises(ConfigurationError):
        engine.run(until=0.0)


def test_run_is_one_shot_and_schedule_is_prerun_only():
    engine = ShardedSimulator([summarized_builder], lookahead=0.1,
                              processes=False)
    engine.run(until=1.0)
    with pytest.raises(SimulationFinished):
        engine.run(until=2.0)
    with pytest.raises(SimulationFinished):
        engine.schedule(0.1, lambda: None)


def test_prerun_schedule_validates_delay_and_shard():
    engine = ShardedSimulator([quiet_builder], lookahead=0.1)
    with pytest.raises(ScheduleError):
        engine.schedule(-1.0, lambda: None)
    with pytest.raises(ConfigurationError):
        engine.schedule(0.1, lambda: None, shard=5)


def test_prerun_schedule_runs_on_the_chosen_shard():
    fired = []
    engine = ShardedSimulator([quiet_builder, quiet_builder],
                              lookahead=0.1, processes=False)
    engine.schedule(0.25, lambda: fired.append("a"), shard=1)
    engine.run(until=1.0)
    assert fired == ["a"]
    assert engine.now == 1.0
    assert engine.events_executed >= 1


# ---------------------------------------------------------------------------
# ShardPorts: the boundary-channel contract
# ---------------------------------------------------------------------------

def test_duplicate_or_anonymous_channel_rejected():
    ports = ShardPorts(0, 2, 0.1)
    ports.open("x", lambda src, p: None)
    with pytest.raises(ConfigurationError, match="already open"):
        ports.open("x", lambda src, p: None)
    with pytest.raises(ConfigurationError):
        ports.open("", lambda src, p: None)


def test_send_before_bind_rejected():
    ports = ShardPorts(0, 2, 0.1)
    with pytest.raises(ScheduleError, match="not bound"):
        ports.send("x", dst=1)


def _below_lookahead_builder(ctx):
    sim = Simulator(seed=1, trace=False)
    sim.schedule(0.1, lambda: ctx.ports.send("x", dst=1, delay=1e-4))
    return ShardProgram(sim)


def _mark_receiver_builder(ctx):
    sim = Simulator(seed=1, trace=False)
    ctx.ports.open("x", lambda src, p: None)
    return ShardProgram(sim)


def test_boundary_delay_below_lookahead_rejected():
    engine = ShardedSimulator(
        [_below_lookahead_builder, _mark_receiver_builder],
        lookahead=0.01, processes=False)
    with pytest.raises(ScheduleError, match="below the lookahead"):
        engine.run(until=1.0)


def _bad_dst_builder(ctx):
    sim = Simulator(seed=1, trace=False)
    sim.schedule(0.1, lambda: ctx.ports.send("x", dst=ctx.shard_id))
    return ShardProgram(sim)


def test_send_to_self_or_unknown_shard_rejected():
    engine = ShardedSimulator([_bad_dst_builder, _mark_receiver_builder],
                              lookahead=0.01, processes=False)
    with pytest.raises(ConfigurationError, match="invalid destination"):
        engine.run(until=1.0)


def _unopened_channel_builder(ctx):
    sim = Simulator(seed=1, trace=False)
    sim.schedule(0.1, lambda: ctx.ports.send("nobody-listens", dst=1))
    return ShardProgram(sim)


def test_send_on_channel_the_destination_never_opened():
    engine = ShardedSimulator(
        [_unopened_channel_builder, _mark_receiver_builder],
        lookahead=0.01, processes=False)
    with pytest.raises(ExperimentError, match="never opened"):
        engine.run(until=1.0)


# ---------------------------------------------------------------------------
# Simultaneous boundary events: one (time, seq) cohort, stable order
# ---------------------------------------------------------------------------

def _cohort_builders():
    """Shards 0 and 1 both fire at t=0.1 into shard 2's 'mark' channel."""

    def sender(ctx):
        sim = Simulator(seed=1, trace=False)
        sim.schedule(0.1, lambda: ctx.ports.send(
            "mark", dst=2, payload=f"s{ctx.shard_id}"))
        return ShardProgram(sim)

    def receiver(ctx):
        sim = Simulator(seed=1, trace=False)
        log = []
        ctx.ports.open("mark",
                       lambda src, p: log.append((sim.now, src, p)))
        return ShardProgram(sim, finalize=lambda _s: log)

    return [sender, sender, receiver]


def _run_cohort(processes):
    engine = ShardedSimulator(_cohort_builders(), lookahead=0.05,
                              processes=processes)
    engine.run(until=1.0)
    return engine


@needs_fork
def test_simultaneous_boundary_events_form_one_deterministic_cohort():
    inline = _run_cohort(processes=False)
    forked = _run_cohort(processes=True)
    assert forked.stats["mode"] == "processes"
    effect_time = 0.1 + 0.05  # send time + lookahead, same float both ways
    log = inline.results[2]
    # Both events share one effect time (one (time, seq) cohort in the
    # receiver's batch queue) and arrive in source-shard order.
    assert log == [(effect_time, 0, "s0"), (effect_time, 1, "s1")]
    assert forked.results == inline.results
    assert forked.stats["boundary_events"] == 2
    assert inline.stats["boundary_events"] == 2


def test_boundary_events_beyond_the_horizon_are_dropped():
    engine = ShardedSimulator(_cohort_builders(), lookahead=0.05,
                              processes=False)
    engine.run(until=0.12)  # sends fire at 0.1, land at 0.15 > horizon
    assert engine.results[2] == []
    assert engine.stats["dropped_beyond_horizon"] == 2


# ---------------------------------------------------------------------------
# Worker failure surfaces as errors, not hangs
# ---------------------------------------------------------------------------

def _dying_builder(ctx):
    sim = Simulator(seed=1, trace=False)
    sim.schedule(0.05, lambda: os._exit(3))
    return ShardProgram(sim)


@needs_fork
def test_worker_death_mid_run_raises_instead_of_hanging():
    engine = ShardedSimulator([quiet_builder, _dying_builder],
                              lookahead=0.5)
    with pytest.raises(ExperimentError, match="died mid-run"):
        engine.run(until=1.0)


def _raising_builder(ctx):
    sim = Simulator(seed=1, trace=False)

    def boom():
        raise RuntimeError("shard went sideways")

    sim.schedule(0.05, boom)
    return ShardProgram(sim)


@needs_fork
def test_worker_exception_ships_its_traceback():
    engine = ShardedSimulator([quiet_builder, _raising_builder],
                              lookahead=0.5)
    with pytest.raises(ExperimentError, match="shard went sideways"):
        engine.run(until=1.0)


# ---------------------------------------------------------------------------
# Disjoint cells: byte-identical to the single-process culled oracle
# ---------------------------------------------------------------------------

def _oracle(layout, horizon):
    rooms = cell_rooms(layout)
    rooms.sim.run(until=horizon)
    summary = telemetry_summary(rooms.sim, stream=rooms.aggregator)
    return rooms.deliveries, merge_summaries([summary])


@pytest.mark.parametrize("shards", [1, 2, 3])
def test_disjoint_cells_match_the_oracle_inline(shards):
    layout = cell_layout(cells=3, stations_per_cell=6, seed=11)
    horizon = 0.75
    rows, telemetry = _oracle(layout, horizon)
    engine = ShardedSimulator(cell_room_builders(layout, shards),
                              lookahead=0.01, processes=False)
    engine.run(until=horizon)
    merged = [entry for shard_rows in engine.results
              for entry in shard_rows]
    assert (deliveries_by_room(layout, merged)
            == deliveries_by_room(layout, rows))
    assert engine.telemetry() == telemetry


@needs_fork
def test_disjoint_cells_match_the_oracle_across_processes():
    layout = cell_layout(cells=3, stations_per_cell=6, seed=11)
    horizon = 0.75
    rows, telemetry = _oracle(layout, horizon)
    engine = ShardedSimulator(cell_room_builders(layout, 3),
                              lookahead=0.01)
    engine.run(until=horizon)
    assert engine.stats["mode"] == "processes"
    # Disjoint cells open no channels, so the coordinator freeruns to
    # the horizon in a single grant round.
    assert engine.stats["rounds"] == 1
    merged = [entry for shard_rows in engine.results
              for entry in shard_rows]
    assert (deliveries_by_room(layout, merged)
            == deliveries_by_room(layout, rows))
    assert engine.telemetry() == telemetry


@needs_fork
def test_coupled_cells_multiprocess_matches_inline():
    layout = cell_layout(cells=3, stations_per_cell=4, seed=5)
    runs = []
    for processes in (False, True):
        engine = ShardedSimulator(coupled_cell_builders(layout, 3),
                                  lookahead=5e-3, processes=processes)
        engine.run(until=0.6)
        runs.append(engine)
    inline, forked = runs
    assert forked.stats["mode"] == "processes"
    assert forked.stats["boundary_events"] > 0
    assert forked.results == inline.results
    assert forked.telemetry() == inline.telemetry()
    assert forked.stats["boundary_events"] == inline.stats["boundary_events"]


# ---------------------------------------------------------------------------
# merge_summaries: the cross-shard telemetry reduction
# ---------------------------------------------------------------------------

def _summary(events, counters, issues=None):
    return {"sim_time": 1.0, "events_executed": events, "records": 0,
            "records_dropped": 0, "spans": 0, "spans_open": 0,
            "issues_by_layer": issues or {}, "issues_by_column": {},
            "metrics": {"counters": counters}}


def test_merge_summaries_sums_and_drops_how_not_what_counters():
    merged = merge_summaries([
        _summary(10, {"mac.tx": 4.0, "medium.culling.skipped": 100.0},
                 issues={"phys": 1}),
        _summary(5, {"mac.tx": 2.0, "mac.rx": 1.0},
                 issues={"phys": 2, "net": 1}),
    ])
    assert merged["events_executed"] == 15
    assert merged["metrics"]["counters"] == {"mac.rx": 1.0, "mac.tx": 6.0}
    assert merged["issues_by_layer"] == {"net": 1, "phys": 3}


def test_merge_summaries_rejects_nothing():
    with pytest.raises(ConfigurationError):
        merge_summaries([])


def test_telemetry_requires_a_summarize_callback():
    engine = ShardedSimulator([quiet_builder], lookahead=0.1,
                              processes=False)
    engine.run(until=0.5)
    with pytest.raises(ConfigurationError, match="summarize"):
        engine.telemetry()
