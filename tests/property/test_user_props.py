"""Property-based invariants for the user column."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.scheduler import Simulator
from repro.resource.faculties import FacultyProfile
from repro.user.behavior import Procedure, Step, UserAgent
from repro.user.goals import DesignPurpose, Goal, adoption_probability, harmony

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

faculty_profiles = st.builds(
    FacultyProfile, name=st.just("u"), languages=st.just(("en",)),
    gui_literacy=unit, technical_skill=unit, domain_knowledge=unit,
    frustration_tolerance=unit, learning_rate=unit)


@given(faculty_profiles,
       st.integers(min_value=1, max_value=10),
       st.integers(min_value=0, max_value=2**31 - 1),
       unit)
@settings(max_examples=30, deadline=None)
def test_attempt_outcome_invariants(faculties, steps, seed, intuitiveness):
    """Every attempt terminates with a consistent outcome record:
    completed XOR abandoned, non-negative timings, skipped steps only
    from the optional set."""
    sim = Simulator(seed=seed, trace=False)
    agent = UserAgent(sim, "u", faculties, intuitiveness=intuitiveness)
    optional = {f"s{i}" for i in range(steps) if i % 3 == 0}
    procedure = Procedure("p", [
        Step(f"s{i}", lambda: None, think_time=0.2,
             optional_feeling=(f"s{i}" in optional))
        for i in range(steps)])
    results = []
    agent.attempt(procedure, results.append)
    sim.run(until=100_000.0)
    assert len(results) == 1
    outcome = results[0]
    assert outcome.completed != outcome.abandoned or not outcome.completed
    assert not (outcome.completed and outcome.abandoned)
    assert outcome.elapsed >= 0.0
    assert outcome.fumbles >= 0
    assert set(outcome.skipped_steps) <= optional
    assert outcome.frustration >= 0.0


goals = st.builds(
    Goal, name=st.just("g"),
    requires=st.sets(st.sampled_from(["a", "b", "c", "d"]),
                     min_size=1).map(tuple),
    acceptable_burden=st.integers(min_value=1, max_value=12),
    tolerates_administration=st.booleans(),
    importance=unit)

purposes = st.builds(
    DesignPurpose, name=st.just("p"),
    provides=st.sets(st.sampled_from(["a", "b", "c", "d"]),
                     min_size=0).map(tuple),
    demanded_burden=st.integers(min_value=1, max_value=12),
    assumes_administration=st.booleans(),
    intended_users=st.just("anyone"))


@given(purposes, goals, faculty_profiles)
@settings(max_examples=60, deadline=None)
def test_harmony_score_bounds_and_coverage_cap(purpose, goal, user):
    report = harmony(purpose, goal, user)
    assert 0.0 <= report.coverage <= 1.0
    assert 0.0 <= report.burden_fit <= 1.0
    assert report.administration_fit in (0.0, 1.0)
    assert 0.0 <= report.score <= 1.0
    # Harmony never exceeds capability coverage.
    assert report.score <= report.coverage + 1e-12
    # in_harmony demands full coverage.
    if report.in_harmony:
        assert report.coverage == 1.0
    adoption = adoption_probability(report, user)
    assert 0.0 <= adoption <= 1.0


@given(purposes, goals)
@settings(max_examples=40, deadline=None)
def test_full_provision_and_light_burden_is_harmonious(purpose, goal):
    """A design that provides everything, demands one step, and assumes
    nothing is in harmony with any goal."""
    generous = DesignPurpose("p", provides=("a", "b", "c", "d"),
                             demanded_burden=1,
                             assumes_administration=False,
                             intended_users="anyone")
    report = harmony(generous, goal)
    assert report.in_harmony
