"""Property-based conservation invariants for the MAC and medium."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.world import World
from repro.kernel.scheduler import Simulator
from repro.net.frames import Frame
from repro.phys.mac import CsmaMac, WirelessMedium

topologies = st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=80.0),
              st.floats(min_value=0.0, max_value=40.0)),
    min_size=2, max_size=5, unique=True)

traffic = st.lists(st.tuples(st.integers(min_value=0, max_value=4),
                             st.integers(min_value=0, max_value=4),
                             st.integers(min_value=1, max_value=1400)),
                   min_size=1, max_size=25)


@given(topologies, traffic, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_mac_conservation_invariants(positions, sends, seed):
    """For any topology and traffic pattern:

    * successes + retry drops + still-queued/in-flight == accepted frames;
    * total receiver deliveries never exceed attempted transmissions;
    * busy time is non-negative and bounded by elapsed time x stations.
    """
    sim = Simulator(seed=seed, trace=False)
    world = World(100, 50)
    medium = WirelessMedium(sim, world)
    stations = []
    for i, xy in enumerate(positions):
        world.place(f"s{i}", xy)
        stations.append(CsmaMac(sim, medium, f"s{i}", queue_limit=256))
    accepted = 0
    for src_i, dst_i, size in sends:
        src = stations[src_i % len(stations)]
        dst = stations[dst_i % len(stations)]
        if src is dst:
            continue
        if src.send(Frame(src.address, dst.address, None, size)):
            accepted += 1
    horizon = 30.0
    sim.run(until=horizon)

    successes = sum(s.stats["tx_success"] for s in stations)
    drops = sum(s.stats["tx_retry_drops"] for s in stations)
    leftover = sum(s.queue_depth() for s in stations) + \
        sum(1 for s in stations if s._in_flight is not None)
    assert successes + drops + leftover == accepted

    rx_total = sum(s.stats["rx_frames"] for s in stations)
    assert rx_total <= medium.total_transmissions
    assert medium.total_deliveries >= successes

    for s in stations:
        assert 0.0 <= s.stats["busy_time"] <= horizon + 1.0


@given(st.integers(min_value=0, max_value=2**31 - 1),
       st.integers(min_value=1, max_value=20))
@settings(max_examples=20, deadline=None)
def test_broadcast_never_retries(seed, count):
    sim = Simulator(seed=seed, trace=False)
    world = World(50, 50)
    medium = WirelessMedium(sim, world)
    world.place("a", (10, 10))
    world.place("b", (12, 10))
    a = CsmaMac(sim, medium, "a", queue_limit=64)
    CsmaMac(sim, medium, "b")
    from repro.net.addresses import BROADCAST

    accepted = sum(
        1 for _ in range(count)
        if a.send(Frame("a", BROADCAST, None, 100, kind="mgmt")))
    sim.run(until=20.0)
    # Every accepted broadcast counts as one success, none are retried.
    assert a.stats["tx_success"] == accepted
    assert a.stats["tx_retry_drops"] == 0
