"""Property tests for the batched event engine.

Random schedule/cancel programs are replayed on a ``batching=True``
simulator and on the ``batching=False`` oracle (plain heap events); the
observable firing log — ``(time, owner)`` in execution order — must be
identical, and cancellation must remove exactly the cancelled entries.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.scheduler import Simulator

delay = st.floats(min_value=0.0, max_value=50.0,
                  allow_nan=False, allow_infinity=False)

#: A program is a list of operations applied in order before running:
#: ("batch", delay, owner), ("heap", delay), ("cancel", index) — cancel
#: targets the index-th batch entry scheduled so far (modulo count).
ops = st.lists(
    st.one_of(
        st.tuples(st.just("batch"), delay,
                  st.integers(min_value=0, max_value=7)),
        st.tuples(st.just("heap"), delay),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=30)),
    ),
    min_size=1, max_size=40)


def _replay(program, batching: bool):
    sim = Simulator(seed=0, batching=batching)
    log = []
    queue = sim.batch_class("prop.timer",
                            lambda owner, _p: log.append((sim.now, owner)),
                            cancellable=True)
    handles = []
    for op in program:
        if op[0] == "batch":
            handles.append(queue.schedule(op[1], owner=op[2]))
        elif op[0] == "heap":
            sim.schedule(op[1], lambda: log.append((sim.now, -1)))
        elif handles:
            handle = handles[op[1] % len(handles)]
            if handle is not None:
                handle.cancel()
    sim.run()
    return log


@given(ops)
@settings(max_examples=80, deadline=None)
def test_batched_firing_log_matches_heap_oracle(program):
    assert _replay(program, batching=True) == _replay(program, batching=False)


@given(st.lists(delay, min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_schedule_many_fires_in_nondecreasing_time_order(delays):
    sim = Simulator(seed=0, batching=True)
    fired = []
    queue = sim.batch_class("prop.many",
                            lambda owner, _p: fired.append((sim.now, owner)),
                            cancellable=False)
    queue.schedule_many(delays, owners=list(range(len(delays))))
    sim.run()
    assert len(fired) == len(delays)
    times = [t for t, _ in fired]
    assert times == sorted(times)
    # Equal-deadline entries fire in scheduling (sequence) order.
    for (t_a, owner_a), (t_b, owner_b) in zip(fired, fired[1:]):
        if t_a == t_b:
            assert owner_a < owner_b


@given(st.lists(delay, min_size=1, max_size=40),
       st.sets(st.integers(min_value=0, max_value=39)))
@settings(max_examples=60, deadline=None)
def test_cancellation_removes_exactly_the_cancelled(delays, cancel):
    sim = Simulator(seed=0, batching=True)
    fired = []
    queue = sim.batch_class("prop.cancel",
                            lambda owner, _p: fired.append(owner),
                            cancellable=True)
    handles = [queue.schedule(d, owner=i) for i, d in enumerate(delays)]
    cancelled = {i for i in cancel if i < len(handles)}
    for i in cancelled:
        handles[i].cancel()
        handles[i].cancel()  # double-cancel is a no-op
    sim.run()
    assert sorted(fired) == sorted(set(range(len(delays))) - cancelled)
    assert len(queue) == 0


@given(ops)
@settings(max_examples=40, deadline=None)
def test_rescheduling_from_callbacks_matches_oracle(program):
    """Callbacks that schedule more work mid-run keep the two engines in
    lockstep (the two-source merge must re-examine heads every cohort)."""

    def _run(batching):
        sim = Simulator(seed=0, batching=batching)
        log = []
        queue = [None]

        def fire(owner, _p):
            log.append((sim.now, owner))
            if owner % 3 == 0 and len(log) < 200:
                queue[0].schedule(0.25 * (owner + 1), owner=owner + 1)

        queue[0] = sim.batch_class("prop.chain", fire, cancellable=False)
        for op in program:
            if op[0] == "batch":
                queue[0].schedule(op[1], owner=op[2] * 3)
            elif op[0] == "heap":
                sim.schedule(op[1], lambda: log.append((sim.now, -1)))
        sim.run(until=200.0)
        return log

    assert _run(True) == _run(False)
