"""Property-based tests for radio physics and the spectrum model."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.radio import (
    NOISE_FLOOR_DBM,
    RATES,
    PropagationModel,
    best_rate,
    dbm_to_mw,
    mw_to_dbm,
    sinr_db,
)
from repro.env.spectrum import CHANNELS, overlap_factor, overlap_matrix

channels = st.integers(min_value=CHANNELS.start, max_value=CHANNELS.stop - 1)
power = st.floats(min_value=-100.0, max_value=30.0, allow_nan=False)
distance = st.floats(min_value=0.1, max_value=5000.0, allow_nan=False)


@given(power)
@settings(max_examples=50, deadline=None)
def test_dbm_mw_roundtrip_everywhere(dbm):
    assert float(mw_to_dbm(dbm_to_mw(dbm))) == pytest_approx(dbm)


def pytest_approx(x, tolerance=1e-9):
    class _Approx:
        def __eq__(self, other):
            return abs(other - x) <= tolerance * max(1.0, abs(x))
    return _Approx()


@given(distance, distance)
@settings(max_examples=60, deadline=None)
def test_path_loss_monotone(d1, d2):
    model = PropagationModel(shadowing_sigma_db=0.0)
    l1 = float(model.path_loss_db(np.asarray(d1)))
    l2 = float(model.path_loss_db(np.asarray(d2)))
    if d1 < d2:
        assert l1 <= l2
    elif d1 > d2:
        assert l1 >= l2


@given(channels, channels)
@settings(max_examples=60, deadline=None)
def test_overlap_symmetric_bounded(a, b):
    f = overlap_factor(a, b)
    assert 0.0 <= f <= 1.0
    assert f == overlap_factor(b, a)
    if a == b:
        assert f == 1.0
    if abs(a - b) >= 5:
        assert f == 0.0


@given(st.lists(channels, min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_overlap_matrix_consistent(channel_list)  :
    matrix = overlap_matrix(channel_list)
    assert matrix.shape == (len(channel_list), len(channel_list))
    assert np.allclose(matrix, matrix.T)
    assert np.allclose(np.diag(matrix), 1.0)


@given(st.floats(min_value=-20.0, max_value=50.0, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_fer_in_unit_interval_all_rates(sinr):
    for mode in RATES:
        fer = mode.fer(sinr, 1500)
        assert 0.0 <= fer <= 1.0


@given(st.floats(min_value=-20.0, max_value=50.0),
       st.integers(min_value=1, max_value=1500))
@settings(max_examples=60, deadline=None)
def test_best_rate_meets_target_or_is_base(sinr, size):
    mode = best_rate(sinr, size, fer_target=0.1)
    if mode is not RATES[0]:
        assert mode.fer(sinr, size) <= 0.1


@given(power, st.lists(power, max_size=6))
@settings(max_examples=60, deadline=None)
def test_sinr_bounded_by_snr(signal, interferers):
    with_interference = sinr_db(signal, interferers)
    without = sinr_db(signal, [])
    assert with_interference <= without + 1e-9
    assert without == pytest_approx(signal - NOISE_FLOOR_DBM, 1e-9)


@given(st.floats(min_value=1.5, max_value=5.0),
       st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=30, deadline=None)
def test_range_ordering_holds_for_any_environment(exponent, sigma):
    model = PropagationModel(exponent=exponent, shadowing_sigma_db=sigma)
    ranges = [model.range_for_rate(mode) for mode in RATES]
    assert ranges == sorted(ranges, reverse=True)


@given(st.floats(min_value=0.1, max_value=2000.0),
       st.floats(min_value=-10.0, max_value=30.0))
@settings(max_examples=60, deadline=None)
def test_scalar_rx_power_matches_vector_path(distance, power):
    """The scalar fast path must agree with the vectorised formula."""
    model = PropagationModel(shadowing_sigma_db=0.0)
    scalar = model.received_power_dbm(power, distance)
    vector = float(model.received_power_vector(
        np.asarray([power]), np.asarray([distance]))[0])
    assert abs(scalar - vector) < 1e-9
