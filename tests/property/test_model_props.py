"""Property-based tests for LPC model invariants: classification totality,
lease safety, session exclusivity, matching bounds."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.concerns import TOPIC_LAYERS, ConcernClassifier
from repro.core.layers import Layer
from repro.discovery.leases import LeaseTable
from repro.kernel.errors import SessionError
from repro.kernel.scheduler import Simulator
from repro.resource.faculties import FacultyProfile
from repro.resource.matching import match
from repro.resource.platform import (
    ExecutionSpec,
    MemorySpec,
    NetSpec,
    PlatformProfile,
    StorageSpec,
    UISpec,
)
from repro.user.mental import completion_probability, step_success_probability

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(st.sampled_from(sorted(TOPIC_LAYERS)), st.text(max_size=60))
@settings(max_examples=60, deadline=None)
def test_known_topics_always_classify(topic, text):
    classifier = ConcernClassifier()
    layer = classifier.classify(topic, text)
    assert isinstance(layer, Layer)
    assert layer == TOPIC_LAYERS[topic]  # topic wins over any text


faculty_profiles = st.builds(
    FacultyProfile,
    name=st.just("u"),
    languages=st.just(("en",)),
    gui_literacy=unit, technical_skill=unit, domain_knowledge=unit,
    frustration_tolerance=unit, learning_rate=unit)


@given(faculty_profiles, st.integers(min_value=1, max_value=20), unit)
@settings(max_examples=60, deadline=None)
def test_burden_probabilities_are_probabilities(user, burden, intuitiveness):
    p_step = step_success_probability(burden, user, intuitiveness)
    p_done = completion_probability(burden, user, intuitiveness, retries=0)
    assert 0.0 <= p_step <= 1.0
    assert 0.0 <= p_done <= 1.0
    # Without retries, completing all steps is never easier than one step.
    assert p_done <= p_step + 1e-12


@given(faculty_profiles, st.integers(min_value=1, max_value=18))
@settings(max_examples=40, deadline=None)
def test_completion_monotone_decreasing_in_burden(user, burden):
    p_small = completion_probability(burden, user)
    p_large = completion_probability(burden + 1, user)
    assert p_large <= p_small + 1e-12


platforms = st.builds(
    PlatformProfile,
    name=st.just("p"),
    memory=st.builds(MemorySpec, ram_mb=st.floats(min_value=1, max_value=512)),
    storage=st.builds(StorageSpec,
                      capacity_mb=st.floats(min_value=1, max_value=10000),
                      flexible_organization=st.booleans(),
                      throughput_mbps=st.floats(min_value=0.1, max_value=100)),
    execution=st.builds(ExecutionSpec,
                        mips=st.floats(min_value=1, max_value=1000),
                        multitasking=st.booleans(),
                        abortable=st.booleans()),
    ui=st.builds(UISpec, kind=st.sampled_from(["gui", "text", "buttons",
                                               "voice"]),
                 languages=st.sampled_from([("en",), ("fr",), ("en", "fr")]),
                 consistent_metaphors=st.booleans(),
                 intuitiveness=unit),
    net=st.builds(NetSpec, technologies=st.just(("802.11b",)),
                  auto_configuring=st.booleans(),
                  requires_admin=st.booleans()))


@given(platforms, faculty_profiles)
@settings(max_examples=60, deadline=None)
def test_matching_score_bounded_and_consistent(platform, user):
    report = match(platform, user)
    assert 0.0 <= report.score <= 1.0
    # `usable` is exactly "no blocking frustration".
    assert report.usable == all(f.severity < 0.9 for f in report.frustrations)
    for frustration in report.frustrations:
        assert 0.0 < frustration.severity <= 1.0


@given(st.lists(st.tuples(st.floats(min_value=0.5, max_value=20.0),
                          st.booleans()),
                min_size=1, max_size=15))
@settings(max_examples=30, deadline=None)
def test_lease_table_never_holds_expired_leases_after_sweep(grants):
    sim = Simulator(seed=1)
    table = LeaseTable(sim, sweep_interval=0.25)
    for duration, cancel in grants:
        lease = table.grant("h", "r", duration)
        if cancel:
            table.cancel(lease.lease_id)
    sim.run(until=25.0)
    now = sim.now
    for lease in table.live():
        assert not lease.expired(now)
    # Everything granted either expired or was cancelled by t=25.
    assert len(table) == 0


@given(st.lists(st.sampled_from(["acquire", "release", "expire"]),
                min_size=1, max_size=30),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_session_exclusivity_invariant(operations, seed):
    """No interleaving of acquire/release/expiry ever yields two holders."""
    from repro.services.sessions import SessionManager

    sim = Simulator(seed=seed, trace=False)
    manager = SessionManager(sim, "resource", sweep_interval=0.5)
    tokens = {}
    holders = set()
    for op in operations:
        if op == "acquire":
            owner = f"user{len(tokens)}"
            try:
                session = manager.acquire(owner, 5.0)
                tokens[owner] = session.token
            except SessionError:
                pass
        elif op == "release" and tokens:
            owner, token = next(iter(tokens.items()))
            manager.release(token)
            del tokens[owner]
        else:  # let time pass; leases may expire
            sim.run(until=sim.now + 3.0)
        if manager.holder is not None:
            holders.add(manager.holder)
        # The invariant: at most one live holder at any time, and a valid
        # holder implies the manager is not simultaneously available.
        assert (manager.holder is None) == manager.available
