"""Property-based invariants for the lookup service."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery.records import ServiceItem, ServiceProxy, ServiceTemplate, new_service_id
from repro.discovery.registry import LookupService
from repro.env.world import World
from repro.kernel.errors import LeaseError
from repro.kernel.scheduler import Simulator
from repro.phys.devices import Device
from repro.phys.mac import WirelessMedium

operations = st.lists(
    st.tuples(st.sampled_from(["register", "cancel", "advance", "lookup"]),
              st.floats(min_value=1.0, max_value=30.0)),
    min_size=1, max_size=25)


def _registry(seed: int) -> LookupService:
    sim = Simulator(seed=seed, trace=False)
    world = World(50, 50)
    medium = WirelessMedium(sim, world)
    hub = Device(sim, world, "hub", (25, 25), medium=medium)
    return LookupService(sim, hub, "reg", sweep_interval=0.5)


def _item() -> ServiceItem:
    return ServiceItem(new_service_id(), "svc",
                       ServiceProxy("provider", 9, "p"))


@given(operations, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_registry_items_always_match_live_leases(ops, seed):
    """Whatever mixture of registrations, cancellations and clock
    advances: the item set and the live registration leases agree
    exactly, and lookups never return a stale item."""
    registry = _registry(seed)
    sim = registry.sim
    leases = []
    for op, value in ops:
        if op == "register":
            leases.append(registry.register(_item(), value))
        elif op == "cancel" and leases:
            lease = leases.pop(0)
            try:
                registry.cancel(lease.lease_id)
            except LeaseError:
                pass  # already expired and swept
        elif op == "advance":
            sim.run(until=sim.now + value)
        else:
            found = registry.lookup(ServiceTemplate())
            # Every returned item has a live lease backing it.
            for item in found:
                lease = registry._service_to_lease.get(item.service_id)
                assert lease is not None

        live_resources = {l.resource for l in registry.leases.live()}
        item_ids = {i.service_id for i in registry.items()}
        # After any sweep, items and live leases correspond 1:1 (between
        # expiry and sweep an item may briefly outlive its lease; force a
        # sweep to compare settled state).
        registry.leases.sweep()
        live_resources = {l.resource for l in registry.leases.live()}
        item_ids = {i.service_id for i in registry.items()}
        assert item_ids == live_resources


@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_event_sequences_strictly_increase(count, seed):
    registry = _registry(seed)
    sent = []
    registry.notify(ServiceTemplate(), "listener", 600.0)
    registry._event_tx.send = lambda dst, ev, n, **k: sent.append(ev)
    for _ in range(count):
        registry.register(_item(), 60.0)
    sequences = [ev.sequence for ev in sent]
    assert sequences == sorted(sequences)
    assert len(set(sequences)) == len(sequences)
