"""Property-based tests for the kernel: ordering, determinism, processes."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.random import RandomStreams
from repro.kernel.scheduler import Simulator

delays = st.lists(st.floats(min_value=0.0, max_value=1000.0,
                            allow_nan=False, allow_infinity=False),
                  min_size=1, max_size=50)


@given(delays)
@settings(max_examples=60, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(times):
    sim = Simulator(seed=0)
    fired = []
    for t in times:
        sim.schedule(t, lambda t=t: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(delays)
@settings(max_examples=30, deadline=None)
def test_clock_never_goes_backwards(times):
    sim = Simulator(seed=0)
    observed = []
    for t in times:
        sim.schedule(t, lambda: observed.append(sim.now))
    last = [0.0]

    while sim.step():
        assert sim.now >= last[0]
        last[0] = sim.now


@given(st.lists(st.integers(min_value=0, max_value=49), min_size=1,
                max_size=30), delays)
@settings(max_examples=40, deadline=None)
def test_cancellation_removes_exactly_the_cancelled(cancel_indices, times):
    sim = Simulator(seed=0)
    fired = []
    events = [sim.schedule(t, fired.append, i)
              for i, t in enumerate(times)]
    cancelled = set()
    for idx in cancel_indices:
        if idx < len(events):
            events[idx].cancel()
            cancelled.add(idx)
    sim.run()
    assert set(fired) == set(range(len(times))) - cancelled


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_named_streams_reproducible(seed):
    a = RandomStreams(seed)
    b = RandomStreams(seed)
    for name in ("mac.x", "user.y", "radio"):
        assert a.stream(name).random() == b.stream(name).random()


@given(st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126),
               min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_stream_any_name_works(name):
    streams = RandomStreams(7)
    value = streams.stream(name).random()
    assert 0.0 <= value < 1.0


@given(st.lists(st.floats(min_value=0.001, max_value=10.0), min_size=1,
                max_size=10))
@settings(max_examples=30, deadline=None)
def test_process_sleep_sums(delays_list):
    from repro.kernel.process import spawn

    sim = Simulator(seed=0)

    def proc():
        for d in delays_list:
            yield d
        return sim.now

    p = spawn(sim, proc())
    sim.run()
    assert p.result == sum(delays_list)
