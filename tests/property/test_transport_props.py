"""Property-based tests: exactly-once transport delivery and framebuffer
accounting invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.scheduler import Simulator
from repro.net.link import WiredLink
from repro.net.stack import NetworkStack
from repro.net.transport import ReliableEndpoint
from repro.services.framebuffer import Framebuffer

messages = st.lists(
    st.integers(min_value=0, max_value=20_000),  # message sizes
    min_size=1, max_size=8)
loss_rates = st.sampled_from([0.0, 0.1, 0.3, 0.5])


@given(messages, loss_rates, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_exactly_once_in_order_per_peer(sizes, loss, seed):
    """Whatever the sizes and loss rate, every message is delivered
    exactly once and in order (per-destination serialisation)."""
    sim = Simulator(seed=seed, trace=False)
    link = WiredLink(sim, "a", "b", loss=loss, queue_frames=512)
    sa, sb = NetworkStack(sim, link.port_a), NetworkStack(sim, link.port_b)
    inbox = []
    ReliableEndpoint(sim, sb, 5,
                     on_message=lambda src, obj, n: inbox.append(obj))
    tx = ReliableEndpoint(sim, sa, 5, max_retries=40)
    for i, size in enumerate(sizes):
        tx.send("b", i, size)
    sim.run(until=600.0)
    assert inbox == list(range(len(sizes)))


rects = st.tuples(
    st.integers(min_value=0, max_value=1023),
    st.integers(min_value=0, max_value=767),
    st.integers(min_value=1, max_value=512),
    st.integers(min_value=1, max_value=512),
    st.floats(min_value=0.01, max_value=1.0))


@given(st.lists(rects, min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_framebuffer_dirty_cost_matches_update_list(touches):
    fb = Framebuffer(1024, 768, tile=64)
    checkpoint = 0
    for x, y, w, h, ratio in touches:
        fb.touch_rect(x, y, w, h, ratio)
    tiles, cost, pixels = fb.dirty_cost(checkpoint)
    updates = fb.dirty_since(checkpoint)
    assert tiles == len(updates)
    assert cost == sum(u.payload_bytes for u in updates)
    assert pixels == sum(u.pixels for u in updates)
    # Full dirty set never exceeds the whole screen's pixels.
    assert pixels <= fb.total_pixels


@given(st.lists(rects, min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_framebuffer_versions_monotone_and_settle(touches):
    fb = Framebuffer(1024, 768, tile=64)
    previous = fb.version
    for x, y, w, h, ratio in touches:
        fb.touch_rect(x, y, w, h, ratio)
        assert fb.version > previous
        previous = fb.version
    # After syncing to the latest version nothing is dirty.
    assert fb.dirty_cost(fb.version) == (0, 0, 0)


wireless_distances = st.lists(st.floats(min_value=2.0, max_value=60.0),
                              min_size=1, max_size=4)


@given(wireless_distances, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_exactly_once_over_the_radio(distances, seed):
    """Reliable messaging holds over the simulated radio too: for any
    in-range receiver placement, every message arrives exactly once."""
    from repro.env.world import World
    from repro.phys.devices import Device
    from repro.phys.mac import WirelessMedium

    sim = Simulator(seed=seed, trace=False)
    world = World(100, 100)
    medium = WirelessMedium(sim, world)
    sender = Device(sim, world, "src", (50, 50), medium=medium)
    inboxes = {}
    for i, distance in enumerate(distances):
        receiver = Device(sim, world, f"rx{i}",
                          (50 + distance * (0.5 if i % 2 else -0.5),
                           50 + distance * 0.4), medium=medium)
        inbox = []
        inboxes[receiver.name] = inbox
        receiver.reliable(40, on_message=lambda s, o, n, box=inbox:
                          box.append(o))
    tx = sender.reliable(40, max_retries=30)
    for i, name in enumerate(inboxes):
        tx.send(name, f"msg-{i}", 2500)
    sim.run(until=120.0)
    for i, (name, inbox) in enumerate(inboxes.items()):
        assert inbox == [f"msg-{i}"]
