"""Property-based tests: generated clean ASTs produce no findings.

The strategy composes small modules out of constructs the determinism
rules explicitly bless — arithmetic, ordered iteration, ``sorted(set())``
folds, seeded RNG construction, immutable defaults — so any finding on a
generated module is a false positive by construction.  A second property
checks the linter is a pure function of the source text (same input,
same findings, any number of times).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks import check_source

names = st.sampled_from(["alpha", "beta", "gamma", "delta", "items"])
ints = st.integers(min_value=0, max_value=999)


@st.composite
def clean_statements(draw):
    name = draw(names)
    value = draw(ints)
    kind = draw(st.integers(min_value=0, max_value=7))
    if kind == 0:
        return f"{name} = {value}"
    if kind == 1:
        return f"{name} = [i * {value} for i in range({value % 7})]"
    if kind == 2:
        return (f"for {name} in sorted(set([{value}, {value + 1}])):\n"
                f"    total = {name}")
    if kind == 3:
        return (f"def fn_{name}_{value}(x, y={value}):\n"
                f"    return x + y")
    if kind == 4:
        return (f"{name} = sorted([{value}, 1, 2], key=str)")
    if kind == 5:
        return (f"import numpy as np\n"
                f"{name} = np.random.default_rng({value})")
    if kind == 6:
        return (f"{name} = {{'k{value}': {value}}}\n"
                f"for key in {name}:\n"
                f"    last = key")
    return (f"def gen_{name}_{value}(xs):\n"
            f"    return len(set(xs)) + max(set(xs + [{value}]))")


@given(st.lists(clean_statements(), min_size=1, max_size=8))
@settings(max_examples=120, deadline=None)
def test_clean_modules_produce_no_findings(statements):
    source = "\n".join(statements) + "\n"
    findings = check_source("generated.py", source)
    assert findings == [], (
        "false positive on a clean module:\n" + source + "\n" +
        "\n".join(f.format() for f in findings))


@given(st.lists(clean_statements(), min_size=1, max_size=5),
       st.booleans())
@settings(max_examples=60, deadline=None)
def test_checker_is_deterministic(statements, inject_violation):
    source = "\n".join(statements) + "\n"
    if inject_violation:
        source += "import time\nstamp = time.time()\n"
    first = check_source("generated.py", source)
    second = check_source("generated.py", source)
    assert first == second
    assert ("LPC101" in [f.code for f in first]) == inject_violation
