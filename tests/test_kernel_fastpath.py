"""Tests for the kernel fast path: ``schedule_bound``, the event pool,
lazy-cancellation bookkeeping and heap compaction."""

from __future__ import annotations

import pytest

from repro.kernel.events import Priority
from repro.kernel.scheduler import COMPACT_MIN_QUEUE, Simulator


@pytest.fixture
def sim():
    return Simulator(seed=0, trace=False)


# ---------------------------------------------------------------------------
# schedule_bound semantics
# ---------------------------------------------------------------------------

def test_schedule_bound_fires_in_time_order(sim):
    order = []
    sim.schedule_bound(3.0, order.append, (3,))
    sim.schedule_bound(1.0, order.append, (1,))
    sim.schedule_bound(2.0, order.append, (2,))
    sim.run()
    assert order == [1, 2, 3]


def test_schedule_bound_interleaves_with_public_schedule(sim):
    """Bound and public events share one queue, one clock and one total
    order (time, priority, seq)."""
    order = []
    sim.schedule(1.0, order.append, "public")
    sim.schedule_bound(1.0, order.append, ("bound",))
    sim.schedule_bound(0.5, order.append, ("early",))
    sim.run()
    assert order == ["early", "public", "bound"]


def test_schedule_bound_priority_breaks_ties(sim):
    order = []
    sim.schedule_bound(1.0, order.append, ("app",),
                       priority=int(Priority.APP))
    sim.schedule_bound(1.0, order.append, ("medium",),
                       priority=int(Priority.MEDIUM))
    sim.run()
    assert order == ["medium", "app"]


def test_schedule_bound_returns_no_handle(sim):
    """The fast path trades the cancel handle for pooling — it must never
    leak an Event the caller could hold on to."""
    assert sim.schedule_bound(1.0, lambda: None) is None


def test_schedule_bound_allocates_no_event_objects(sim):
    """The fast path pushes a bare tuple: no Event handle is built at all.

    Heap entries are ``(time, priority, seq, fn, args, ctx, handle)``;
    the bound path leaves ``handle`` as None — which is exactly why it
    cannot be cancelled, and why no allocation-recycling free list is
    needed anymore.
    """
    fired = []

    def tick():
        fired.append(sim.now)

    sim.schedule_bound(1.0, tick)
    entry = sim._queue[0]
    assert isinstance(entry, tuple) and len(entry) == 7
    assert entry[0] == 1.0 and entry[3] is tick and entry[6] is None
    sim.run()
    assert fired == [1.0]


def test_bound_chain_matches_public_chain(sim):
    """Same program through either path gives identical event timing."""

    def chain(sched):
        s = Simulator(seed=7, trace=False)
        times = []

        def tick():
            times.append(s.now)
            if len(times) < 50:
                getattr(s, sched)(0.25, tick)

        getattr(s, sched)(0.0, tick)
        s.run()
        return times

    assert chain("schedule_bound") == chain("schedule")


# ---------------------------------------------------------------------------
# Cancellation bookkeeping: O(1) pending(), compaction
# ---------------------------------------------------------------------------

def test_pending_excludes_cancelled(sim):
    handles = [sim.schedule(1.0 + i, lambda: None) for i in range(10)]
    assert sim.pending() == 10
    for handle in handles[:4]:
        handle.cancel()
    assert sim.pending() == 6


def test_cancel_idempotent_does_not_double_count(sim):
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    handle.cancel()
    handle.cancel()
    assert sim.pending() == 1


def test_peek_skips_cancelled_heads(sim):
    first = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0
    assert sim.pending() == 1


def test_mass_cancellation_of_10k_periodic_tasks(sim):
    """Regression: cancelling 10k periodic tasks must compact the heap
    and leave the loop with nothing to do — not 10k dead pops."""
    tasks = [sim.every(1.0, pytest.fail, "cancelled task fired")
             for _ in range(10_000)]
    assert sim.pending() == 10_000
    for task in tasks:
        task.cancel()

    assert sim.pending() == 0
    # Compaction fired (10k dead >> threshold) and physically shrank the
    # heap rather than leaving tombstones for run() to pop one by one.
    assert sim.compactions >= 1
    assert len(sim._queue) < 10_000

    executed = sim.run(until=5.0)
    assert executed == 0
    assert sim.now == 5.0


def test_compaction_threshold_not_triggered_by_few_cancels(sim):
    handles = [sim.schedule(1.0 + i, lambda: None)
               for i in range(COMPACT_MIN_QUEUE)]
    handles[0].cancel()
    assert sim.compactions == 0
    assert sim.pending() == COMPACT_MIN_QUEUE - 1


def test_compaction_mid_run_keeps_loop_attached(sim):
    """Regression for the detached-queue bug: a compaction triggered while
    run() is draining must mutate the live heap in place, so events
    scheduled afterwards still fire."""
    tasks = [sim.every(10.0, lambda: None, start=5.0) for _ in range(500)]
    fired = []

    def cancel_all_then_reschedule():
        for task in tasks:
            task.cancel()          # triggers compaction inside run()
        sim.schedule(1.0, fired.append, "after-compaction")

    sim.schedule(1.0, cancel_all_then_reschedule)
    sim.run(until=4.0)
    assert sim.compactions >= 1
    assert fired == ["after-compaction"]


def test_stop_resets_cancellation_counter(sim):
    handles = [sim.schedule(1.0, lambda: None) for _ in range(8)]
    handles[0].cancel()
    sim.stop()
    assert sim.pending() == 0
    # A late cancel on a discarded handle must not corrupt the counter.
    handles[1].cancel()
    assert sim.pending() == 0
