"""Summary statistics helpers used by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..kernel.errors import ConfigurationError


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
                f"min={self.minimum:.4g} p50={self.p50:.4g} "
                f"p95={self.p95:.4g} max={self.maximum:.4g}")


def summarize(samples: Sequence[float]) -> Summary:
    """Summary of ``samples``; empty input gives an all-zero summary."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        maximum=float(arr.max()),
    )


def confidence_halfwidth(samples: Sequence[float], z: float = 1.96) -> float:
    """Half-width of the normal-approximation CI for the mean."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size < 2:
        return 0.0
    return float(z * arr.std(ddof=1) / np.sqrt(arr.size))


def ratio(numerator: float, denominator: float) -> float:
    """Safe ratio: 0 when the denominator is 0."""
    return numerator / denominator if denominator else 0.0


def jains_fairness(shares: Sequence[float]) -> float:
    """Jain's fairness index over per-station shares, in (0, 1].

    Used by E2 to show that rising 2.4 GHz density doesn't just shrink the
    pie but also makes the slices uneven.
    """
    arr = np.asarray(list(shares), dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("fairness of an empty share vector")
    total = arr.sum()
    if total == 0:
        return 1.0
    return float(total ** 2 / (arr.size * np.square(arr).sum()))
