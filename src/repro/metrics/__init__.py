"""Measurement: counters, gauges, time series, latency, summary stats."""

from .counters import Counter, CounterSet, Gauge
from .recorder import LatencyRecorder
from .registry import MetricsRegistry
from .series import TimeSeries, periodic_sampler
from .stats import (
    Summary,
    confidence_halfwidth,
    jains_fairness,
    ratio,
    summarize,
)

__all__ = [
    "Counter",
    "CounterSet",
    "Gauge",
    "LatencyRecorder",
    "MetricsRegistry",
    "Summary",
    "TimeSeries",
    "confidence_halfwidth",
    "jains_fairness",
    "periodic_sampler",
    "ratio",
    "summarize",
]
