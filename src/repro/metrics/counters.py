"""Counters and gauges for simulation measurement."""

from __future__ import annotations

from typing import Dict

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator


class Counter:
    """A monotone event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError("counters only increase; use a Gauge")
        self.value += amount

    def rate(self, elapsed: float) -> float:
        """Events per second over ``elapsed`` (0 when no time passed)."""
        return self.value / elapsed if elapsed > 0 else 0.0


class Gauge:
    """A sampled level with time-weighted averaging.

    Every ``set`` integrates the previous level over the time it held, so
    ``time_average`` is exact for piecewise-constant signals (queue depths,
    session occupancy).
    """

    def __init__(self, sim: Simulator, name: str, initial: float = 0.0) -> None:
        self.sim = sim
        self.name = name
        self.value = initial
        self._area = 0.0
        self._since = sim.now
        self._started = sim.now
        self.peak = initial

    def set(self, value: float) -> None:
        now = self.sim.now
        self._area += self.value * (now - self._since)
        self._since = now
        self.value = value
        self.peak = max(self.peak, value)

    def adjust(self, delta: float) -> None:
        self.set(self.value + delta)

    def time_average(self) -> float:
        now = self.sim.now
        elapsed = now - self._started
        if elapsed <= 0:
            return self.value
        area = self._area + self.value * (now - self._since)
        return area / elapsed


class CounterSet:
    """A named family of counters created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def __getitem__(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def snapshot(self) -> Dict[str, float]:
        return {name: c.value for name, c in sorted(self._counters.items())}
