"""Per-simulator metrics registry: named instruments, one snapshot call.

Before this module, every component owned free-floating ``Counter`` /
``Gauge`` / ``LatencyRecorder`` instances (or bare ints), and harvesting a
run meant knowing every component's private attribute.  The registry gives
each :class:`~repro.kernel.scheduler.Simulator` one place where instruments
are created by name (``sim.metrics.counter("mac.queue_drops")``) and one
:meth:`MetricsRegistry.snapshot` that serialises everything — which is what
the telemetry exporter, the sweep summaries and the run report consume.

Access it through the lazy ``Simulator.metrics`` property (this module
imports the scheduler, so the scheduler cannot import it back eagerly).

Naming conventions:

* dotted, component-first: ``mac.queue_drops``, ``leases.granted``,
  ``session.projector.wait``.
* *aggregate* instruments (one per simulation, many writers) are created
  with the default get-or-create semantics;
* *per-component* instruments pass ``unique=True`` so a second component
  with the same name gets ``name#2`` instead of silently sharing — several
  ``WirelessMedium`` instances on one simulator is a real pattern in tests.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator
from .counters import Counter, Gauge
from .recorder import LatencyRecorder


class MetricsRegistry:
    """Owns every named instrument of one simulation run."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._probes: Dict[str, Callable[[], Dict[str, Any]]] = {}
        self.closed = False

    # ------------------------------------------------------------------
    # Instrument creation
    # ------------------------------------------------------------------
    def _unique_name(self, name: str, existing: Dict[str, Any]) -> str:
        if name not in existing:
            return name
        suffix = 2
        while f"{name}#{suffix}" in existing:
            suffix += 1
        return f"{name}#{suffix}"

    def counter(self, name: str, unique: bool = False) -> Counter:
        """Get or create the counter ``name``.

        With ``unique=True`` a fresh counter is always created, the name
        auto-suffixed (``#2``, ``#3``…) on collision — for per-component
        instruments that must never share.
        """
        if unique:
            name = self._unique_name(name, self._counters)
        elif name in self._counters:
            return self._counters[name]
        self._check_collision(name, self._counters)
        counter = Counter(name)
        self._counters[name] = counter
        return counter

    def gauge(self, name: str, initial: float = 0.0,
              unique: bool = False) -> Gauge:
        """Get or create the gauge ``name`` (``unique`` as for counters)."""
        if unique:
            name = self._unique_name(name, self._gauges)
        elif name in self._gauges:
            return self._gauges[name]
        self._check_collision(name, self._gauges)
        gauge = Gauge(self.sim, name, initial)
        self._gauges[name] = gauge
        return gauge

    def latency(self, name: str, unique: bool = False) -> LatencyRecorder:
        """Get or create the latency recorder ``name``."""
        if unique:
            name = self._unique_name(name, self._latencies)
        elif name in self._latencies:
            return self._latencies[name]
        self._check_collision(name, self._latencies)
        recorder = LatencyRecorder(self.sim, name)
        self._latencies[name] = recorder
        return recorder

    def register_probe(self, name: str,
                       fn: Callable[[], Dict[str, Any]],
                       ) -> Callable[[], None]:
        """Register ``fn`` to contribute a dict under ``name`` at snapshot.

        Probes pull live component state (a MAC's stats dict, a queue's
        depth) without the component pushing every change through an
        instrument.  Name collisions auto-suffix; returns an unregister
        function.
        """
        name = self._unique_name(name, self._probes)
        self._probes[name] = fn

        def unregister() -> None:
            self._probes.pop(name, None)

        return unregister

    def _check_collision(self, name: str, own: Dict[str, Any]) -> None:
        for kind, table in (("counter", self._counters),
                            ("gauge", self._gauges),
                            ("latency", self._latencies)):
            if table is not own and name in table:
                raise ConfigurationError(
                    f"metric name {name!r} already used by a {kind}")

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Serialise every instrument into one JSON-ready dict.

        Keys are sorted for deterministic output (reports and JSONL exports
        must be byte-identical for the same seed).
        """
        counters = {name: c.value
                    for name, c in sorted(self._counters.items())}
        gauges = {name: {"value": g.value,
                         "time_average": g.time_average(),
                         "peak": g.peak}
                  for name, g in sorted(self._gauges.items())}
        latencies = {}
        for name, recorder in sorted(self._latencies.items()):
            summary = recorder.summary()
            latencies[name] = {
                "n": summary.n,
                "mean": summary.mean,
                "p50": summary.p50,
                "p95": summary.p95,
                "max": summary.maximum,
                "pending": recorder.pending(),
                "abandoned": recorder.abandoned,
                "unmatched_stops": recorder.unmatched_stops,
            }
        probes = {name: fn() for name, fn in sorted(self._probes.items())}
        return {
            "time": self.sim.now,
            "counters": counters,
            "gauges": gauges,
            "latencies": latencies,
            "probes": probes,
        }

    def close(self) -> Dict[str, Any]:
        """End-of-run flush: close every latency recorder (their still-open
        starts become ``abandoned``) and return a final snapshot.
        Idempotent."""
        if not self.closed:
            self.closed = True
            for recorder in self._latencies.values():
                recorder.close()
        return self.snapshot()
