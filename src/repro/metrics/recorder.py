"""Latency recording with paired start/stop semantics."""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from ..kernel.scheduler import Simulator
from .stats import Summary, summarize


class LatencyRecorder:
    """Records durations between paired ``start(key)`` / ``stop(key)`` calls.

    Unmatched stops are counted (not raised): in a lossy system the start
    may have been recorded by a component whose message never arrived.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._open: Dict[Hashable, float] = {}
        self.samples: List[float] = []
        self.unmatched_stops = 0
        self.abandoned = 0

    def start(self, key: Hashable) -> None:
        if key in self._open:
            # Restarting a key abandons the earlier measurement.
            self.abandoned += 1
        self._open[key] = self.sim.now

    def stop(self, key: Hashable) -> Optional[float]:
        started = self._open.pop(key, None)
        if started is None:
            self.unmatched_stops += 1
            return None
        duration = self.sim.now - started
        self.samples.append(duration)
        return duration

    def cancel(self, key: Hashable) -> None:
        if self._open.pop(key, None) is not None:
            self.abandoned += 1

    def close(self) -> int:
        """Flush at end of run: count every still-open start as abandoned.

        Without this, a sweep that tears a simulation down mid-handshake
        silently loses its in-flight measurements — ``abandoned`` is how
        they stay visible in summaries.  Returns how many were flushed;
        idempotent (a second close flushes nothing).
        """
        flushed = len(self._open)
        self.abandoned += flushed
        self._open.clear()
        return flushed

    def pending(self) -> int:
        return len(self._open)

    def summary(self) -> Summary:
        return summarize(self.samples)

    def __len__(self) -> int:
        return len(self.samples)
