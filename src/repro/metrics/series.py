"""Time series capture with NumPy-backed storage.

Samples append into growable float buffers (amortised O(1), no Python
list-of-tuples overhead in hot loops) and expose vectorised views for
analysis — the "be easy on the memory, use views" idiom from the HPC
guides.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator


class TimeSeries:
    """Append-only ``(time, value)`` series."""

    def __init__(self, sim: Simulator, name: str, capacity: int = 256) -> None:
        if capacity < 1:
            raise ConfigurationError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self._times = np.empty(capacity, dtype=np.float64)
        self._values = np.empty(capacity, dtype=np.float64)
        self._n = 0

    def record(self, value: float, time: Optional[float] = None) -> None:
        if self._n == self._times.shape[0]:
            self._grow()
        self._times[self._n] = self.sim.now if time is None else time
        self._values[self._n] = value
        self._n += 1

    def _grow(self) -> None:
        new_capacity = self._times.shape[0] * 2
        times = np.empty(new_capacity, dtype=np.float64)
        values = np.empty(new_capacity, dtype=np.float64)
        times[: self._n] = self._times[: self._n]
        values[: self._n] = self._values[: self._n]
        self._times, self._values = times, values

    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """View (not copy) of the recorded times."""
        return self._times[: self._n]

    @property
    def values(self) -> np.ndarray:
        return self._values[: self._n]

    def __len__(self) -> int:
        return self._n

    def window(self, start: float, end: float) -> Tuple[np.ndarray, np.ndarray]:
        """Times/values with ``start <= t < end`` (views via boolean mask)."""
        mask = (self.times >= start) & (self.times < end)
        return self.times[mask], self.values[mask]

    def mean(self) -> float:
        return float(self.values.mean()) if self._n else 0.0

    def rate_per_second(self, window_s: float) -> float:
        """Count of samples in the trailing window divided by the window."""
        if window_s <= 0:
            raise ConfigurationError("window must be positive")
        cutoff = self.sim.now - window_s
        return int(np.count_nonzero(self.times >= cutoff)) / window_s


def periodic_sampler(sim: Simulator, series: TimeSeries, interval: float,
                     probe) -> "object":
    """Sample ``probe()`` into ``series`` every ``interval`` seconds."""
    return sim.every(interval, lambda: series.record(float(probe())))
