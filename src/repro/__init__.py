"""repro — an executable reproduction of *A Conceptual Model for Pervasive
Computing* (Ciarletta & Dima, 2000).

The package builds the paper twice over:

* :mod:`repro.core` — the **Layered Pervasive Computing model** itself:
  five layers, dual device/user columns, per-layer constraint relations,
  issue classification, analysis reports, and regenerated figures.
* everything else — the **Aroma substrate** the paper's analysis runs on:
  a deterministic discrete-event kernel (:mod:`repro.kernel`), the 2.4 GHz
  environment (:mod:`repro.env`), physical devices and users
  (:mod:`repro.phys`), networking (:mod:`repro.net`), the resource layer
  (:mod:`repro.resource`), Jini-style discovery (:mod:`repro.discovery`),
  the Smart Projector services (:mod:`repro.services`), simulated users
  (:mod:`repro.user`), measurement (:mod:`repro.metrics`) and the
  experiment suite (:mod:`repro.experiments`).

Quickstart::

    from repro import Simulator, projector_room, presentation_workflow

    room = projector_room(seed=1)
    presentation_workflow(room)
    room.sim.run(until=30.0)
    print(room.projector.frames_displayed)
"""

from .core import (
    Column,
    Layer,
    LPCInstrument,
    LPCModel,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    smart_projector_model,
)
from .experiments import (
    ExperimentResult,
    list_experiments,
    presentation_workflow,
    projector_room,
    run_experiment,
)
from .kernel import Simulator

__version__ = "1.0.0"

__all__ = [
    "Column",
    "ExperimentResult",
    "LPCInstrument",
    "LPCModel",
    "Layer",
    "Simulator",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "list_experiments",
    "presentation_workflow",
    "projector_room",
    "run_experiment",
    "smart_projector_model",
    "__version__",
]
