"""Automated diagnostics, fault injection and recovery.

The paper's resource-layer verdict: lab users "are capable of fixing
whatever problems may arise with the wireless network, the Linux-based
adapter, and the lookup service", but those expectations "are unreasonable
if the Smart Projector is used outside our laboratory"; moving on requires
"automated diagnostics, fault tolerance and recovery".  This module builds
both halves:

* :class:`FaultInjector` — breaks things the way the lab's infrastructure
  broke (adapter hang, registry outage, radio blackout);
* :class:`DiagnosticsAgent` — the commercial-grade remedy: watches for
  those failures and repairs them without a human, so experiment E6 can
  compare casual users with and without it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator


@dataclass
class Fault:
    """One injected failure."""

    kind: str            #: "adapter", "registry", "radio"
    injected_at: float
    repaired_at: Optional[float] = None
    repaired_by: str = ""  #: "diagnostics" or "human"

    @property
    def outage(self) -> Optional[float]:
        if self.repaired_at is None:
            return None
        return self.repaired_at - self.injected_at


class FaultInjector:
    """Breaks subsystems on demand or on a schedule.

    The injectable surface is deliberately physical:

    * ``adapter`` — the embedded PC wedges: its NIC stops receiving.
    * ``registry`` — the lookup service stops answering (endpoint closed).
    * ``radio`` — a device's radio is jammed/disassociated.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.faults: List[Fault] = []
        self._undo: Dict[int, Callable[[], None]] = {}

    # ------------------------------------------------------------------
    def wedge_adapter(self, adapter) -> Fault:
        """Hang the adapter: its MAC discards everything it hears."""
        mac = adapter.nic.mac
        if mac.receiving_disabled:
            raise ConfigurationError("adapter already wedged")
        mac.receiving_disabled = True
        self.sim.issue("fault", adapter.name, "adapter wedged (hung kernel)")
        return self._record("adapter", lambda: setattr(
            mac, "receiving_disabled", False))

    def kill_registry(self, registry) -> Fault:
        """Stop the lookup service answering requests."""
        endpoint = registry.endpoint
        original = endpoint.on_message
        if original is None:
            raise ConfigurationError("registry already dead")
        endpoint.on_message = None
        self.sim.issue("fault", registry.registry_id, "lookup service down")
        return self._record("registry", lambda: setattr(
            endpoint, "on_message", original))

    def jam_radio(self, device) -> Fault:
        """Disable one device's radio reception."""
        mac = device.nic.mac
        mac.receiving_disabled = True
        self.sim.issue("fault", device.name, "radio jammed/disassociated")
        return self._record("radio", lambda: setattr(
            mac, "receiving_disabled", False))

    # ------------------------------------------------------------------
    def _record(self, kind: str, undo: Callable[[], None]) -> Fault:
        fault = Fault(kind, self.sim.now)
        self.faults.append(fault)
        self._undo[id(fault)] = undo
        return fault

    def repair(self, fault: Fault, by: str) -> None:
        undo = self._undo.pop(id(fault), None)
        if undo is None:
            return  # already repaired
        undo()
        fault.repaired_at = self.sim.now
        fault.repaired_by = by
        self.sim.trace("fault.repair", by, f"{fault.kind} fault repaired")

    def outstanding(self) -> List[Fault]:
        return [f for f in self.faults if f.repaired_at is None]


class DiagnosticsAgent:
    """Automated watch-and-repair: the future-work feature, implemented.

    Polls registered health probes; when a probe reports an outstanding
    fault, repairs it after ``repair_time`` (reboot/restart cost).  With
    the agent disabled, faults wait for a human with enough
    ``technical_skill`` — or forever.
    """

    def __init__(self, sim: Simulator, injector: FaultInjector,
                 check_interval: float = 2.0, repair_time: float = 5.0,
                 enabled: bool = True) -> None:
        if check_interval <= 0 or repair_time < 0:
            raise ConfigurationError("bad diagnostics timing")
        self.sim = sim
        self.injector = injector
        self.check_interval = check_interval
        self.repair_time = repair_time
        self.enabled = enabled
        self.repairs = 0
        self._repairing: set = set()
        self._task = sim.every(check_interval, self._check)

    def _check(self) -> None:
        if not self.enabled:
            return
        for fault in self.injector.outstanding():
            if id(fault) in self._repairing:
                continue
            self._repairing.add(id(fault))
            self.sim.trace("diagnostics", "agent",
                           f"detected {fault.kind} fault; repairing")
            self.sim.schedule(self.repair_time, self._repair, fault)

    def _repair(self, fault: Fault) -> None:
        self._repairing.discard(id(fault))
        if fault.repaired_at is None:
            self.injector.repair(fault, "diagnostics")
            self.repairs += 1

    def stop(self) -> None:
        self._task.cancel()


def human_repair_model(fault: Fault, injector: FaultInjector,
                       sim: Simulator, technical_skill: float,
                       base_time: float = 60.0) -> Optional[float]:
    """Can this human fix the fault, and how long would it take?

    Skill below 0.5 cannot repair infrastructure at all (the paper's casual
    user); above that, repair time falls with skill.  Returns the scheduled
    completion delay, or None when the user is stuck.
    """
    if technical_skill < 0.5:
        sim.issue("resource", "user",
                  f"user lacks the skill to repair the {fault.kind} fault",
                  skill=technical_skill)
        return None
    delay = base_time * (1.5 - technical_skill)
    sim.schedule(delay, injector.repair, fault, "human")
    return delay
