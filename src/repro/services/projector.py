"""The Smart Projector: the paper's challenge application, end to end.

Host side (:class:`SmartProjector`): the commercially available digital
projector plus the Aroma Adapter export **two separate services** —

* ``projection`` — remote display of a laptop via the VNC-like protocol;
* ``projector-control`` — power and input control of the appliance;

each guarded by its own session object, each registered in the lookup
service under a lease.  Client side (:class:`SmartProjectorClient`): the
presenter's laptop, with every manual step the paper describes exposed as
an explicit method — because the number of steps a user must model *is*
the conceptual burden experiment E5 measures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..discovery.client import ServiceDiscoveryClient
from ..discovery.records import ServiceItem, ServiceTemplate
from ..kernel.errors import ServiceError, SessionError
from ..kernel.scheduler import Simulator
from .base import RpcClient, RpcResult, RpcService
from .framebuffer import Framebuffer
from .sessions import SessionManager
from .vnc import VNCServer, VNCViewer

#: Stack ports of the two services.
PROJECTION_PORT: int = 21
CONTROL_PORT: int = 22

#: service_type strings used in the lookup service.
PROJECTION_TYPE = "projection"
CONTROL_TYPE = "projector-control"


class SmartProjector:
    """Adapter + appliance + the two Jini services.

    Args:
        sim: simulator.
        adapter: the :class:`repro.phys.devices.AromaAdapter` (projector
            already connected via :meth:`connect_projector`).
        use_session_leases: lease-based stale-session reclaim (the remedy);
            False reproduces the stuck-projector ablation.
        session_lease_s: session lease duration.
        room: advertised location attribute.
    """

    def __init__(self, sim: Simulator, adapter, *,
                 use_session_leases: bool = True,
                 session_lease_s: float = 60.0,
                 room: str = "conference-room",
                 viewer_fps: float = 15.0) -> None:
        if adapter.projector is None:
            raise ServiceError("adapter has no projector connected")
        self.sim = sim
        self.adapter = adapter
        self.projector = adapter.projector
        self.room = room
        self.viewer_fps = viewer_fps
        self.session_lease_s = session_lease_s

        self.projection_sessions = SessionManager(
            sim, f"{adapter.name}.projection", use_session_leases,
            max_lease=max(session_lease_s, 1.0))
        self.control_sessions = SessionManager(
            sim, f"{adapter.name}.control", use_session_leases,
            max_lease=max(session_lease_s, 1.0))
        self.projection_sessions.on_evicted = lambda s: self._stop_viewer()

        self.viewer: Optional[VNCViewer] = None

        self.projection_service = RpcService(
            sim, adapter, "projection", PROJECTION_PORT, "aroma-projection",
            code_bytes=12288)
        self.control_service = RpcService(
            sim, adapter, "control", CONTROL_PORT, "aroma-control",
            code_bytes=6144)
        self._expose_projection()
        self._expose_control()

    # ------------------------------------------------------------------
    # Service items for registration
    # ------------------------------------------------------------------
    def projection_item(self) -> ServiceItem:
        return self.projection_service.service_item(
            PROJECTION_TYPE, room=self.room, resolution=self.projector.resolution)

    def control_item(self) -> ServiceItem:
        return self.control_service.service_item(
            CONTROL_TYPE, room=self.room)

    def register(self, discovery: ServiceDiscoveryClient,
                 lease_duration: float = 60.0) -> None:
        """Register both services (auto-renewed) with the lookup service."""
        discovery.register(self.projection_item(), lease_duration)
        discovery.register(self.control_item(), lease_duration)

    # ------------------------------------------------------------------
    # Projection service methods
    # ------------------------------------------------------------------
    def _expose_projection(self) -> None:
        svc = self.projection_service
        svc.expose("acquire", self._proj_acquire)
        svc.expose("acquire_both", self._proj_acquire_both)
        svc.expose("renew", self._proj_renew)
        svc.expose("release", self._proj_release)
        svc.expose("start", self._proj_start)
        svc.expose("stop", self._proj_stop)
        svc.expose("status", self._proj_status)

    def _proj_acquire(self, src: str, owner: Optional[str] = None,
                      duration: Optional[float] = None, **_kw) -> Dict[str, Any]:
        session = self.projection_sessions.acquire(
            owner or src, duration or self.session_lease_s)
        return {"token": session.token}

    def _proj_acquire_both(self, src: str, owner: Optional[str] = None,
                           duration: Optional[float] = None,
                           **_kw) -> Dict[str, Any]:
        """Atomically acquire projection *and* control — all or nothing.

        The paper's "multiple users ... in different orders" problem is a
        classic split-acquisition deadlock: user A holds projection, user
        B holds control, neither can proceed.  Granting both under one
        operation removes the interleaving entirely.
        """
        owner = owner or src
        duration = duration or self.session_lease_s
        projection = self.projection_sessions.acquire(owner, duration)
        try:
            control = self.control_sessions.acquire(owner, duration)
        except SessionError:
            # Roll back: holding one half would be the deadlock we are
            # here to prevent.
            self.projection_sessions.release(projection.token)
            raise
        return {"token": projection.token, "control_token": control.token}

    def _proj_renew(self, src: str, _token: str = "", **_kw) -> bool:
        if not self.projection_sessions.renew(_token):
            raise SessionError("invalid or expired projection token")
        return True

    def _proj_release(self, src: str, _token: str = "", **_kw) -> bool:
        self._stop_viewer()
        if not self.projection_sessions.release(_token):
            raise SessionError("invalid or expired projection token")
        return True

    def _proj_start(self, src: str, vnc_address: str = "",
                    _token: str = "", **_kw) -> bool:
        if not self.projection_sessions.validate(_token):
            raise SessionError("invalid or expired projection token")
        if not vnc_address:
            raise ServiceError("start needs the VNC server address")
        self._stop_viewer()
        self.viewer = VNCViewer(self.sim, self.adapter, vnc_address,
                                self.adapter.drive_display,
                                target_fps=self.viewer_fps)
        self.viewer.start()
        self.sim.trace("projector.start", self.adapter.name,
                       f"projection started from {vnc_address}")
        return True

    def _proj_stop(self, src: str, _token: str = "", **_kw) -> bool:
        if not self.projection_sessions.validate(_token):
            raise SessionError("invalid or expired projection token")
        self._stop_viewer()
        return True

    def _proj_status(self, src: str, **_kw) -> Dict[str, Any]:
        return {
            "holder": self.projection_sessions.holder,
            "projecting": self.viewer is not None and self.viewer.running,
            "lamp_on": self.projector.lamp_on,
        }

    def _stop_viewer(self) -> None:
        if self.viewer is not None:
            self.viewer.stop()
            self.viewer.endpoint.close()
            self.viewer = None

    # ------------------------------------------------------------------
    def application_state(self) -> Dict[str, Any]:
        """The abstract-layer ground truth, as one flat dict.

        This is the right-hand side of Figure 4: what a user's
        :class:`~repro.user.mental.MentalModel` must stay consistent
        with.  Keys deliberately match the concepts a presenter has to
        track (who holds what, is anything projecting, is the lamp on).
        """
        return {
            "projection.holder": self.projection_sessions.holder,
            "control.holder": self.control_sessions.holder,
            "projecting": self.viewer is not None and self.viewer.running,
            "lamp_on": self.projector.lamp_on,
            "input": self.projector.input_source,
        }

    # ------------------------------------------------------------------
    # Control service methods
    # ------------------------------------------------------------------
    def _expose_control(self) -> None:
        svc = self.control_service
        svc.expose("acquire", self._ctl_acquire)
        svc.expose("renew", self._ctl_renew)
        svc.expose("release", self._ctl_release)
        svc.expose("power", self._ctl_power)
        svc.expose("brightness", self._ctl_brightness)
        svc.expose("select_input", self._ctl_select_input)
        svc.expose("status", self._ctl_status)

    def _ctl_acquire(self, src: str, owner: Optional[str] = None,
                     duration: Optional[float] = None, **_kw) -> Dict[str, Any]:
        session = self.control_sessions.acquire(
            owner or src, duration or self.session_lease_s)
        return {"token": session.token}

    def _ctl_renew(self, src: str, _token: str = "", **_kw) -> bool:
        if not self.control_sessions.renew(_token):
            raise SessionError("invalid or expired control token")
        return True

    def _ctl_release(self, src: str, _token: str = "", **_kw) -> bool:
        if not self.control_sessions.release(_token):
            raise SessionError("invalid or expired control token")
        return True

    def _ctl_power(self, src: str, on: bool = True, _token: str = "", **_kw) -> bool:
        if not self.control_sessions.validate(_token):
            raise SessionError("invalid or expired control token")
        self.projector.power(on)
        return True

    def _ctl_brightness(self, src: str, level: float = 0.8,
                        _token: str = "", **_kw) -> float:
        if not self.control_sessions.validate(_token):
            raise SessionError("invalid or expired control token")
        return self.projector.set_brightness(level)

    def _ctl_select_input(self, src: str, source: str = "",
                          _token: str = "", **_kw) -> bool:
        """Switch the appliance's video input — including *away* from the
        adapter, the failure a presenter's mental model rarely covers."""
        if not self.control_sessions.validate(_token):
            raise SessionError("invalid or expired control token")
        if not source:
            raise ServiceError("select_input needs a source name")
        self.projector.select_input(source)
        return True

    def _ctl_status(self, src: str, **_kw) -> Dict[str, Any]:
        return {"holder": self.control_sessions.holder,
                "lamp_on": self.projector.lamp_on,
                "brightness": self.projector.brightness,
                "input": self.projector.input_source}


class SmartProjectorClient:
    """The presenter's side: every manual step is an explicit call.

    The paper's inventory of what the user must understand: find both
    services, acquire both sessions, start the VNC server on the laptop,
    start projection, power the lamp — and on the way out, stop and
    release everything.  Each method is asynchronous; results arrive via
    ``callback(ok, value)``.
    """

    def __init__(self, sim: Simulator, laptop,
                 discovery: ServiceDiscoveryClient,
                 fb: Optional[Framebuffer] = None) -> None:
        self.sim = sim
        self.laptop = laptop
        self.discovery = discovery
        self.fb = fb or Framebuffer()
        self.vnc_server = VNCServer(sim, laptop, self.fb)
        self.projection_proxy = None
        self.control_proxy = None
        self._projection_rpc: Optional[RpcClient] = None
        self._control_rpc: Optional[RpcClient] = None
        self.projection_token: Optional[str] = None
        self.control_token: Optional[str] = None
        self.steps_performed: list = []

    # ------------------------------------------------------------------
    def _step(self, name: str) -> None:
        self.steps_performed.append((self.sim.now, name))

    def discover_services(self, callback: Callable[[bool, Any], None],
                          room: Optional[str] = None) -> None:
        """Step 1: find both projector services in the lookup service."""
        self._step("discover")
        attrs = {"room": room} if room else {}
        pending = {"projection": None, "control": None}

        def check_done() -> None:
            if all(v is not None for v in pending.values()):
                ok = all(v for v in pending.values())
                callback(ok, dict(pending))

        def on_projection(items) -> None:
            if items:
                self.projection_proxy = items[0].proxy
                if self._projection_rpc is None:
                    self._projection_rpc = RpcClient(self.sim, self.laptop,
                                                     self.projection_proxy)
                else:  # re-discovery: rebind to the (possibly new) proxy
                    self._projection_rpc.proxy = self.projection_proxy
                pending["projection"] = True
            else:
                pending["projection"] = False
            check_done()

        def on_control(items) -> None:
            if items:
                self.control_proxy = items[0].proxy
                if self._control_rpc is None:
                    self._control_rpc = RpcClient(self.sim, self.laptop,
                                                  self.control_proxy)
                else:
                    self._control_rpc.proxy = self.control_proxy
                pending["control"] = True
            else:
                pending["control"] = False
            check_done()

        self.discovery.find(ServiceTemplate(PROJECTION_TYPE, attributes=attrs),
                            on_projection)
        self.discovery.find(ServiceTemplate(CONTROL_TYPE, attributes=attrs),
                            on_control)

    # ------------------------------------------------------------------
    def _rpc(self, which: str) -> RpcClient:
        rpc = self._projection_rpc if which == "projection" else self._control_rpc
        if rpc is None:
            raise ServiceError(f"{which} service not discovered yet")
        return rpc

    @staticmethod
    def _unwrap(callback: Callable[[bool, Any], None]):
        def handle(result: Optional[RpcResult]) -> None:
            if result is None:
                callback(False, "timeout")
            elif not result.ok:
                callback(False, result.error)
            else:
                callback(True, result.value)
        return handle

    def acquire_both(self, callback: Callable[[bool, Any], None],
                     duration: Optional[float] = None) -> None:
        """Steps 2a+2b in one atomic operation (the commercial-grade
        variant): both session tokens or neither."""
        self._step("acquire_both")

        def done(ok: bool, value: Any) -> None:
            if ok:
                self.projection_token = value["token"]
                self.control_token = value["control_token"]
            callback(ok, value)

        self._rpc("projection").call(
            "acquire_both", {"owner": self.laptop.name,
                             "duration": duration},
            self._unwrap(done))

    def acquire_projection(self, callback: Callable[[bool, Any], None],
                           duration: Optional[float] = None) -> None:
        """Step 2a: get the projection session token."""
        self._step("acquire_projection")

        def done(ok: bool, value: Any) -> None:
            if ok:
                self.projection_token = value["token"]
            callback(ok, value)

        self._rpc("projection").call(
            "acquire", {"owner": self.laptop.name, "duration": duration},
            self._unwrap(done))

    def acquire_control(self, callback: Callable[[bool, Any], None],
                        duration: Optional[float] = None) -> None:
        """Step 2b: get the control session token."""
        self._step("acquire_control")

        def done(ok: bool, value: Any) -> None:
            if ok:
                self.control_token = value["token"]
            callback(ok, value)

        self._rpc("control").call(
            "acquire", {"owner": self.laptop.name, "duration": duration},
            self._unwrap(done))

    def start_vnc_server(self) -> None:
        """Step 3: start sharing the laptop display (often forgotten!)."""
        self._step("start_vnc_server")
        self.vnc_server.start()

    def start_projection(self, callback: Callable[[bool, Any], None]) -> None:
        """Step 4: tell the adapter to start pulling our display."""
        self._step("start_projection")
        self._rpc("projection").call(
            "start", {"vnc_address": self.laptop.name},
            self._unwrap(callback), token=self.projection_token)

    def power_projector(self, on: bool,
                        callback: Callable[[bool, Any], None]) -> None:
        """Step 5: lamp on (or off when leaving)."""
        self._step(f"power_{'on' if on else 'off'}")
        self._rpc("control").call("power", {"on": on},
                                  self._unwrap(callback),
                                  token=self.control_token)

    def renew_sessions(self) -> None:
        """Keep both sessions alive during a long talk."""
        self._step("renew")
        if self.projection_token:
            self._rpc("projection").call("renew", {}, None,
                                         token=self.projection_token)
        if self.control_token:
            self._rpc("control").call("renew", {}, None,
                                      token=self.control_token)

    def stop_projection(self, callback: Callable[[bool, Any], None]) -> None:
        """Step 6: stop the projection stream."""
        self._step("stop_projection")
        self._rpc("projection").call("stop", {}, self._unwrap(callback),
                                     token=self.projection_token)

    def release_all(self, callback: Callable[[bool, Any], None]) -> None:
        """Step 7: relinquish both sessions (the step people forget)."""
        self._step("release_all")
        pending = {"n": 0}

        def one_done(_ok: bool, _value: Any) -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                self.projection_token = None
                self.control_token = None
                callback(True, None)

        if self.projection_token and self._projection_rpc:
            pending["n"] += 1
            self._rpc("projection").call("release", {},
                                         self._unwrap(one_done),
                                         token=self.projection_token)
        if self.control_token and self._control_rpc:
            pending["n"] += 1
            self._rpc("control").call("release", {}, self._unwrap(one_done),
                                      token=self.control_token)
        if pending["n"] == 0:
            callback(True, None)

    def stop_vnc_server(self) -> None:
        """Step 8: stop sharing the laptop display."""
        self._step("stop_vnc_server")
        self.vnc_server.stop()

    #: Number of distinct concepts/steps a presenter must hold to run a
    #: complete session on the *research prototype* — the paper's point
    #: that "even relatively simple applications can place a conceptual
    #: burden on its users".
    RESEARCH_PROTOTYPE_STEPS = 8
