"""Session objects: exclusive, token-guarded use of a shared service.

"Session objects are used to ensure that another user cannot inadvertently
'hijack' either the use or control of the projector."  And the paper's
open problem: "deal with users who forget to relinquish control of the
projector without relying on a system administrator to intervene."

:class:`SessionManager` implements both: a single-holder resource guarded
by an unguessable token, with *optional* lease-based expiry.  Running it
with ``use_leases=False`` reproduces the stuck-projector failure mode
(E4's ablation); with leases, a forgetful user's session is reclaimed in
bounded time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..discovery.leases import Lease, LeaseTable
from ..kernel.errors import SessionError
from ..kernel.scheduler import Simulator


def _next_session_seq(sim: Simulator) -> int:
    """Per-simulator session sequence (lives in ``sim.context``).

    Session ids and tokens embed this counter, and token *length* feeds
    ``len(str)``-based RPC wire sizes — a process-global counter made
    run N+1 ship different byte counts than run N for the same seed.
    Scoping it to the simulator keeps twin runs byte-identical with no
    test-side pinning.
    """
    return sim.next_seq("services.session_seq")


@dataclass
class Session:
    """One granted session."""

    session_id: int
    owner: str
    resource: str
    token: str
    granted_at: float
    lease: Optional[Lease] = None
    released: bool = False


class SessionManager:
    """Single-holder session control for one resource.

    Args:
        sim: simulator.
        resource: name of the guarded resource (e.g. ``"projection"``).
        use_leases: grant sessions under leases that expire unless renewed
            (the paper's remedy).  When False sessions last until released
            — or forever, if the user forgets.
        max_lease: clamp for session lease duration.
    """

    def __init__(self, sim: Simulator, resource: str, use_leases: bool = True,
                 max_lease: float = 120.0, sweep_interval: float = 1.0) -> None:
        self.sim = sim
        self.resource = resource
        self.use_leases = use_leases
        self._current: Optional[Session] = None
        self._rng = sim.rng(f"sessions.{resource}")
        self.leases: Optional[LeaseTable] = None
        if use_leases:
            self.leases = LeaseTable(sim, f"{resource}.sessions",
                                     max_duration=max_lease,
                                     on_expired=self._lease_expired,
                                     sweep_interval=sweep_interval)
        self.acquisitions = 0
        self.rejections = 0
        self.releases = 0
        self.evictions = 0
        self.invalid_tokens = 0
        self.on_evicted: Optional[Callable[[Session], None]] = None
        # Queue-wait latency lives in the registry; ``wait_log`` stays as
        # an alias of the recorder's sample list for existing consumers.
        metrics = sim.metrics
        self._m_wait = metrics.latency(f"session.{resource}.wait",
                                       unique=True)
        self.wait_log: List[float] = self._m_wait.samples
        self._m_waiters = metrics.gauge(f"session.{resource}.waiters",
                                        unique=True)
        metrics.register_probe(f"session.{resource}", lambda: {
            "holder": self.holder,
            "acquisitions": self.acquisitions,
            "rejections": self.rejections,
            "releases": self.releases,
            "evictions": self.evictions,
            "invalid_tokens": self.invalid_tokens,
            "queue_length": len(self._waiters),
        })
        #: FIFO of (owner, duration, callback, enqueued_at) waiting for the
        #: session — the "graceful resolution" mechanism the paper asks
        #: for instead of making users poll.
        self._waiters: List[tuple] = []

    # ------------------------------------------------------------------
    def acquire(self, owner: str, duration: float = 60.0) -> Session:
        """Grant the session to ``owner`` or raise :class:`SessionError`."""
        # The span makes session setup visible in the causal tree: when
        # the request arrived via transport, this nests under the delivery
        # span; a denial ends it with status "error".
        with self.sim.span("session.acquire", self.resource, owner=owner):
            if self._current is not None and not self._current.released:
                self.rejections += 1
                self.sim.issue(
                    "session", self.resource,
                    f"{owner} denied: {self._current.owner} holds the session",
                    holder=self._current.owner, requester=owner)
                raise SessionError(
                    f"{self.resource} is in use by {self._current.owner}")
            token = (f"tok-{_next_session_seq(self.sim)}-"
                     f"{self._rng.integers(1, 1 << 30)}")
            lease = (self.leases.grant(owner, self.resource, duration)
                     if self.leases is not None else None)
            session = Session(_next_session_seq(self.sim), owner,
                              self.resource, token, self.sim.now, lease)
            self._current = session
            self.acquisitions += 1
            self.sim.trace("session.acquire", self.resource,
                           f"{owner} acquired the session")
            return session

    def acquire_or_wait(self, owner: str,
                        callback: Callable[[Session], None],
                        duration: float = 60.0) -> Optional[Session]:
        """Acquire now if free, else join the FIFO wait queue.

        Returns the session when granted immediately, otherwise None and
        ``callback(session)`` fires when the session becomes ours.  This
        is the paper's "gracefully resolve issues related to attempts by
        multiple users ... with minimal user intervention": nobody polls,
        nobody calls the administrator.
        """
        try:
            session = self.acquire(owner, duration)
        except SessionError:
            self._waiters.append((owner, duration, callback, self.sim.now))
            self._m_wait.start(owner)
            self._m_waiters.set(len(self._waiters))
            self.sim.trace("session.wait", self.resource,
                           f"{owner} queued (position {len(self._waiters)})")
            return None
        self.sim.call_soon(callback, session)
        return session

    def queue_length(self) -> int:
        return len(self._waiters)

    def cancel_wait(self, owner: str) -> bool:
        """Leave the queue (the user gave up or went elsewhere)."""
        for entry in self._waiters:
            if entry[0] == owner:
                self._waiters.remove(entry)
                self._m_wait.cancel(owner)
                self._m_waiters.set(len(self._waiters))
                return True
        return False

    def _grant_next(self) -> None:
        while self._waiters and self.available:
            owner, duration, callback, _enqueued_at = self._waiters.pop(0)
            try:
                session = self.acquire(owner, duration)
            except SessionError:  # pragma: no cover - available was True
                return
            # stop() appends the wait to the recorder's samples — the very
            # list ``wait_log`` aliases, so consumers see the same values.
            self._m_wait.stop(owner)
            self._m_waiters.set(len(self._waiters))
            self.sim.call_soon(callback, session)

    def validate(self, token: str) -> bool:
        """Hijack prevention: is ``token`` the live session's token?"""
        current = self._current
        ok = (current is not None and not current.released
              and current.token == token
              and (current.lease is None
                   or not current.lease.expired(self.sim.now)))
        if not ok:
            self.invalid_tokens += 1
        return ok

    def renew(self, token: str, duration: Optional[float] = None) -> bool:
        """Extend the session lease; False if the token is stale."""
        if not self.validate(token):
            return False
        session = self._current
        if session is not None and session.lease is not None and self.leases:
            self.leases.renew(session.lease.lease_id, duration)
        return True

    def release(self, token: str) -> bool:
        """The well-behaved path: explicitly give the session back."""
        if not self.validate(token):
            return False
        session = self._current
        assert session is not None
        session.released = True
        if session.lease is not None and self.leases is not None:
            try:
                self.leases.cancel(session.lease.lease_id)
            except Exception:  # lease may have just expired; that's fine
                pass
        self._current = None
        self.releases += 1
        self.sim.trace("session.release", self.resource,
                       f"{session.owner} released the session")
        self._grant_next()
        return True

    def force_release(self, admin: str) -> bool:
        """The system-administrator path the paper wants to avoid."""
        session = self._current
        if session is None or session.released:
            return False
        session.released = True
        self._current = None
        self.evictions += 1
        self.sim.issue("session", self.resource,
                       f"administrator {admin} force-released "
                       f"{session.owner}'s session",
                       admin=admin, owner=session.owner)
        self._grant_next()
        return True

    # ------------------------------------------------------------------
    def _lease_expired(self, lease: Lease) -> None:
        session = self._current
        if session is None or session.lease is None:
            return
        if session.lease.lease_id != lease.lease_id or session.released:
            return
        session.released = True
        self._current = None
        self.evictions += 1
        self.sim.issue("session", self.resource,
                       f"stale session of {session.owner} reclaimed by lease "
                       "expiry (holder forgot to relinquish)",
                       owner=session.owner)
        if self.on_evicted is not None:
            self.on_evicted(session)
        self._grant_next()

    # ------------------------------------------------------------------
    @property
    def holder(self) -> Optional[str]:
        if self._current is None or self._current.released:
            return None
        return self._current.owner

    @property
    def available(self) -> bool:
        return self.holder is None
