"""Voice biometric authentication.

"Many pervasive computing applications involve speech recognition and
user biometric identification for security purposes — the flow of control
in such an application depends on the signal received from the user's
body."  This module makes that flow concrete: a speaker-verification
model whose *false-reject* rate degrades with acoustic SNR (the genuine
user's voiceprint drowns in noise) while its *false-accept* rate is set
by the decision threshold and stays flat — the classic biometric
asymmetry, and another way the environment layer reaches up through the
physical layer into application control flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..kernel.errors import ConfigurationError, ServiceError
from ..kernel.scheduler import Simulator
from ..phys.human import PhysicalProfile, SpeechSignal


@dataclass(frozen=True)
class AuthResult:
    """Outcome of one verification attempt."""

    claimed: str
    accepted: bool
    genuine: bool      #: ground truth: was the speaker who they claimed?
    score: float

    @property
    def false_reject(self) -> bool:
        return self.genuine and not self.accepted

    @property
    def false_accept(self) -> bool:
        return (not self.genuine) and self.accepted


class VoiceprintAuthenticator:
    """Speaker verification with environment-dependent error rates.

    Args:
        sim: simulator (randomness + issue reporting).
        far_target: design false-accept rate; sets the decision threshold.
        snr50_db: SNR at which a *genuine* match scores 0.5 — verification
            is deliberately stricter than recognition (default 15 vs the
            ASR's 12).
    """

    def __init__(self, sim: Simulator, far_target: float = 0.01,
                 snr50_db: float = 15.0, slope_db: float = 3.0,
                 name: str = "voiceauth") -> None:
        if not (0.0 < far_target < 0.5):
            raise ConfigurationError("far_target must be in (0, 0.5)")
        if slope_db <= 0:
            raise ConfigurationError("slope must be positive")
        self.sim = sim
        self.far_target = far_target
        self.snr50_db = snr50_db
        self.slope_db = slope_db
        self.name = name
        self._rng = sim.rng(f"auth.{name}")
        self._enrolled: Dict[str, str] = {}
        self.attempts = 0
        self.genuine_attempts = 0
        self.impostor_attempts = 0
        self.false_rejects = 0
        self.false_accepts = 0

    # ------------------------------------------------------------------
    def enroll(self, profile: PhysicalProfile) -> str:
        """Register a user's voiceprint; returns the stored signature."""
        signature = profile.biometric_signature()
        self._enrolled[profile.name] = signature
        return signature

    def enrolled(self, name: str) -> bool:
        return name in self._enrolled

    # ------------------------------------------------------------------
    def genuine_accept_probability(self, snr_db: float,
                                   clarity: float = 1.0) -> float:
        """Probability a genuine speaker is accepted at this SNR."""
        sigma = 1.0 / (1.0 + np.exp(-(snr_db - self.snr50_db) / self.slope_db))
        return float(np.clip(clarity * sigma, 0.0, 1.0))

    def verify(self, signal: SpeechSignal, claimed: str,
               snr_db: float,
               speaker_profile: Optional[PhysicalProfile] = None) -> AuthResult:
        """Verify that ``signal`` belongs to the enrolled user ``claimed``.

        ``speaker_profile`` supplies ground truth for the genuine flag
        (defaults to matching by speaker name on the signal).
        """
        if claimed not in self._enrolled:
            raise ServiceError(f"{claimed!r} is not enrolled")
        self.attempts += 1
        if speaker_profile is not None:
            genuine = (speaker_profile.biometric_signature()
                       == self._enrolled[claimed])
        else:
            genuine = signal.speaker == claimed
        if genuine:
            self.genuine_attempts += 1
            p_accept = self.genuine_accept_probability(snr_db, signal.clarity)
        else:
            self.impostor_attempts += 1
            # Threshold calibrated to the design FAR; impostor scores do
            # not improve in quiet rooms.
            p_accept = self.far_target
        score = float(self._rng.random())
        accepted = score < p_accept
        result = AuthResult(claimed, accepted, genuine, p_accept)
        if result.false_reject:
            self.false_rejects += 1
            self.sim.issue("noise", self.name,
                           f"genuine user {claimed!r} rejected by voice "
                           f"verification at {snr_db:.0f} dB SNR",
                           snr_db=snr_db)
        if result.false_accept:
            self.false_accepts += 1
            self.sim.issue("session", self.name,
                           f"impostor accepted as {claimed!r} by voice "
                           "verification")
        return result

    # ------------------------------------------------------------------
    @property
    def measured_frr(self) -> float:
        """False-reject rate over genuine attempts so far."""
        if self.genuine_attempts == 0:
            return 0.0
        return self.false_rejects / self.genuine_attempts

    @property
    def measured_far(self) -> float:
        """False-accept rate over impostor attempts so far."""
        if self.impostor_attempts == 0:
            return 0.0
        return self.false_accepts / self.impostor_attempts
