"""A VNC-like remote framebuffer protocol.

"AT&T's Virtual Network Computer (VNC) is used to make the laptop display
available to the Aroma adapter which in turn displays it via the
projector."  Faithful to that architecture:

* :class:`VNCServer` on the laptop exports a :class:`Framebuffer` using a
  client-pull protocol with incremental (dirty-tile) updates;
* :class:`VNCViewer` on the adapter polls for updates at a target rate and
  pushes decoded pixels out the video port to the projector.

The paper's usability trap is preserved: the server must be explicitly
*started*; a viewer polling a stopped server gets silence and stalls —
exactly the failure a presenter's mental model has to account for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator
from ..net.queueing import Pacer
from .framebuffer import Framebuffer


def _fire_pace(_owner: int, viewer: "VNCViewer") -> None:
    """Batched framebuffer-pacing callback (``vnc.pace``): next poll."""
    viewer._request()


def _fire_stall(request_id: int, viewer: "VNCViewer") -> None:
    """Batched stall-watchdog callback (``vnc.stall``); owner column
    carries the request id the timer guards."""
    viewer._stalled(request_id)

#: Well-known stack port for the remote-framebuffer protocol.
VNC_PORT: int = 20

REQUEST_BYTES = 24
REPLY_HEADER_BYTES = 16


@dataclass(frozen=True)
class UpdateRequest:
    viewer: str
    last_version: int
    request_id: int


@dataclass(frozen=True)
class UpdateReply:
    request_id: int
    version: int
    tiles: int
    payload_bytes: int
    pixels: int


class VNCServer:
    """Exports one framebuffer from a device (the presenter's laptop)."""

    def __init__(self, sim: Simulator, device, fb: Framebuffer,
                 port: int = VNC_PORT) -> None:
        self.sim = sim
        self.device = device
        self.fb = fb
        self.port = port
        self.running = False
        self.endpoint = None
        self.requests_served = 0
        self.bytes_sent = 0

    def start(self) -> None:
        """Start serving (the step the user must remember)."""
        if self.running:
            return
        self.endpoint = self.device.reliable(self.port, self._on_request)
        self.running = True
        self.sim.trace("vnc.server", self.device.name, "VNC server started")

    def stop(self) -> None:
        if not self.running:
            return
        self.endpoint.close()
        self.endpoint = None
        self.running = False
        self.sim.trace("vnc.server", self.device.name, "VNC server stopped")

    def _on_request(self, src: str, request, _segments: int) -> None:
        if not isinstance(request, UpdateRequest) or not self.running:
            return
        tiles, payload, pixels = self.fb.dirty_cost(request.last_version)
        reply = UpdateReply(request.request_id, self.fb.version, tiles,
                            payload, pixels)
        self.requests_served += 1
        self.bytes_sent += REPLY_HEADER_BYTES + payload
        # A new request makes any queued (not-yet-started) reply to this
        # viewer stale — drop it rather than serialising obsolete pixels
        # onto a slow radio.
        self.endpoint.cancel_pending(src)
        self.endpoint.send(src, reply, REPLY_HEADER_BYTES + payload)


class VNCViewer:
    """Polls a VNC server and drives a display sink (the adapter's video
    output).

    Args:
        sim: simulator.
        device: hosting device (the Aroma adapter).
        server_address: where the VNC server lives.
        on_pixels: sink called with the decoded pixel count per update
            (usually ``adapter.drive_display``).
        target_fps: polling rate cap.
        stall_timeout: seconds without a reply before counting a stall and
            re-requesting.
    """

    def __init__(self, sim: Simulator, device, server_address: str,
                 on_pixels: Callable[[int], bool],
                 target_fps: float = 15.0, port: int = VNC_PORT,
                 stall_timeout: float = 2.0) -> None:
        if target_fps <= 0 or stall_timeout <= 0:
            raise ConfigurationError("bad fps/timeout")
        self.sim = sim
        self.device = device
        self.server_address = server_address
        self.on_pixels = on_pixels
        self.target_fps = target_fps
        self.port = port
        self.stall_timeout = stall_timeout
        self.endpoint = device.reliable(port, self._on_message)
        self.running = False
        self.last_version = 0
        self._request_seq = 0
        self._outstanding: Optional[int] = None
        self._stall_timer = None
        self._last_request_at = -1e9
        self._consecutive_stalls = 0
        self.updates_received = 0
        self.frames_displayed = 0
        self.bytes_received = 0
        self.stalls = 0
        # Registry-owned so frame latency appears in run snapshots and
        # close() flushes in-flight requests as abandoned.
        self.latency = sim.metrics.latency(f"vnc.{device.name}", unique=True)
        # Frame pacing and the stall watchdog run on the kernel's batched
        # timer path, shared across every viewer on the simulator.
        self._pace = Pacer(sim, "vnc.pace", _fire_pace)
        self._stall_pacer = Pacer(sim, "vnc.stall", _fire_stall,
                                  cancellable=True)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._request()

    def stop(self) -> None:
        self.running = False
        self._cancel_stall_timer()
        self._outstanding = None

    # ------------------------------------------------------------------
    def _request(self) -> None:
        if not self.running or self._outstanding is not None:
            return
        self._request_seq += 1
        request = UpdateRequest(self.device.name, self.last_version,
                                self._request_seq)
        self._outstanding = self._request_seq
        self._last_request_at = self.sim.now
        self.latency.start(self._request_seq)
        self.endpoint.send(self.server_address, request, REQUEST_BYTES)
        self._stall_timer = self._stall_pacer.after(
            self._current_stall_wait(), owner=self._request_seq, payload=self)

    def _stalled(self, request_id: int) -> None:
        if self._outstanding != request_id or not self.running:
            return
        self.stalls += 1
        self.latency.cancel(request_id)
        self._outstanding = None
        self.sim.issue("vnc", self.device.name,
                       f"no update from {self.server_address} for "
                       f"{self._current_stall_wait():.1f}s "
                       "(server down or link too slow?)")
        self._consecutive_stalls += 1
        # Back off before retrying: a slow link needs more time to drain
        # the previous reply, and a dead server should not be hammered.
        self._pace.after(self._current_stall_wait(), payload=self)

    def _current_stall_wait(self) -> float:
        return min(self.stall_timeout * (2.0 ** self._consecutive_stalls),
                   16.0)

    def _cancel_stall_timer(self) -> None:
        if self._stall_timer is not None:
            self._stall_timer.cancel()
            self._stall_timer = None

    def _on_message(self, src: str, reply, _segments: int) -> None:
        if not isinstance(reply, UpdateReply) or not self.running:
            return
        if self._outstanding != reply.request_id:
            return  # stale reply from before a stall
        self._cancel_stall_timer()
        self._outstanding = None
        self._consecutive_stalls = 0
        self.latency.stop(reply.request_id)
        self.updates_received += 1
        self.bytes_received += REPLY_HEADER_BYTES + reply.payload_bytes
        self.last_version = reply.version
        if reply.pixels > 0:
            if self.on_pixels(reply.pixels):
                self.frames_displayed += 1
        # Pace the next poll: no sooner than 1/fps after the previous one.
        next_at = max(self.sim.now,
                      self._last_request_at + 1.0 / self.target_fps)
        self._pace.at(next_at, payload=self)

    # ------------------------------------------------------------------
    def achieved_fps(self, elapsed: float) -> float:
        """Content frames actually displayed per second over ``elapsed``."""
        if elapsed <= 0:
            raise ConfigurationError("elapsed must be positive")
        return self.frames_displayed / elapsed

    def goodput_bps(self, elapsed: float) -> float:
        if elapsed <= 0:
            raise ConfigurationError("elapsed must be positive")
        return 8.0 * self.bytes_received / elapsed
