"""A tiled framebuffer with dirty-region tracking.

The laptop display that VNC exports.  The screen is divided into square
tiles; content generators *touch* regions, bumping per-tile version
numbers (a NumPy int array — dirty queries are vectorised comparisons).
An update for a tile costs bytes proportional to the tile's pixel count
times the content's compressibility, which is how slide decks and
animation end up with very different wire costs in experiment E1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..kernel.errors import ConfigurationError

#: Bytes per pixel before compression (16-bit colour, the 1999 default).
BYTES_PER_PIXEL: float = 2.0


@dataclass(frozen=True)
class TileUpdate:
    """One tile's pending content change."""

    col: int
    row: int
    version: int
    payload_bytes: int
    pixels: int


class Framebuffer:
    """The exported screen.

    Args:
        width/height: pixels.
        tile: tile edge length in pixels.
    """

    def __init__(self, width: int = 1024, height: int = 768, tile: int = 64) -> None:
        if width <= 0 or height <= 0 or tile <= 0:
            raise ConfigurationError("bad framebuffer geometry")
        self.width = width
        self.height = height
        self.tile = tile
        self.cols = -(-width // tile)
        self.rows = -(-height // tile)
        #: per-tile version, bumped on every touch.
        self._versions = np.zeros((self.rows, self.cols), dtype=np.int64)
        #: per-tile compression ratio of the *current* content (0..1).
        self._ratios = np.full((self.rows, self.cols), 0.1, dtype=np.float64)
        self._clock = 0
        self.touches = 0

    # ------------------------------------------------------------------
    def _tile_pixels(self, row: int, col: int) -> int:
        w = min(self.tile, self.width - col * self.tile)
        h = min(self.tile, self.height - row * self.tile)
        return w * h

    def touch_rect(self, x: int, y: int, w: int, h: int,
                   compression_ratio: float = 0.1) -> int:
        """Mark a pixel rectangle changed; returns tiles touched."""
        if w <= 0 or h <= 0:
            raise ConfigurationError("rectangle must have positive extent")
        if not (0.0 < compression_ratio <= 1.0):
            raise ConfigurationError("compression ratio must be in (0, 1]")
        x = max(0, min(x, self.width - 1))
        y = max(0, min(y, self.height - 1))
        col0, col1 = x // self.tile, min((x + w - 1) // self.tile, self.cols - 1)
        row0, row1 = y // self.tile, min((y + h - 1) // self.tile, self.rows - 1)
        self._clock += 1
        self._versions[row0:row1 + 1, col0:col1 + 1] = self._clock
        self._ratios[row0:row1 + 1, col0:col1 + 1] = compression_ratio
        self.touches += 1
        return (row1 - row0 + 1) * (col1 - col0 + 1)

    def touch_all(self, compression_ratio: float = 0.1) -> int:
        """Full-screen change (a slide flip)."""
        return self.touch_rect(0, 0, self.width, self.height, compression_ratio)

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Global change counter: max tile version."""
        return self._clock

    def dirty_since(self, version: int) -> List[TileUpdate]:
        """Updates for every tile changed after ``version``."""
        rows, cols = np.nonzero(self._versions > version)
        out: List[TileUpdate] = []
        for row, col in zip(rows.tolist(), cols.tolist()):
            pixels = self._tile_pixels(row, col)
            payload = int(np.ceil(pixels * BYTES_PER_PIXEL
                                  * self._ratios[row, col]))
            out.append(TileUpdate(col, row, int(self._versions[row, col]),
                                  payload, pixels))
        return out

    def dirty_cost(self, version: int) -> Tuple[int, int, int]:
        """(tiles, bytes, pixels) changed since ``version`` — vectorised,
        used on the hot polling path instead of building TileUpdate lists."""
        mask = self._versions > version
        tiles = int(np.count_nonzero(mask))
        if tiles == 0:
            return 0, 0, 0
        pixel_counts = self._pixel_matrix()[mask]
        payloads = np.ceil(pixel_counts * BYTES_PER_PIXEL * self._ratios[mask])
        return tiles, int(payloads.sum()), int(pixel_counts.sum())

    def _pixel_matrix(self) -> np.ndarray:
        widths = np.full(self.cols, self.tile, dtype=np.int64)
        widths[-1] = self.width - (self.cols - 1) * self.tile
        heights = np.full(self.rows, self.tile, dtype=np.int64)
        heights[-1] = self.height - (self.rows - 1) * self.tile
        return heights[:, None] * widths[None, :]

    @property
    def total_pixels(self) -> int:
        return self.width * self.height
