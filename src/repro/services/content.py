"""Screen-content workload generators for the VNC experiments.

The paper's physical-layer finding — "the relatively low bandwidth of
current wireless networking adapters ... prevents us from displaying rapid
animation" — needs two contrasting workloads:

* :class:`SlideShow` — full-screen changes every few tens of seconds,
  highly compressible.  What presentations actually are.
* :class:`Animation` — a moving region redrawn many times a second,
  poorly compressible.  What kills a 2 Mb/s radio.

Plus :class:`TypingContent` (small frequent updates) and
:class:`MixedContent` for realistic sessions.
"""

from __future__ import annotations


from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator
from .framebuffer import Framebuffer


class ContentGenerator:
    """Base: drives a framebuffer on a schedule."""

    def __init__(self, sim: Simulator, fb: Framebuffer, name: str) -> None:
        self.sim = sim
        self.fb = fb
        self.name = name
        self._task = None
        self.updates_generated = 0

    def start(self) -> "ContentGenerator":
        raise NotImplementedError

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None


class SlideShow(ContentGenerator):
    """Full-screen slide flips with jittered dwell time.

    Args:
        dwell_s: mean seconds per slide.
        compression_ratio: slides are mostly text on flat background —
            ~0.05 of raw size after encoding.
    """

    def __init__(self, sim: Simulator, fb: Framebuffer,
                 dwell_s: float = 30.0, compression_ratio: float = 0.05,
                 name: str = "slides") -> None:
        super().__init__(sim, fb, name)
        if dwell_s <= 0:
            raise ConfigurationError("dwell must be positive")
        self.dwell_s = dwell_s
        self.compression_ratio = compression_ratio
        self._rng = sim.rng(f"content.{name}")

    def start(self) -> "SlideShow":
        self._flip()
        return self

    def _flip(self) -> None:
        self.fb.touch_all(self.compression_ratio)
        self.updates_generated += 1
        jitter = float(self._rng.uniform(0.5, 1.5))
        self._task = self.sim.schedule(self.dwell_s * jitter, self._flip)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None


class Animation(ContentGenerator):
    """A region redrawn at a fixed frame rate (video clip, demo, cursor
    chase).  Poorly compressible."""

    def __init__(self, sim: Simulator, fb: Framebuffer, fps: float = 15.0,
                 region: tuple = (320, 240), compression_ratio: float = 0.5,
                 name: str = "animation") -> None:
        super().__init__(sim, fb, name)
        if fps <= 0:
            raise ConfigurationError("fps must be positive")
        self.fps = fps
        self.region = region
        self.compression_ratio = compression_ratio
        self._rng = sim.rng(f"content.{name}")

    def start(self) -> "Animation":
        self._task = self.sim.every(1.0 / self.fps, self._frame, start=0.0)
        return self

    def _frame(self) -> None:
        w, h = self.region
        x = int(self._rng.integers(0, max(1, self.fb.width - w)))
        y = int(self._rng.integers(0, max(1, self.fb.height - h)))
        self.fb.touch_rect(x, y, w, h, self.compression_ratio)
        self.updates_generated += 1


class TypingContent(ContentGenerator):
    """Small localized updates — editing speaker notes live."""

    def __init__(self, sim: Simulator, fb: Framebuffer,
                 keystrokes_per_s: float = 4.0, name: str = "typing") -> None:
        super().__init__(sim, fb, name)
        if keystrokes_per_s <= 0:
            raise ConfigurationError("rate must be positive")
        self.keystrokes_per_s = keystrokes_per_s
        self._rng = sim.rng(f"content.{name}")
        self._caret = [64, 64]

    def start(self) -> "TypingContent":
        self._task = self.sim.every(1.0 / self.keystrokes_per_s, self._key,
                                    start=0.0)
        return self

    def _key(self) -> None:
        self.fb.touch_rect(self._caret[0], self._caret[1], 12, 20, 0.05)
        self.updates_generated += 1
        self._caret[0] += 12
        if self._caret[0] > self.fb.width - 24:
            self._caret[0] = 64
            self._caret[1] += 24
            if self._caret[1] > self.fb.height - 40:
                self._caret[1] = 64


class MixedContent(ContentGenerator):
    """A realistic talk: slides, with an embedded animation part of the
    time (``animation_duty`` of each slide dwell)."""

    def __init__(self, sim: Simulator, fb: Framebuffer,
                 dwell_s: float = 30.0, animation_duty: float = 0.3,
                 fps: float = 10.0, name: str = "mixed") -> None:
        super().__init__(sim, fb, name)
        if not (0.0 <= animation_duty <= 1.0):
            raise ConfigurationError("duty must be in [0, 1]")
        self.slides = SlideShow(sim, fb, dwell_s, name=f"{name}.slides")
        self.animation = Animation(sim, fb, fps, name=f"{name}.anim")
        self.animation_duty = animation_duty
        self.dwell_s = dwell_s

    def start(self) -> "MixedContent":
        self.slides.start()
        if self.animation_duty > 0:
            self._cycle_on()
        return self

    def _cycle_on(self) -> None:
        self.animation.start()
        self._task = self.sim.schedule(self.dwell_s * self.animation_duty,
                                       self._cycle_off)

    def _cycle_off(self) -> None:
        self.animation.stop()
        self._task = self.sim.schedule(
            self.dwell_s * (1.0 - self.animation_duty), self._cycle_on)

    def stop(self) -> None:
        self.slides.stop()
        self.animation.stop()
        super().stop()

    @property
    def updates(self) -> int:
        return self.slides.updates_generated + self.animation.updates_generated
