"""The abstract layer, device side: the pervasive application software.

Sessions, the RPC service framework, the VNC-like remote framebuffer, the
Smart Projector host and client, content workloads, and the automated
diagnostics the paper lists as required future work.
"""

from .auth import AuthResult, VoiceprintAuthenticator
from .base import RpcCall, RpcClient, RpcResult, RpcService
from .content import (
    Animation,
    ContentGenerator,
    MixedContent,
    SlideShow,
    TypingContent,
)
from .errorsvc import DiagnosticsAgent, Fault, FaultInjector, human_repair_model
from .framebuffer import BYTES_PER_PIXEL, Framebuffer, TileUpdate
from .projector import (
    CONTROL_PORT,
    CONTROL_TYPE,
    PROJECTION_PORT,
    PROJECTION_TYPE,
    SmartProjector,
    SmartProjectorClient,
)
from .sessions import Session, SessionManager
from .vnc import VNC_PORT, UpdateReply, UpdateRequest, VNCServer, VNCViewer

__all__ = [
    "Animation",
    "AuthResult",
    "VoiceprintAuthenticator",
    "BYTES_PER_PIXEL",
    "CONTROL_PORT",
    "CONTROL_TYPE",
    "ContentGenerator",
    "DiagnosticsAgent",
    "Fault",
    "FaultInjector",
    "Framebuffer",
    "MixedContent",
    "PROJECTION_PORT",
    "PROJECTION_TYPE",
    "RpcCall",
    "RpcClient",
    "RpcResult",
    "RpcService",
    "Session",
    "SessionManager",
    "SlideShow",
    "SmartProjector",
    "SmartProjectorClient",
    "TileUpdate",
    "TypingContent",
    "UpdateReply",
    "UpdateRequest",
    "VNC_PORT",
    "VNCServer",
    "VNCViewer",
    "human_repair_model",
]
