"""RPC service framework: the plumbing under every Aroma service.

A :class:`RpcService` exposes named methods on a stack port; a
:class:`RpcClient` is the bound form of a downloaded
:class:`~repro.discovery.records.ServiceProxy` — it calls those methods
over the reliable transport with request/reply correlation and timeouts.
Session tokens ride in every call so services can enforce the hijack
protection of :mod:`repro.services.sessions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..discovery.records import ServiceItem, ServiceProxy, new_service_id
from ..kernel.errors import ConfigurationError, ServiceError, SessionError
from ..kernel.scheduler import Simulator



@dataclass(frozen=True)
class RpcCall:
    request_id: int
    method: str
    args: Dict[str, Any] = field(default_factory=dict)
    token: Optional[str] = None

    @property
    def wire_bytes(self) -> int:
        return 48 + sum(8 + len(str(k)) + len(str(v))
                        for k, v in self.args.items())


@dataclass(frozen=True)
class RpcResult:
    request_id: int
    ok: bool
    value: Any = None
    error: str = ""

    @property
    def wire_bytes(self) -> int:
        return 32 + len(str(self.value)) + len(self.error)


class RpcService:
    """A named service exposing methods on one device port.

    Handlers are ``fn(src_address, **args) -> value``; raise
    :class:`ServiceError`/:class:`SessionError` to return a failure to the
    caller.  Handlers needing the session token receive it as the keyword
    ``_token``.
    """

    def __init__(self, sim: Simulator, device, name: str, port: int,
                 protocol: str, code_bytes: int = 8192) -> None:
        self.sim = sim
        self.device = device
        self.name = name
        self.port = port
        self.protocol = protocol
        self.code_bytes = code_bytes
        self._methods: Dict[str, Callable[..., Any]] = {}
        self.endpoint = device.reliable(port, self._on_call)
        self.calls_served = 0
        self.calls_failed = 0
        self.service_id = new_service_id(name)

    def expose(self, method: str, handler: Callable[..., Any]) -> None:
        if method in self._methods:
            raise ConfigurationError(f"method {method!r} already exposed")
        self._methods[method] = handler

    def service_item(self, service_type: str, **attributes: Any) -> ServiceItem:
        """Build the registrable item advertising this service."""
        proxy = ServiceProxy(self.device.name, self.port, self.protocol,
                             self.code_bytes)
        return ServiceItem(self.service_id, service_type, proxy, attributes)

    # ------------------------------------------------------------------
    def _on_call(self, src: str, call: Any, _segments: int) -> None:
        if not isinstance(call, RpcCall):
            return
        handler = self._methods.get(call.method)
        if handler is None:
            result = RpcResult(call.request_id, False,
                               error=f"no method {call.method!r}")
            self.calls_failed += 1
        else:
            try:
                kwargs = dict(call.args)
                if call.token is not None:
                    kwargs["_token"] = call.token
                value = handler(src, **kwargs)
                result = RpcResult(call.request_id, True, value)
                self.calls_served += 1
            except (ServiceError, SessionError) as exc:
                result = RpcResult(call.request_id, False, error=str(exc))
                self.calls_failed += 1
            except Exception as exc:  # noqa: BLE001 - server isolation
                # A handler bug must not take the whole simulated world
                # down with it: report an internal error to the caller
                # (as a real RPC server would) and surface the defect.
                result = RpcResult(call.request_id, False,
                                   error=f"internal error: {exc!r}")
                self.calls_failed += 1
                self.sim.issue("application", self.name,
                               f"handler {call.method!r} crashed: {exc!r}")
        self.endpoint.send(src, result, result.wire_bytes)

    def stop(self) -> None:
        self.endpoint.close()


class RpcClient:
    """Client-side binding of a service proxy.

    One client may be shared by everything on a device that talks to the
    same remote port; per-call callbacks are correlated by request id.
    """

    def __init__(self, sim: Simulator, device, proxy: ServiceProxy,
                 timeout: float = 3.0) -> None:
        if timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        self.sim = sim
        self.device = device
        self.proxy = proxy
        self.timeout = timeout
        self.endpoint = device.reliable(proxy.port, self._on_result)
        self._pending: Dict[int, tuple] = {}
        self.calls_sent = 0
        self.timeouts = 0

    def call(self, method: str, args: Optional[Dict[str, Any]] = None,
             on_result: Optional[Callable[[Optional[RpcResult]], None]] = None,
             token: Optional[str] = None) -> int:
        """Invoke ``method``; ``on_result(None)`` signals a timeout."""
        call = RpcCall(self.sim.next_seq("services.rpc_seq"), method,
                       dict(args or {}), token)
        timer = self.sim.schedule(self.timeout, self._timeout, call.request_id)
        self._pending[call.request_id] = (on_result, timer)
        self.endpoint.send(self.proxy.provider, call, call.wire_bytes)
        self.calls_sent += 1
        return call.request_id

    def _timeout(self, request_id: int) -> None:
        entry = self._pending.pop(request_id, None)
        if entry is None:
            return
        self.timeouts += 1
        self.sim.trace("rpc.timeout", self.device.name,
                       f"call {request_id} to {self.proxy.provider} timed out")
        if entry[0] is not None:
            entry[0](None)

    def _on_result(self, src: str, result: Any, _segments: int) -> None:
        if not isinstance(result, RpcResult):
            return
        entry = self._pending.pop(result.request_id, None)
        if entry is None:
            return
        entry[1].cancel()
        if entry[0] is not None:
            entry[0](result)

    def close(self) -> None:
        self.endpoint.close()
