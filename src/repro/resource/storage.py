"""Non-volatile storage model (the "Sto" box, running).

"The device's mass storage must support the user's need to access and
retrieve information ... not just an issue of capacity and speed, but of
allowing users to flexibly organize information."  The model is a small
hierarchical (or deliberately flat) object store with capacity accounting
and timed reads/writes, so the organisational restriction and the speed
both show up in experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..kernel.errors import ConfigurationError, ReproError
from ..kernel.events import Priority
from ..kernel.scheduler import Simulator
from .platform import StorageSpec


class StorageFull(ReproError):
    """Write rejected: volume out of space."""


class OrganizationDenied(ReproError):
    """The volume does not allow user-defined organisation (flat store)."""


@dataclass
class StoredObject:
    path: str
    size_mb: float
    created_at: float
    modified_at: float


class StorageVolume:
    """One device's non-volatile store.

    Paths are ``/``-separated.  On a volume without
    ``flexible_organization`` only root-level names are allowed — writing
    ``notes/march/agenda`` raises :class:`OrganizationDenied` and records
    a resource-layer issue, which is how the PDA preset's storage
    frustration becomes observable behaviour.
    """

    def __init__(self, sim: Simulator, spec: StorageSpec,
                 name: str = "storage") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self._objects: Dict[str, StoredObject] = {}
        self.reads = 0
        self.writes = 0
        self.denied_writes = 0

    # ------------------------------------------------------------------
    @property
    def used_mb(self) -> float:
        return sum(o.size_mb for o in self._objects.values())

    @property
    def free_mb(self) -> float:
        return self.spec.capacity_mb - self.used_mb

    def _validate_path(self, path: str) -> str:
        if not path or path.startswith("/") or path.endswith("/"):
            raise ConfigurationError(f"bad path {path!r}")
        if "/" in path and not self.spec.flexible_organization:
            self.denied_writes += 1
            self.sim.issue("storage", self.name,
                           f"flat store refused hierarchical path {path!r}")
            raise OrganizationDenied(
                f"volume {self.name!r} does not support folders")
        return path

    # ------------------------------------------------------------------
    def write(self, path: str, size_mb: float,
              on_done: Optional[Callable[[], None]] = None) -> StoredObject:
        """Store/overwrite an object; completion after the transfer time."""
        path = self._validate_path(path)
        if size_mb < 0:
            raise ConfigurationError("size must be non-negative")
        existing = self._objects.get(path)
        delta = size_mb - (existing.size_mb if existing else 0.0)
        if delta > self.free_mb:
            self.sim.issue("storage", self.name,
                           f"out of space writing {path!r} ({size_mb}MB)")
            raise StorageFull(f"{self.name}: need {delta:.1f}MB, "
                              f"free {self.free_mb:.1f}MB")
        now = self.sim.now
        obj = StoredObject(path, size_mb,
                           existing.created_at if existing else now, now)
        self._objects[path] = obj
        self.writes += 1
        if on_done is not None:
            self.sim.schedule(self.transfer_time(size_mb), on_done,
                              priority=Priority.APP)
        return obj

    def read(self, path: str,
             on_done: Optional[Callable[[StoredObject], None]] = None) -> StoredObject:
        obj = self._objects.get(path)
        if obj is None:
            raise ConfigurationError(f"no object at {path!r}")
        self.reads += 1
        if on_done is not None:
            self.sim.schedule(self.transfer_time(obj.size_mb), on_done, obj,
                              priority=Priority.APP)
        return obj

    def delete(self, path: str) -> None:
        if path not in self._objects:
            raise ConfigurationError(f"no object at {path!r}")
        del self._objects[path]

    def listing(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._objects if p.startswith(prefix))

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to move ``size_mb`` at the volume's throughput."""
        return size_mb / self.spec.throughput_mbps

    def __contains__(self, path: str) -> bool:
        return path in self._objects

    def __len__(self) -> int:
        return len(self._objects)
