"""User faculties: the user side of the resource layer.

"The term 'faculty' here means a developed skill or ability such as a
user's ability to speak a particular language, the user's education or
even the user's temperament (for example, the ability to tolerate
frustration)."  Faculties sit above physiology and below mental models in
the paper's temporal-specificity ordering: they change slowly, but
"through training and practice can be acquired in a reasonable amount of
time" — hence :func:`train`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..kernel.errors import ConfigurationError


def _unit(value: float, name: str) -> float:
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


@dataclass(frozen=True)
class FacultyProfile:
    """Developed skills and temperament of one user."""

    name: str
    #: languages the user reads/speaks.
    languages: Tuple[str, ...] = ("en",)
    #: fluency with graphical interfaces and their metaphors, [0, 1].
    gui_literacy: float = 0.7
    #: ability to diagnose and fix technical problems (networks, OS), [0, 1].
    #: The paper's lab users "are capable of fixing whatever problems may
    #: arise with the wireless network, the Linux-based adapter, and the
    #: lookup service" — that is technical_skill ≈ 0.9.
    technical_skill: float = 0.3
    #: familiarity with the device domain (projectors, AV gear), [0, 1].
    domain_knowledge: float = 0.5
    #: temperament: tolerance for frustration before abandoning, [0, 1].
    frustration_tolerance: float = 0.5
    #: general capacity to absorb new concepts quickly, [0, 1].
    learning_rate: float = 0.5

    def __post_init__(self) -> None:
        if not self.languages:
            raise ConfigurationError("user must have at least one language")
        _unit(self.gui_literacy, "gui_literacy")
        _unit(self.technical_skill, "technical_skill")
        _unit(self.domain_knowledge, "domain_knowledge")
        _unit(self.frustration_tolerance, "frustration_tolerance")
        _unit(self.learning_rate, "learning_rate")

    def speaks_any(self, languages: Tuple[str, ...]) -> bool:
        return bool(set(self.languages) & set(languages))

    @property
    def can_administer_systems(self) -> bool:
        """Can this user play system administrator when things break?"""
        return self.technical_skill >= 0.7


#: Skills :func:`train` can improve.
TRAINABLE = ("gui_literacy", "technical_skill", "domain_knowledge")


def train(profile: FacultyProfile, skill: str, sessions: int = 1) -> FacultyProfile:
    """Improve a trainable ``skill`` through practice.

    Each session closes a fraction of the remaining gap to 1.0 proportional
    to the user's ``learning_rate`` — fast learners converge quickly,
    everyone converges eventually, matching the paper's claim that
    faculties "can be acquired in a reasonable amount of time".
    """
    if skill not in TRAINABLE:
        raise ConfigurationError(
            f"{skill!r} is not trainable (choose from {TRAINABLE})")
    if sessions < 0:
        raise ConfigurationError("sessions must be non-negative")
    value = getattr(profile, skill)
    for _ in range(sessions):
        value = value + (1.0 - value) * 0.25 * max(profile.learning_rate, 0.05)
    return replace(profile, **{skill: min(value, 1.0)})


# ---------------------------------------------------------------------------
# Presets: the two populations in the paper's intentional-layer analysis
# ---------------------------------------------------------------------------

def researcher(name: str = "researcher") -> FacultyProfile:
    """A computer scientist in the Aroma laboratory — the Smart
    Projector's *intended* user."""
    return FacultyProfile(
        name=name, languages=("en",), gui_literacy=0.95,
        technical_skill=0.9, domain_knowledge=0.8,
        frustration_tolerance=0.8, learning_rate=0.9)


def casual_user(name: str = "casual") -> FacultyProfile:
    """A user "expecting a commercial-grade product" — the population the
    paper says the prototype is *not* in harmony with."""
    return FacultyProfile(
        name=name, languages=("en",), gui_literacy=0.6,
        technical_skill=0.15, domain_knowledge=0.4,
        frustration_tolerance=0.35, learning_rate=0.5)


def international_visitor(name: str = "visitor") -> FacultyProfile:
    """A non-anglophone visitor — triggers the internationalisation issue
    the paper lists among its unreasonable assumptions."""
    return FacultyProfile(
        name=name, languages=("fr",), gui_literacy=0.7,
        technical_skill=0.3, domain_knowledge=0.5,
        frustration_tolerance=0.5, learning_rate=0.6)
