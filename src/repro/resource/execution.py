"""A small execution-engine model (the "Exe" box, running).

The paper: "A device's execution environment and volatile memory must be
sufficiently responsive and yet use other resources economically ... this
is not just an issue of speed, but also of responsiveness and control."
This module runs tasks on a simulated CPU so those properties are
*measurable*: interactive tasks record their queueing delay, single-tasking
engines block interactive work behind batch work, and aborting is only
possible when the spec allows it — the exact frustration
:func:`repro.resource.matching.match` scores statically.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..kernel.errors import ConfigurationError
from ..kernel.events import Priority
from ..kernel.scheduler import Simulator
from .platform import ExecutionSpec

_task_ids = itertools.count(1)


@dataclass
class Task:
    """One unit of work submitted to an engine."""

    name: str
    #: work amount in million instructions.
    mi: float
    #: interactive tasks are what the user is waiting on right now.
    interactive: bool = False
    on_done: Optional[Callable[["Task"], None]] = None
    task_id: int = field(default_factory=lambda: next(_task_ids))
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    aborted: bool = False

    @property
    def queueing_delay(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def response_time(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


class ExecutionEngine:
    """A FIFO CPU with optional multitasking (processor sharing is
    approximated by round-robin quanta) and optional abort support."""

    QUANTUM_MI = 5.0  #: round-robin quantum in million instructions

    def __init__(self, sim: Simulator, spec: ExecutionSpec,
                 name: str = "engine") -> None:
        self.sim = sim
        self.spec = spec
        self.name = name
        self._ready: List[Task] = []
        self._remaining_mi: Dict[int, float] = {}
        self._running: Optional[Task] = None
        self._slice_event = None
        self.completed: List[Task] = []
        self.aborted: List[Task] = []
        self.interactive_delays: List[float] = []

    # ------------------------------------------------------------------
    def submit(self, task: Task) -> Task:
        if task.mi <= 0:
            raise ConfigurationError("task work must be positive")
        task.submitted_at = self.sim.now
        self._remaining_mi[task.task_id] = task.mi
        self._ready.append(task)
        self._dispatch()
        return task

    def run_task(self, name: str, mi: float, interactive: bool = False,
                 on_done: Optional[Callable[[Task], None]] = None) -> Task:
        """Convenience: build and submit a task."""
        return self.submit(Task(name, mi, interactive, on_done))

    def abort(self, task: Task) -> bool:
        """Abort a queued or running task.  Returns False (and records an
        issue) when the engine does not support aborting."""
        if not self.spec.abortable:
            self.sim.issue("execution", self.name,
                           f"user tried to abort {task.name!r} but the "
                           "engine is not abortable")
            return False
        if task.finished_at is not None or task.aborted:
            return False
        task.aborted = True
        self._remaining_mi.pop(task.task_id, None)
        if task in self._ready:
            self._ready.remove(task)
        if self._running is task:
            self._cancel_slice()
            self._running = None
            self.sim.call_soon(self._dispatch, priority=Priority.APP)
        self.aborted.append(task)
        return True

    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        if self._running is not None or not self._ready:
            return
        if self.spec.multitasking:
            task = self._ready.pop(0)  # round-robin over the ready list
        else:
            task = self._ready.pop(0)  # strict FIFO: no preemption at all
        if task.started_at is None:
            task.started_at = self.sim.now
            if task.interactive:
                delay = task.queueing_delay or 0.0
                self.interactive_delays.append(delay)
                if delay > 1.0:
                    self.sim.issue(
                        "execution", self.name,
                        f"interactive task {task.name!r} waited "
                        f"{delay:.2f}s behind other work",
                        delay=delay)
        self._running = task
        remaining = self._remaining_mi[task.task_id]
        slice_mi = (min(self.QUANTUM_MI, remaining)
                    if self.spec.multitasking else remaining)
        duration = slice_mi / self.spec.mips
        self._slice_event = self.sim.schedule(
            duration, self._slice_done, task, slice_mi, priority=Priority.APP)

    def _cancel_slice(self) -> None:
        if self._slice_event is not None:
            self._slice_event.cancel()
            self._slice_event = None

    def _slice_done(self, task: Task, slice_mi: float) -> None:
        self._slice_event = None
        self._running = None
        if task.aborted:
            self._dispatch()
            return
        remaining = self._remaining_mi.get(task.task_id, 0.0) - slice_mi
        if remaining <= 1e-12:
            self._remaining_mi.pop(task.task_id, None)
            task.finished_at = self.sim.now
            self.completed.append(task)
            if task.on_done is not None:
                task.on_done(task)
        else:
            self._remaining_mi[task.task_id] = remaining
            self._ready.append(task)  # back of the round-robin queue
        self._dispatch()

    # ------------------------------------------------------------------
    @property
    def utilisation_pending(self) -> int:
        """Tasks queued or running."""
        return len(self._ready) + (1 if self._running else 0)

    def worst_interactive_delay(self) -> float:
        return max(self.interactive_delays, default=0.0)
