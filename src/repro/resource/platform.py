"""Platform descriptors: the device side of the resource layer.

Figure 3 of the paper draws the device's resource layer as five boxes —
**Mem, Sto, Exe, UI, Net** — "the available computational resources ...
that developers can count on being present".  This module gives each box a
descriptor and bundles them into a :class:`PlatformProfile`; presets match
the hardware in the paper's laboratory (the laptop, the embedded-PC Aroma
Adapter, a contemporary PDA, and the ~$10 SOC the paper predicts).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..kernel.errors import ConfigurationError


@dataclass(frozen=True)
class MemorySpec:
    """Volatile memory (the "Mem" box)."""

    ram_mb: float

    def __post_init__(self) -> None:
        if self.ram_mb <= 0:
            raise ConfigurationError("ram_mb must be positive")


@dataclass(frozen=True)
class StorageSpec:
    """Non-volatile storage (the "Sto" box).

    The paper stresses that storage is "not just an issue of capacity and
    speed, but of allowing users to flexibly organize information".
    """

    capacity_mb: float
    #: can the user create their own organisation (folders, categories)?
    flexible_organization: bool = True
    #: sustained throughput, MB/s.
    throughput_mbps: float = 5.0

    def __post_init__(self) -> None:
        if self.capacity_mb <= 0 or self.throughput_mbps <= 0:
            raise ConfigurationError("capacity and throughput must be positive")


@dataclass(frozen=True)
class ExecutionSpec:
    """Execution engine and its interactivity properties (the "Exe" box)."""

    mips: float
    #: can multiple tasks make progress concurrently?
    multitasking: bool = True
    #: can the user abort a running task?  The paper: "a single-threaded
    #: system that does not allow a user to abort a task causes needless
    #: frustration".
    abortable: bool = True

    def __post_init__(self) -> None:
        if self.mips <= 0:
            raise ConfigurationError("mips must be positive")


@dataclass(frozen=True)
class UISpec:
    """User interface capability (the "UI" box)."""

    #: interaction style: "gui", "text", "buttons", or "voice".
    kind: str = "gui"
    #: languages the UI can present.
    languages: Tuple[str, ...] = ("en",)
    #: does the UI follow common metaphors/toolkits ("eliminating
    #: unnecessary surprises")?
    consistent_metaphors: bool = True
    #: how self-explanatory the interface is, in [0, 1].
    intuitiveness: float = 0.7

    def __post_init__(self) -> None:
        if self.kind not in ("gui", "text", "buttons", "voice"):
            raise ConfigurationError(f"unknown UI kind {self.kind!r}")
        if not self.languages:
            raise ConfigurationError("UI must support at least one language")
        if not (0.0 <= self.intuitiveness <= 1.0):
            raise ConfigurationError("intuitiveness must be in [0, 1]")


@dataclass(frozen=True)
class NetSpec:
    """Networking capability (the "Net" box).

    The paper: "networking features should be automatically available,
    self-configuring and compatible with existing technologies".
    """

    technologies: Tuple[str, ...] = ("802.11b",)
    auto_configuring: bool = False
    #: does keeping it running require system-administration skill?
    requires_admin: bool = True

    def __post_init__(self) -> None:
        if not self.technologies:
            raise ConfigurationError("need at least one network technology")


@dataclass(frozen=True)
class PlatformProfile:
    """The complete resource layer of one device."""

    name: str
    memory: MemorySpec
    storage: StorageSpec
    execution: ExecutionSpec
    ui: UISpec
    net: NetSpec

    def shares_technology(self, other: "PlatformProfile") -> bool:
        """Can the two platforms interoperate at all?"""
        return bool(set(self.net.technologies) & set(other.net.technologies))

    def with_ui(self, **changes) -> "PlatformProfile":
        """Copy with UI fields replaced (used by i18n ablations)."""
        return replace(self, ui=replace(self.ui, **changes))

    def with_net(self, **changes) -> "PlatformProfile":
        return replace(self, net=replace(self.net, **changes))


# ---------------------------------------------------------------------------
# Presets matching the paper's hardware
# ---------------------------------------------------------------------------

def laptop_platform(name: str = "laptop") -> PlatformProfile:
    """A 1999/2000 presentation laptop (the presenter's machine)."""
    return PlatformProfile(
        name=name,
        memory=MemorySpec(ram_mb=128),
        storage=StorageSpec(capacity_mb=6000, flexible_organization=True,
                            throughput_mbps=10),
        execution=ExecutionSpec(mips=400, multitasking=True, abortable=True),
        ui=UISpec(kind="gui", languages=("en",), consistent_metaphors=True,
                  intuitiveness=0.75),
        net=NetSpec(technologies=("802.11b", "ethernet"),
                    auto_configuring=False, requires_admin=True),
    )


def adapter_platform(name: str = "aroma-adapter") -> PlatformProfile:
    """The Aroma Adapter: embedded PC, Linux, JVM/Jini, PCMCIA WLAN."""
    return PlatformProfile(
        name=name,
        memory=MemorySpec(ram_mb=64),
        storage=StorageSpec(capacity_mb=500, flexible_organization=False,
                            throughput_mbps=3),
        execution=ExecutionSpec(mips=200, multitasking=True, abortable=True),
        ui=UISpec(kind="text", languages=("en",), consistent_metaphors=False,
                  intuitiveness=0.3),
        net=NetSpec(technologies=("802.11b",), auto_configuring=False,
                    requires_admin=True),
    )


def pda_platform(name: str = "pda") -> PlatformProfile:
    """A contemporary PDA: single-tasking, buttons+stylus, flat storage."""
    return PlatformProfile(
        name=name,
        memory=MemorySpec(ram_mb=8),
        storage=StorageSpec(capacity_mb=16, flexible_organization=False,
                            throughput_mbps=0.5),
        execution=ExecutionSpec(mips=30, multitasking=False, abortable=False),
        ui=UISpec(kind="buttons", languages=("en",), consistent_metaphors=True,
                  intuitiveness=0.6),
        net=NetSpec(technologies=("802.11b",), auto_configuring=False,
                    requires_admin=True),
    )


def soc_platform(name: str = "soc") -> PlatformProfile:
    """The paper's predicted $10 system-on-chip with pico-cellular radio
    and "a sufficiently rich run-time environment capable of running
    sophisticated virtual machines" — the commercial-grade target."""
    return PlatformProfile(
        name=name,
        memory=MemorySpec(ram_mb=32),
        storage=StorageSpec(capacity_mb=64, flexible_organization=True,
                            throughput_mbps=2),
        execution=ExecutionSpec(mips=100, multitasking=True, abortable=True),
        ui=UISpec(kind="gui", languages=("en", "fr", "es", "de", "ja"),
                  consistent_metaphors=True, intuitiveness=0.9),
        net=NetSpec(technologies=("802.11b", "picocell"),
                    auto_configuring=True, requires_admin=False),
    )
