"""The resource layer: "What can we count on being available?"

Device side: the five boxes of Figure 3 (Mem, Sto, Exe, UI, Net) as
descriptors plus runnable execution/storage models.  User side: faculties.
The layer's defining relation — faculties *must not be frustrated by* the
platform — is the :func:`repro.resource.matching.match` engine.
"""

from .execution import ExecutionEngine, Task
from .faculties import (
    TRAINABLE,
    FacultyProfile,
    casual_user,
    international_visitor,
    researcher,
    train,
)
from .matching import Frustration, FrustrationReport, match, population_usability
from .platform import (
    ExecutionSpec,
    MemorySpec,
    NetSpec,
    PlatformProfile,
    StorageSpec,
    UISpec,
    adapter_platform,
    laptop_platform,
    pda_platform,
    soc_platform,
)
from .storage import OrganizationDenied, StorageFull, StorageVolume, StoredObject

__all__ = [
    "ExecutionEngine",
    "ExecutionSpec",
    "FacultyProfile",
    "Frustration",
    "FrustrationReport",
    "MemorySpec",
    "NetSpec",
    "OrganizationDenied",
    "PlatformProfile",
    "StorageFull",
    "StorageSpec",
    "StorageVolume",
    "StoredObject",
    "TRAINABLE",
    "Task",
    "UISpec",
    "adapter_platform",
    "casual_user",
    "international_visitor",
    "laptop_platform",
    "match",
    "pda_platform",
    "population_usability",
    "researcher",
    "soc_platform",
    "train",
]
