"""The resource layer's defining relation: user faculties *must not be
frustrated by* the device's logical resources.

The paper's resource-layer discussion enumerates the specific ways a
platform frustrates a user: wrong language, arcane interfaces, networking
that assumes an administrator, inflexible storage, and an execution engine
that cannot be aborted.  :func:`match` checks each of them and returns a
structured :class:`FrustrationReport` consumed by the LPC constraint
engine and by experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..kernel.errors import ConfigurationError
from .faculties import FacultyProfile
from .platform import PlatformProfile


@dataclass(frozen=True)
class Frustration:
    """One way the platform frustrates the user."""

    aspect: str          #: "language", "ui", "admin", "storage", "execution"
    description: str
    #: severity in (0, 1]; 1.0 makes the device unusable for this user.
    severity: float

    def __post_init__(self) -> None:
        if not (0.0 < self.severity <= 1.0):
            raise ConfigurationError("severity must be in (0, 1]")


@dataclass
class FrustrationReport:
    """Outcome of matching one platform against one user's faculties."""

    platform: str
    user: str
    frustrations: List[Frustration] = field(default_factory=list)

    @property
    def score(self) -> float:
        """Usability in [0, 1]: 1.0 = nothing frustrates this user."""
        score = 1.0
        for item in self.frustrations:
            score *= 1.0 - item.severity
        return score

    @property
    def usable(self) -> bool:
        """No blocking frustration (severity >= 0.9)."""
        return all(f.severity < 0.9 for f in self.frustrations)

    def worst(self) -> Optional[Frustration]:
        if not self.frustrations:
            return None
        return max(self.frustrations, key=lambda f: f.severity)


def match(platform: PlatformProfile, user: FacultyProfile) -> FrustrationReport:
    """Check every resource box against the user's faculties."""
    report = FrustrationReport(platform.name, user.name)
    frs = report.frustrations

    # Language: "Being able to expect that all users will speak the same
    # language is fundamentally a resource that the developer can count on."
    if not user.speaks_any(platform.ui.languages):
        frs.append(Frustration(
            "language",
            f"UI speaks {platform.ui.languages} but user speaks "
            f"{user.languages}",
            0.95))

    # UI style vs literacy.
    if platform.ui.kind == "gui" and user.gui_literacy < 0.3:
        frs.append(Frustration(
            "ui", "graphical interface exceeds the user's GUI literacy", 0.7))
    if platform.ui.kind == "text" and user.technical_skill < 0.5:
        frs.append(Frustration(
            "ui", "command/text interface assumes technical skill", 0.8))
    if not platform.ui.consistent_metaphors:
        # Inconsistent metaphors frustrate in proportion to how little
        # patience the user has for surprises.
        severity = 0.25 + 0.5 * (1.0 - user.frustration_tolerance)
        frs.append(Frustration(
            "ui", "inconsistent interaction metaphors cause surprises",
            min(severity, 1.0)))
    if platform.ui.intuitiveness < 0.5:
        gap = 0.5 - platform.ui.intuitiveness
        severity = min(1.0, (0.3 + gap) * (1.0 - 0.5 * user.domain_knowledge))
        frs.append(Frustration(
            "ui", f"low intuitiveness ({platform.ui.intuitiveness:.2f}) "
            "demands prior knowledge", severity))

    # Networking: "Users are not system administrators, so networking
    # features should be automatically available, self-configuring."
    if platform.net.requires_admin and not user.can_administer_systems:
        frs.append(Frustration(
            "admin",
            "network needs administration the user cannot provide", 0.9))
    if not platform.net.auto_configuring and user.technical_skill < 0.5:
        frs.append(Frustration(
            "admin", "manual network configuration exceeds user skill", 0.6))

    # Storage: "allowing users to flexibly organize information in a manner
    # that suits their purposes."
    if not platform.storage.flexible_organization:
        frs.append(Frustration(
            "storage", "storage does not let the user organise information",
            0.35))

    # Execution: abortability and responsiveness-as-control.
    if not platform.execution.abortable:
        severity = 0.3 + 0.5 * (1.0 - user.frustration_tolerance)
        frs.append(Frustration(
            "execution",
            "tasks cannot be aborted; needless frustration accumulates",
            min(severity, 1.0)))
    if not platform.execution.multitasking:
        frs.append(Frustration(
            "execution", "single-tasking blocks the user's immediate tasks",
            0.3))

    return report


def population_usability(platform: PlatformProfile,
                         users: List[FacultyProfile]) -> float:
    """Fraction of a user population for whom the platform is usable."""
    if not users:
        raise ConfigurationError("population must be non-empty")
    usable = sum(1 for u in users if match(platform, u).usable)
    return usable / len(users)
