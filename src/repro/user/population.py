"""User populations: the lab crowd vs the world outside.

The paper's resource-layer verdict hinges on populations: expectations
that are "not unreasonable since they describe the situation found in our
laboratory" become "unreasonable if the Smart Projector is used outside
our laboratory".  These samplers produce both crowds (and a mixed public
one) with deterministic, stream-isolated randomness.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..kernel.errors import ConfigurationError
from ..resource.faculties import FacultyProfile


def _clip01(rng_value: float) -> float:
    return float(np.clip(rng_value, 0.0, 1.0))


def _sample(rng: np.random.Generator, name: str, languages,
            gui: float, tech: float, domain: float, tolerance: float,
            learning: float, spread: float = 0.08) -> FacultyProfile:
    return FacultyProfile(
        name=name,
        languages=languages,
        gui_literacy=_clip01(rng.normal(gui, spread)),
        technical_skill=_clip01(rng.normal(tech, spread)),
        domain_knowledge=_clip01(rng.normal(domain, spread)),
        frustration_tolerance=_clip01(rng.normal(tolerance, spread)),
        learning_rate=_clip01(rng.normal(learning, spread)),
    )


def lab_population(rng: np.random.Generator, count: int) -> List[FacultyProfile]:
    """Computer scientists performing pervasive computing research."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    return [_sample(rng, f"researcher-{i + 1}", ("en",),
                    gui=0.95, tech=0.9, domain=0.8, tolerance=0.8,
                    learning=0.9, spread=0.04)
            for i in range(count)]


def casual_population(rng: np.random.Generator, count: int) -> List[FacultyProfile]:
    """Users expecting a commercial-grade product."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    return [_sample(rng, f"casual-{i + 1}", ("en",),
                    gui=0.6, tech=0.15, domain=0.4, tolerance=0.35,
                    learning=0.5, spread=0.12)
            for i in range(count)]


def public_population(rng: np.random.Generator, count: int,
                      non_english_fraction: float = 0.25) -> List[FacultyProfile]:
    """A general public mix: mostly casual users, a fraction of whom do
    not speak the UI's language — the internationalisation issue."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    if not (0.0 <= non_english_fraction <= 1.0):
        raise ConfigurationError("fraction must be in [0, 1]")
    out: List[FacultyProfile] = []
    other_languages = (("fr",), ("es",), ("de",), ("ja",))
    for i in range(count):
        if rng.random() < non_english_fraction:
            languages = other_languages[int(rng.integers(0, len(other_languages)))]
        else:
            languages = ("en",)
        out.append(_sample(rng, f"public-{i + 1}", languages,
                           gui=0.55, tech=0.2, domain=0.35, tolerance=0.4,
                           learning=0.5, spread=0.15))
    return out
