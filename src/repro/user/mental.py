"""Mental models: the user side of the abstract layer.

"The key issue that must be addressed in this layer is maintaining
consistency between the user's reasoning and expectations and the logic
and state of the application."  A :class:`MentalModel` is a belief store
the simulated user updates from what they observe; its *consistency*
against the application's actual state is measurable, and every surprise
(expectation violated by observation) is recorded as an abstract-layer
issue.

The module also provides the conceptual-burden model behind experiment
E5: how likely a user is to correctly hold an ``n``-step operating
procedure in mind, given their faculties and the interface's
intuitiveness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

import numpy as np

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator
from ..resource.faculties import FacultyProfile


@dataclass
class Surprise:
    """One observed violation of the user's expectations."""

    time: float
    key: str
    expected: Any
    observed: Any


class MentalModel:
    """What one user currently believes about the system."""

    def __init__(self, sim: Simulator, owner: str,
                 faculties: FacultyProfile) -> None:
        self.sim = sim
        self.owner = owner
        self.faculties = faculties
        self._beliefs: Dict[str, Any] = {}
        self.surprises: List[Surprise] = []
        self.updates = 0

    # ------------------------------------------------------------------
    def believe(self, key: str, value: Any) -> None:
        """Adopt a belief (from instruction, inference, or observation)."""
        self._beliefs[key] = value
        self.updates += 1

    def belief(self, key: str, default: Any = None) -> Any:
        return self._beliefs.get(key, default)

    def forget(self, key: str) -> None:
        self._beliefs.pop(key, None)

    def beliefs(self) -> Dict[str, Any]:
        return dict(self._beliefs)

    # ------------------------------------------------------------------
    def observe(self, key: str, actual: Any) -> bool:
        """Compare expectation against reality and update.

        Returns True when the observation matched the existing belief (or
        there was none); False records a :class:`Surprise` and an
        abstract-layer issue, then corrects the belief — "using software
        becomes a mental exercise similar to debugging".
        """
        expected = self._beliefs.get(key, _ABSENT)
        matched = expected is _ABSENT or expected == actual
        if not matched:
            self.surprises.append(Surprise(self.sim.now, key, expected, actual))
            self.sim.issue("mental", self.owner,
                           f"expected {key}={expected!r}, observed {actual!r}",
                           key=key)
        self._beliefs[key] = actual
        return matched

    def consistency(self, actual_state: Dict[str, Any]) -> float:
        """Fraction of the application's state the user models correctly.

        Keys the user has no belief about count as inconsistent — not
        knowing that a session must be released *is* the failure mode.
        """
        if not actual_state:
            raise ConfigurationError("actual state must be non-empty")
        correct = sum(1 for key, value in actual_state.items()
                      if self._beliefs.get(key, _ABSENT) == value)
        return correct / len(actual_state)


_ABSENT = object()


# ---------------------------------------------------------------------------
# Conceptual burden
# ---------------------------------------------------------------------------

def concept_capacity(faculties: FacultyProfile,
                     intuitiveness: float = 0.7,
                     consistent_metaphors: bool = True) -> float:
    """How many operating concepts this user can reliably hold.

    Built from the paper's ingredients: faculties ("the mental models that
    a user can create will depend greatly on his faculties") and interface
    quality ("common metaphors ... eliminating unnecessary surprises").
    Ranges roughly 2–12 concepts.
    """
    if not (0.0 <= intuitiveness <= 1.0):
        raise ConfigurationError("intuitiveness must be in [0, 1]")
    skill = (0.35 * faculties.gui_literacy + 0.35 * faculties.domain_knowledge
             + 0.30 * faculties.learning_rate)
    capacity = 2.0 + 7.0 * skill + 2.0 * intuitiveness
    if consistent_metaphors:
        capacity += 1.0
    return capacity


def step_success_probability(burden: int, faculties: FacultyProfile,
                             intuitiveness: float = 0.7,
                             consistent_metaphors: bool = True) -> float:
    """Probability of performing one step correctly in an ``burden``-step
    procedure: a logistic in (capacity − burden)."""
    if burden < 1:
        raise ConfigurationError("burden must be >= 1")
    capacity = concept_capacity(faculties, intuitiveness, consistent_metaphors)
    return float(1.0 / (1.0 + np.exp(-(capacity - burden) / 1.5)))


def completion_probability(burden: int, faculties: FacultyProfile,
                           intuitiveness: float = 0.7,
                           consistent_metaphors: bool = True,
                           retries: int = 1) -> float:
    """Probability the whole procedure is completed without abandoning.

    Each of the ``burden`` steps succeeds independently with the step
    probability; a failed step may be retried up to ``retries`` times
    scaled by the user's frustration tolerance (low-tolerance users give
    up on the first stumble).  This closed form is what experiment E5
    compares against the simulated :class:`~repro.user.behavior.UserAgent`.
    """
    p = step_success_probability(burden, faculties, intuitiveness,
                                 consistent_metaphors)
    effective_retries = retries * faculties.frustration_tolerance
    p_step = 1.0 - (1.0 - p) ** (1.0 + effective_retries)
    return float(p_step ** burden)
