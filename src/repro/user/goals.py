"""The intentional layer: user goals and design purpose.

"We believe that the probability of success is greatly enhanced when a
system's design is in harmony with the user's goals."  The paper's own
honesty test — the Smart Projector is in harmony with *researchers'* goals
but not a casual presenter's — is exactly what :func:`harmony` computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..kernel.errors import ConfigurationError
from ..resource.faculties import FacultyProfile


@dataclass(frozen=True)
class Goal:
    """Something a user is trying to accomplish *right now*.

    Goals are the fastest-changing stratum of the user column ("a user's
    goals in using a device may change by the minute").
    """

    name: str
    #: capabilities the goal needs from the system, e.g. ``"project-display"``.
    requires: Tuple[str, ...]
    #: how much setup the user will tolerate, in manual steps.
    acceptable_burden: int = 4
    #: does the user accept having to administer infrastructure?
    tolerates_administration: bool = False
    importance: float = 0.8

    def __post_init__(self) -> None:
        if not self.requires:
            raise ConfigurationError("a goal must require something")
        if self.acceptable_burden < 1:
            raise ConfigurationError("acceptable burden must be >= 1")
        if not (0.0 <= self.importance <= 1.0):
            raise ConfigurationError("importance must be in [0, 1]")


@dataclass(frozen=True)
class DesignPurpose:
    """Why a system was built — "the reason it was created and the needs
    it attempts to fulfill"."""

    name: str
    #: capabilities the design actually delivers.
    provides: Tuple[str, ...]
    #: manual steps its operation demands of the user.
    demanded_burden: int
    #: does operating it assume administration skill?
    assumes_administration: bool
    #: the population the designers had in mind.
    intended_users: str

    def __post_init__(self) -> None:
        if self.demanded_burden < 1:
            raise ConfigurationError("demanded burden must be >= 1")


@dataclass
class HarmonyReport:
    """How well a design purpose serves one user's goal."""

    goal: str
    purpose: str
    coverage: float        #: fraction of required capabilities provided
    burden_fit: float      #: 1.0 when demanded burden <= acceptable
    administration_fit: float
    notes: List[str] = field(default_factory=list)

    @property
    def score(self) -> float:
        """Harmony in [0, 1]: geometric-style combination so any hard
        mismatch drags the whole score down."""
        return self.coverage * (0.5 + 0.5 * self.burden_fit) * \
            (0.5 + 0.5 * self.administration_fit)

    @property
    def in_harmony(self) -> bool:
        return self.score >= 0.6 and self.coverage == 1.0


def harmony(purpose: DesignPurpose, goal: Goal,
            user: Optional[FacultyProfile] = None) -> HarmonyReport:
    """Assess the intentional-layer relation: the design's purpose *must
    be in harmony with* the user's goals."""
    provided = set(purpose.provides)
    required = set(goal.requires)
    covered = required & provided
    coverage = len(covered) / len(required)
    notes = []
    if coverage < 1.0:
        notes.append(f"missing capabilities: {sorted(required - provided)}")

    if purpose.demanded_burden <= goal.acceptable_burden:
        burden_fit = 1.0
    else:
        burden_fit = goal.acceptable_burden / purpose.demanded_burden
        notes.append(
            f"demands {purpose.demanded_burden} steps; user accepts "
            f"{goal.acceptable_burden}")

    administration_fit = 1.0
    if purpose.assumes_administration and not goal.tolerates_administration:
        can_cope = user is not None and user.can_administer_systems
        administration_fit = 1.0 if can_cope else 0.0
        if not can_cope:
            notes.append("design assumes an administrator the user is not")

    return HarmonyReport(goal.name, purpose.name, coverage, burden_fit,
                         administration_fit, notes)


def adoption_probability(report: HarmonyReport,
                         user: Optional[FacultyProfile] = None) -> float:
    """Probability the user adopts (keeps using) the system.

    "If this burden is greater than what users are willing to bear in
    meeting their goals, then the system will not be used."  Adoption is
    the harmony score, softened slightly by frustration tolerance.
    """
    tolerance = user.frustration_tolerance if user is not None else 0.5
    return float(min(1.0, report.score * (0.8 + 0.4 * tolerance)))


# ---------------------------------------------------------------------------
# The paper's own intentional-layer analysis, as presets
# ---------------------------------------------------------------------------

def presentation_goal() -> Goal:
    """"A user wants to make a presentation, but does not necessarily want
    to perform unnecessary system interconnection and configuration."""
    return Goal("make-presentation",
                requires=("project-display", "control-projector"),
                acceptable_burden=3, tolerates_administration=False,
                importance=0.9)


def research_goal() -> Goal:
    """The intended users: researchers demonstrating service discovery."""
    return Goal("research-demonstration",
                requires=("project-display", "control-projector",
                          "observe-discovery"),
                acceptable_burden=10, tolerates_administration=True,
                importance=0.8)


def research_prototype_purpose() -> DesignPurpose:
    """"Our Smart Projector is designed as a vehicle to research, measure,
    and demonstrate service discovery and other pervasive computing
    infrastructure issues."""
    return DesignPurpose("smart-projector-prototype",
                         provides=("project-display", "control-projector",
                                   "observe-discovery"),
                         demanded_burden=8, assumes_administration=True,
                         intended_users="researchers")


def commercial_product_purpose() -> DesignPurpose:
    """The commercial-grade variant the paper says would be needed."""
    return DesignPurpose("smart-projector-product",
                         provides=("project-display", "control-projector"),
                         demanded_burden=2, assumes_administration=False,
                         intended_users="presenters")
