"""Sampling physical profiles for user populations.

Physiology is the slowest-changing stratum of the user column.  Samplers
draw :class:`~repro.phys.human.PhysicalProfile` variation (acuity,
dexterity, hearing, articulation) from plausible distributions so that
ergonomics and voice experiments see populations, not a single idealised
body.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..kernel.errors import ConfigurationError
from ..phys.human import PhysicalProfile


def _clip01(x: float) -> float:
    return float(np.clip(x, 0.05, 1.0))


def sample_physical_profile(rng: np.random.Generator, name: str,
                            age_group: str = "adult") -> PhysicalProfile:
    """Draw one body.

    Age groups shift the means the way population norms do: ``older``
    users have lower acuity/dexterity and higher hearing thresholds;
    ``young`` users the opposite.
    """
    if age_group not in ("young", "adult", "older"):
        raise ConfigurationError(f"unknown age group {age_group!r}")
    shift = {"young": 0.05, "adult": 0.0, "older": -0.2}[age_group]
    hearing_shift = {"young": -3.0, "adult": 0.0, "older": 12.0}[age_group]
    return PhysicalProfile(
        name=name,
        speech_level_db=float(rng.normal(62.0, 3.0)),
        speech_clarity=_clip01(rng.normal(0.93 + shift / 2, 0.04)),
        vision_acuity=_clip01(rng.normal(0.9 + shift, 0.1)),
        dexterity=_clip01(rng.normal(0.9 + shift, 0.08)),
        hearing_threshold_db=float(max(0.0, rng.normal(25.0 + hearing_shift, 4.0))),
        reach_m=float(np.clip(rng.normal(0.72, 0.06), 0.45, 1.0)),
        carry_limit_kg=float(np.clip(rng.normal(2.5 + shift, 0.6), 0.5, 6.0)),
    )


def sample_bodies(rng: np.random.Generator, count: int, prefix: str = "user",
                  age_group: str = "adult") -> List[PhysicalProfile]:
    """Draw ``count`` bodies with deterministic names."""
    if count < 1:
        raise ConfigurationError("count must be >= 1")
    return [sample_physical_profile(rng, f"{prefix}-{i + 1}", age_group)
            for i in range(count)]
