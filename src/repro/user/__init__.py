"""The user column: physiology sampling, mental models, goals, behaviour.

The paper's central design move is keeping the human in the model at
every layer; this package provides the user-side artifacts the device-side
packages are checked against.
"""

from .behavior import AttemptResult, Procedure, Step, UserAgent
from .goals import (
    DesignPurpose,
    Goal,
    HarmonyReport,
    adoption_probability,
    commercial_product_purpose,
    harmony,
    presentation_goal,
    research_goal,
    research_prototype_purpose,
)
from .mental import (
    MentalModel,
    Surprise,
    completion_probability,
    concept_capacity,
    step_success_probability,
)
from .physiology import sample_bodies, sample_physical_profile
from .population import casual_population, lab_population, public_population

__all__ = [
    "AttemptResult",
    "DesignPurpose",
    "Goal",
    "HarmonyReport",
    "MentalModel",
    "Procedure",
    "Step",
    "Surprise",
    "UserAgent",
    "adoption_probability",
    "casual_population",
    "commercial_product_purpose",
    "completion_probability",
    "concept_capacity",
    "harmony",
    "lab_population",
    "presentation_goal",
    "public_population",
    "research_goal",
    "research_prototype_purpose",
    "sample_bodies",
    "sample_physical_profile",
    "step_success_probability",
]
