"""Simulated user behaviour: procedures, mistakes, frustration, giving up.

The :class:`UserAgent` executes a :class:`Procedure` (an ordered list of
:class:`Step`) the way a human does: thinking time per step, a chance of
skipping or fumbling each step that grows with the procedure's conceptual
burden, frustration that accumulates with every stumble, and abandonment
when frustration exceeds temperament — the executable form of "if this
burden is greater than what users are willing to bear ... the system will
not be used".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..kernel.errors import ConfigurationError
from ..kernel.process import spawn
from ..kernel.scheduler import Simulator
from ..resource.faculties import FacultyProfile
from .mental import MentalModel, step_success_probability


@dataclass
class Step:
    """One manual step of an operating procedure.

    Args:
        name: identifier ("start_vnc_server").
        action: zero-argument callable performing the step's system effect.
        think_time: mean seconds the user needs before acting.
        optional_feeling: steps that *feel* optional ("release the
            session") are the ones users skip when their mental model is
            incomplete — skipping them does not block progress, it breaks
            the system later.
        verify: optional zero-argument predicate the user can run to see
            whether the step worked; without one, mistakes go unnoticed.
    """

    name: str
    action: Callable[[], None]
    think_time: float = 2.0
    optional_feeling: bool = False
    verify: Optional[Callable[[], bool]] = None


@dataclass
class Procedure:
    """An ordered operating procedure; its length is its burden."""

    name: str
    steps: List[Step]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ConfigurationError("a procedure needs at least one step")

    @property
    def burden(self) -> int:
        return len(self.steps)


@dataclass
class AttemptResult:
    """Outcome of one procedure attempt."""

    procedure: str
    user: str
    completed: bool
    abandoned: bool
    skipped_steps: List[str] = field(default_factory=list)
    fumbles: int = 0
    elapsed: float = 0.0
    frustration: float = 0.0


class UserAgent:
    """One simulated user working through procedures.

    Args:
        sim: simulator.
        name: user name.
        faculties: skills and temperament.
        intuitiveness / consistent_metaphors: interface quality (affects
            per-step success, see :mod:`repro.user.mental`).
        frustration_per_fumble: cost of each stumble; abandonment happens
            when accumulated cost exceeds ``frustration_tolerance``.
    """

    def __init__(self, sim: Simulator, name: str, faculties: FacultyProfile,
                 intuitiveness: float = 0.7,
                 consistent_metaphors: bool = True,
                 frustration_per_fumble: float = 0.25) -> None:
        self.sim = sim
        self.name = name
        self.faculties = faculties
        self.intuitiveness = intuitiveness
        self.consistent_metaphors = consistent_metaphors
        self.frustration_per_fumble = frustration_per_fumble
        self.mental = MentalModel(sim, name, faculties)
        self._rng = sim.rng(f"user.{name}")
        self.results: List[AttemptResult] = []

    # ------------------------------------------------------------------
    def attempt(self, procedure: Procedure,
                on_done: Optional[Callable[[AttemptResult], None]] = None):
        """Run the procedure as a simulation process."""
        return spawn(self.sim, self._run(procedure, on_done),
                     name=f"{self.name}.{procedure.name}")

    def _run(self, procedure: Procedure,
             on_done: Optional[Callable[[AttemptResult], None]]):
        result = AttemptResult(procedure.name, self.name, False, False)
        started = self.sim.now
        frustration = 0.0
        p_step = step_success_probability(
            procedure.burden, self.faculties, self.intuitiveness,
            self.consistent_metaphors)
        for step in procedure.steps:
            # Thinking time: slower when the procedure is harder for them.
            think = step.think_time * (0.5 + (1.0 - p_step))
            yield float(self._rng.exponential(think))

            if self._rng.random() > p_step:
                # The user does not correctly recall/execute this step.
                if step.optional_feeling:
                    # Feels skippable: silently omitted, no frustration —
                    # the dangerous case (forgotten release, forgotten VNC
                    # server).
                    result.skipped_steps.append(step.name)
                    self.sim.issue("mental", self.name,
                                   f"skipped step {step.name!r} of "
                                   f"{procedure.name} (incomplete mental model)",
                                   step=step.name)
                    continue
                # Mandatory-feeling step fumbled: user notices, retries.
                result.fumbles += 1
                frustration += self.frustration_per_fumble
                self.sim.trace("user.fumble", self.name,
                               f"fumbled {step.name!r} "
                               f"(frustration {frustration:.2f})")
                if frustration > self.faculties.frustration_tolerance:
                    result.abandoned = True
                    result.frustration = frustration
                    result.elapsed = self.sim.now - started
                    self.sim.issue("intentional", self.name,
                                   f"abandoned {procedure.name} after "
                                   f"{result.fumbles} fumbles",
                                   fumbles=result.fumbles)
                    self._finish(result, on_done)
                    return result
                yield float(self._rng.exponential(step.think_time))

            step.action()
            self.mental.believe(f"did.{step.name}", True)

            if step.verify is not None and not step.verify():
                # The system visibly did not do what the user expected.
                self.mental.observe(f"ok.{step.name}", False)
                result.fumbles += 1
                frustration += self.frustration_per_fumble
                if frustration > self.faculties.frustration_tolerance:
                    result.abandoned = True
                    result.frustration = frustration
                    result.elapsed = self.sim.now - started
                    self._finish(result, on_done)
                    return result
                # One recovery try: re-run the action after a pause.
                yield float(self._rng.exponential(step.think_time * 2))
                step.action()

        result.completed = True
        result.frustration = frustration
        result.elapsed = self.sim.now - started
        self._finish(result, on_done)
        return result

    def _finish(self, result: AttemptResult,
                on_done: Optional[Callable[[AttemptResult], None]]) -> None:
        self.results.append(result)
        if on_done is not None:
            on_done(result)

    # ------------------------------------------------------------------
    @property
    def completion_rate(self) -> float:
        if not self.results:
            return 0.0
        return sum(r.completed for r in self.results) / len(self.results)
