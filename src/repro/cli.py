"""Command-line interface: ``python -m repro``.

Subcommands:

* ``figures [N]`` — render the paper's figures (all, or one of 1-5).
* ``experiments`` — list every registered experiment id.
* ``run <id> [--seed S]`` — run one experiment and print its table.
* ``demo [--seed S] [--horizon T]`` — run the instrumented Smart Projector
  scenario and print the layered LPC report plus paper coverage.
* ``bench`` — run the E10 kernel/sweep microbenchmarks, write
  ``BENCH_kernel.json`` / ``BENCH_sweeps.json``, and fail when event
  throughput regresses >20% against the committed baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.analysis import compare_with_paper
from .core.figures import ALL_FIGURES, render_all
from .experiments import list_experiments, run_experiment
from .kernel.errors import ExperimentError, ReproError


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.number is None:
        print(render_all())
        return 0
    renderer = ALL_FIGURES.get(args.number)
    if renderer is None:
        print(f"no figure {args.number}; choose from {sorted(ALL_FIGURES)}",
              file=sys.stderr)
        return 2
    print(renderer())
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    try:
        result = run_experiment(args.experiment_id, **kwargs)
    except ExperimentError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except TypeError:
        # Experiment without a seed parameter: run with defaults.
        result = run_experiment(args.experiment_id)
    print(result.format_table())
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .experiments.e9_analysis import _scripted_week

    room, model, _instrument = _scripted_week(seed=args.seed,
                                              horizon=args.horizon)
    print(model.report())
    print()
    print(compare_with_paper(model.concerns()).summary())
    print(f"\nframes projected during the scripted week: "
          f"{room.projector.frames_displayed}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of 'A Conceptual Model for "
                    "Pervasive Computing' (Ciarletta & Dima, 2000)")
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="render the paper's figures")
    figures.add_argument("number", nargs="?", type=int, default=None,
                         help="figure number 1-5 (default: all)")
    figures.set_defaults(func=_cmd_figures)

    experiments = sub.add_parser("experiments",
                                 help="list experiment ids")
    experiments.set_defaults(func=_cmd_experiments)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id")
    run.add_argument("--seed", type=int, default=None)
    run.set_defaults(func=_cmd_run)

    demo = sub.add_parser("demo", help="instrumented Smart Projector demo")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--horizon", type=float, default=240.0)
    demo.set_defaults(func=_cmd_demo)

    report = sub.add_parser(
        "report", help="run every experiment and print the full report")
    report.add_argument("--budget", choices=("quick", "full"),
                        default="quick")
    report.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment ids")
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench", help="run perf microbenchmarks and write BENCH_*.json")
    bench.add_argument("--out-dir", default="benchmarks",
                       help="directory for BENCH_<name>.json files")
    bench.add_argument("--baseline", default="benchmarks/baseline_kernel.json",
                       help="committed baseline to gate against")
    bench.add_argument("--raw", default=None,
                       help="pytest --benchmark-json output to ingest for "
                            "the kernel throughput figure")
    bench.add_argument("--workers", type=int, default=4,
                       help="worker count for the parallel sweep benchmark")
    bench.add_argument("--repeats", type=int, default=5,
                       help="repeats per kernel microbenchmark")
    bench.add_argument("--update-baseline", action="store_true",
                       help="rewrite the committed baseline instead of "
                            "gating against it")
    bench.set_defaults(func=_cmd_bench)

    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    from .experiments.report import build_report

    print(build_report(budget=args.budget, only=args.only))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import pathlib

    from .experiments import bench

    out_dir = pathlib.Path(args.out_dir)
    baseline_path = pathlib.Path(args.baseline)

    kernel = bench.bench_kernel(repeats=args.repeats)
    if args.raw is not None:
        # Prefer the statistics-grade pytest-benchmark numbers when the
        # Makefile hands us its --benchmark-json dump.
        raw_path = pathlib.Path(args.raw)
        if not raw_path.exists():
            print(f"error: --raw file not found: {raw_path}", file=sys.stderr)
            return 2
        raw = bench.kernel_metrics_from_pytest_json(raw_path)
        if raw is not None:
            kernel.update(raw)
    kernel_path = bench.write_bench_json(out_dir, kernel)
    print(f"kernel: {kernel['events_per_sec']:,.0f} events/sec "
          f"(public schedule {kernel['events_per_sec_public_schedule']:,.0f})"
          f" -> {kernel_path}")

    sweeps = bench.bench_sweeps(workers=args.workers)
    sweeps_path = bench.write_bench_json(out_dir, sweeps)
    print(f"sweeps: serial {sweeps['serial_wall_s']:.2f}s, "
          f"parallel({sweeps['workers']}) {sweeps['parallel_wall_s']:.2f}s, "
          f"cache hit rate {sweeps['link_cache']['hit_rate']:.1%}"
          f" -> {sweeps_path}")
    if not sweeps["rows_identical"]:
        print("error: parallel sweep rows differ from serial rows",
              file=sys.stderr)
        return 1

    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(kernel_path.read_text())
        print(f"baseline updated -> {baseline_path}")
        return 0

    baseline = bench.load_baseline(baseline_path)
    failures = bench.check_regression(kernel, baseline)
    for failure in failures:
        print(f"regression: {failure}", file=sys.stderr)
    if not failures:
        if baseline is None:
            print("regression gate: skipped (no baseline; run "
                  "`make bench-baseline` to create one)")
        elif baseline.get("source") != kernel.get("source"):
            print(f"regression gate: skipped (baseline source "
                  f"{baseline.get('source')!r} != current "
                  f"{kernel.get('source')!r})")
        else:
            print("regression gate: ok")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # output piped into head etc.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
