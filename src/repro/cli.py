"""Command-line interface: ``python -m repro``.

Subcommands:

* ``figures [N]`` — render the paper's figures (all, or one of 1-5).
* ``experiments`` — list every registered experiment id.
* ``run <id> [--seed S]`` — run one experiment and print its table.
* ``demo [--seed S] [--horizon T]`` — run the instrumented Smart Projector
  scenario and print the layered LPC report plus paper coverage.
* ``report --lpc`` — run the scripted-week scenario and print the
  per-LPC-layer telemetry report (issue grid plus metrics).
  ``--format json`` emits the same grid machine-readably; ``--stream``
  renders from a live streaming aggregator instead of replaying stored
  records (byte-identical either way).
* ``bench`` — run the E10 kernel/sweep microbenchmarks plus the
  population-scale culling, run-cache, telemetry-export and sharded
  multi-cell benchmarks, write ``BENCH_kernel.json`` /
  ``BENCH_sweeps.json`` / ``BENCH_trace.json`` / ``BENCH_scale.json`` /
  ``BENCH_cache.json`` / ``BENCH_telemetry.json`` /
  ``BENCH_shard.json``, and fail when event throughput regresses >20%
  against the committed baseline (or the culled/exhaustive outcomes
  diverge, or the warm-cache replay stops paying, or the columnar
  exporter loses its size/speed edge over JSONL, or a sharded run's
  outcomes diverge from the single-process oracle).
* ``cache`` — inspect (``stats``) or empty (``clear``) the
  content-addressed run cache behind incremental sweeps; honours
  ``REPRO_CACHE_DIR``.
* ``check`` — the determinism + layer-boundary static pass
  (``repro.checks``); exits 1 on unsuppressed findings.  ``--format
  json`` emits machine-readable findings, ``--list-rules`` prints the
  rule catalogue, ``--write-baseline`` drafts a suppression template.

``run`` and ``demo`` accept ``--trace CATEGORY_PREFIX`` and
``--trace-out FILE``: trace records (and completed spans) stream to the
file while the command runs — one JSON object per line by default, or a
packed struct-of-arrays ``.npz`` with ``--telemetry-format columnar``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Iterator, List, Optional

from .core.analysis import compare_with_paper
from .core.figures import ALL_FIGURES, render_all
from .experiments import list_experiments, run_experiment
from .kernel.errors import ExperimentError, ReproError


def _cmd_figures(args: argparse.Namespace) -> int:
    if args.number is None:
        print(render_all())
        return 0
    renderer = ALL_FIGURES.get(args.number)
    if renderer is None:
        print(f"no figure {args.number}; choose from {sorted(ALL_FIGURES)}",
              file=sys.stderr)
        return 2
    print(renderer())
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    for experiment_id in list_experiments():
        print(experiment_id)
    return 0


@contextlib.contextmanager
def _trace_export(args: argparse.Namespace) -> Iterator[None]:
    """Stream records/spans to ``--trace-out`` while the body runs.

    Installs process-default tracer hooks (every simulator built inside the
    command picks them up) and removes them afterwards, so nothing leaks
    into later in-process callers.
    """
    prefix = getattr(args, "trace", None)
    out = getattr(args, "trace_out", None)
    if prefix is None and out is None:
        yield
        return
    import pathlib

    from .kernel import trace as ktrace

    telemetry_format = getattr(args, "telemetry_format", "jsonl")
    if prefix is None:
        prefix = ""  # empty prefix = everything
    if telemetry_format == "columnar":
        from .telemetry.columnar import ColumnarWriter

        writer = ColumnarWriter(pathlib.Path(out or "trace.npz"))
        label = "columnar"
    else:
        from .telemetry.jsonl import JsonlWriter

        writer = JsonlWriter(pathlib.Path(out or "trace.jsonl"))
        label = "JSONL"
    remove_record = ktrace.add_default_subscriber(prefix,
                                                  writer.write_record)

    def on_span(span: "ktrace.Span") -> None:
        if span.matches(prefix):
            writer.write_span(span)

    remove_span = ktrace.add_default_span_hook(on_span)
    try:
        yield
    finally:
        remove_record()
        remove_span()
        writer.close()
        print(f"trace: {writer.lines} {label} lines -> {writer.path}",
              file=sys.stderr)


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="CATEGORY_PREFIX", default=None,
                        help="stream trace records/spans under this "
                             "category prefix ('' = everything)")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="trace destination (default: trace.jsonl, "
                             "or trace.npz with --telemetry-format "
                             "columnar)")
    parser.add_argument("--telemetry-format", choices=("jsonl", "columnar"),
                        default="jsonl",
                        help="trace export format: line-per-object JSONL "
                             "(default) or packed columnar .npz")


@contextlib.contextmanager
def _cache_policy(args: argparse.Namespace) -> Iterator[None]:
    """Apply ``--cache`` / ``--no-cache`` for the body via the env knobs
    every ``sweep()`` consults, restoring them afterwards so in-process
    callers (tests) see no leakage."""
    import os

    from .experiments.cache import CACHE_OFF_ENV, CACHE_ON_ENV

    updates = {}
    if getattr(args, "cache", False):
        updates[CACHE_ON_ENV] = "1"
    if getattr(args, "no_cache", False):
        updates[CACHE_OFF_ENV] = "1"
    saved = {name: os.environ.get(name) for name in updates}
    os.environ.update(updates)
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def _cmd_run(args: argparse.Namespace) -> int:
    kwargs = {}
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if getattr(args, "shards", None) is not None:
        kwargs["shards"] = args.shards
    with _trace_export(args), _cache_policy(args):
        try:
            result = run_experiment(args.experiment_id, **kwargs)
        except ExperimentError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        except TypeError:
            if kwargs.pop("shards", None) is not None:
                # Don't silently rerun single-process when sharding was
                # asked for explicitly.
                print(f"error: experiment {args.experiment_id!r} is not "
                      "shard-aware (no 'shards' parameter)",
                      file=sys.stderr)
                return 2
            # Experiment without a seed parameter: run with defaults.
            result = run_experiment(args.experiment_id)
    print(result.format_table())
    if result.meta.get("mode") in ("processes", "inline"):
        print(f"shards: {result.meta['shards']} ({result.meta['mode']}), "
              f"{result.meta['rounds']} sync rounds, "
              f"{result.meta['boundary_events']} boundary events",
              file=sys.stderr)
    if result.meta.get("cache") is not None:
        cache_meta = result.meta["cache"]
        print(f"cache: {cache_meta['hits']:g} hits / "
              f"{cache_meta['misses']:g} misses "
              f"(hit rate {cache_meta['hit_rate']:.1%})", file=sys.stderr)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .experiments.e9_analysis import _scripted_week

    with _trace_export(args):
        room, model, _instrument = _scripted_week(seed=args.seed,
                                                  horizon=args.horizon)
    print(model.report())
    print()
    print(compare_with_paper(model.concerns()).summary())
    print(f"\nframes projected during the scripted week: "
          f"{room.projector.frames_displayed}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Executable reproduction of 'A Conceptual Model for "
                    "Pervasive Computing' (Ciarletta & Dima, 2000)")
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="render the paper's figures")
    figures.add_argument("number", nargs="?", type=int, default=None,
                         help="figure number 1-5 (default: all)")
    figures.set_defaults(func=_cmd_figures)

    experiments = sub.add_parser("experiments",
                                 help="list experiment ids")
    experiments.set_defaults(func=_cmd_experiments)

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment_id")
    run.add_argument("--seed", type=int, default=None)
    run.add_argument("--shards", type=int, default=None,
                     help="partition the experiment across N shard "
                          "processes (conservative parallel DES); only "
                          "shard-aware experiments such as E11 accept it")
    run.add_argument("--cache", action="store_true",
                     help="replay (point, seed) pairs from the "
                          "content-addressed run cache where possible")
    run.add_argument("--no-cache", action="store_true",
                     help="force the run cache off (overrides --cache "
                          "and REPRO_CACHE)")
    _add_trace_flags(run)
    run.set_defaults(func=_cmd_run)

    demo = sub.add_parser("demo", help="instrumented Smart Projector demo")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--horizon", type=float, default=240.0)
    _add_trace_flags(demo)
    demo.set_defaults(func=_cmd_demo)

    report = sub.add_parser(
        "report", help="run every experiment and print the full report")
    report.add_argument("--budget", choices=("quick", "full"),
                        default="quick")
    report.add_argument("--only", nargs="*", default=None,
                        help="subset of experiment ids")
    report.add_argument("--lpc", action="store_true",
                        help="instead: run the scripted-week scenario and "
                             "print the per-LPC-layer telemetry report")
    report.add_argument("--seed", type=int, default=42,
                        help="scenario seed (with --lpc)")
    report.add_argument("--horizon", type=float, default=240.0,
                        help="scenario horizon in seconds (with --lpc)")
    report.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="with --lpc: classic text grid or the same "
                             "grid as byte-stable JSON")
    report.add_argument("--stream", action="store_true",
                        help="with --lpc: render from a streaming "
                             "aggregator folded during the run instead "
                             "of replaying stored records (byte-"
                             "identical output)")
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench", help="run perf microbenchmarks and write BENCH_*.json")
    bench.add_argument("--out-dir", default="benchmarks",
                       help="directory for BENCH_<name>.json files")
    bench.add_argument("--baseline", default="benchmarks/baseline_kernel.json",
                       help="committed baseline to gate against")
    bench.add_argument("--raw", default=None,
                       help="pytest --benchmark-json output to ingest for "
                            "the kernel throughput figure")
    bench.add_argument("--workers", type=int, default=4,
                       help="worker count for the parallel sweep benchmark")
    bench.add_argument("--repeats", type=int, default=5,
                       help="repeats per kernel microbenchmark")
    bench.add_argument("--kernel-only", action="store_true",
                       help="run only the kernel microbenchmark and its "
                            "regression gate (the `make bench-kernel` leg)")
    bench.add_argument("--update-baseline", action="store_true",
                       help="rewrite the committed baseline instead of "
                            "gating against it")
    bench.set_defaults(func=_cmd_bench)

    cache = sub.add_parser(
        "cache", help="inspect or clear the incremental-sweep run cache")
    cache.add_argument("action", choices=("stats", "clear"),
                       help="'stats' prints the on-disk shape; 'clear' "
                            "deletes every entry")
    cache.add_argument("--dir", default=None,
                       help="cache directory (default: REPRO_CACHE_DIR "
                            "or ~/.cache/repro/runs)")
    cache.set_defaults(func=_cmd_cache)

    check = sub.add_parser(
        "check", help="determinism + layer-boundary static analysis")
    check.add_argument("paths", nargs="*", default=None,
                       help="files/directories to analyse (default: src)")
    check.add_argument("--format", choices=("text", "json"),
                       default="text", dest="fmt",
                       help="findings as human text or machine JSON")
    check.add_argument("--baseline", default="checks_baseline.json",
                       help="JSON suppression file (applied when it "
                            "exists; entries need a justification)")
    check.add_argument("--jobs", type=int, default=4,
                       help="parallel analysis processes (1 = serial)")
    check.add_argument("--list-rules", action="store_true",
                       help="print the rule catalogue and exit")
    check.add_argument("--write-baseline", metavar="FILE", default=None,
                       help="write a suppression template covering the "
                            "current findings (justifications left empty "
                            "for the operator to fill in)")
    check.add_argument("--incremental", action="store_true",
                       help="reuse per-file results keyed on source "
                            "digests; only changed files (plus their "
                            "call-graph SCC region) are re-analysed")
    check.add_argument("--incremental-cache",
                       default=".repro_checks_cache.json",
                       help="cache file for --incremental (default: "
                            ".repro_checks_cache.json)")
    check.set_defaults(func=_cmd_check)

    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    if args.lpc:
        import json

        from .experiments.e9_analysis import _scripted_week
        from .telemetry.report import layer_report, layer_report_data

        user_sources = {"presenter", "casual-1", "visitor-1"}
        title = (f"LPC run report — scripted week (seed={args.seed}, "
                 f"horizon={args.horizon:g}s)")
        if args.stream:
            # Fold telemetry live instead of replaying stored records:
            # default hooks catch the simulator _scripted_week builds.
            from .telemetry.streaming import StreamingAggregator

            aggregator = StreamingAggregator(user_sources=user_sources)
            remove = aggregator.install_default()
            try:
                room, _model, _instrument = _scripted_week(
                    seed=args.seed, horizon=args.horizon)
            finally:
                remove()
            source = aggregator.bind(room.sim)
        else:
            room, _model, _instrument = _scripted_week(
                seed=args.seed, horizon=args.horizon)
            source = room.sim
        if args.fmt == "json":
            data = layer_report_data(source, user_sources=user_sources,
                                     title=title)
            print(json.dumps(data, sort_keys=True, indent=2))
        else:
            print(layer_report(source, user_sources=user_sources,
                               title=title), end="")
        return 0
    if args.fmt == "json":
        print("error: --format json needs --lpc", file=sys.stderr)
        return 2
    from .experiments.report import build_report

    print(build_report(budget=args.budget, only=args.only))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import pathlib

    from .experiments.cache import RunCache

    cache = RunCache(pathlib.Path(args.dir) if args.dir else None)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cache: removed {removed} entries from {cache.directory}")
        return 0
    shape = cache.disk_stats()
    print(f"directory : {shape['directory']}")
    print(f"entries   : {shape['entries']}")
    print(f"bytes     : {shape['bytes']}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    import pathlib

    from .checks import RULES, run_checks, write_baseline

    if args.list_rules:
        for code, rule in sorted(RULES.items()):
            print(f"{code} [{rule.severity}] {rule.title}")
            print(f"    {rule.rationale}")
            print(f"    fix: {rule.hint}")
        return 0

    paths = [pathlib.Path(p) for p in (args.paths or ["src"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2
    baseline = pathlib.Path(args.baseline)
    cache = (pathlib.Path(args.incremental_cache)
             if args.incremental else None)
    report = run_checks(paths, baseline=baseline, jobs=args.jobs,
                        incremental_cache=cache)

    if args.write_baseline is not None:
        out = pathlib.Path(args.write_baseline)
        count = write_baseline(report.findings, out)
        print(f"baseline template: {count} entries -> {out} "
              "(fill in justifications before use)")
        return 0

    print(report.to_json() if args.fmt == "json"
          else report.format_text())
    return 0 if report.clean else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import pathlib

    from .experiments import bench

    out_dir = pathlib.Path(args.out_dir)
    baseline_path = pathlib.Path(args.baseline)

    kernel = bench.bench_kernel(repeats=args.repeats)
    if args.raw is not None:
        # Prefer the statistics-grade pytest-benchmark numbers when the
        # Makefile hands us its --benchmark-json dump.
        raw_path = pathlib.Path(args.raw)
        if not raw_path.exists():
            print(f"error: --raw file not found: {raw_path}", file=sys.stderr)
            return 2
        raw = bench.kernel_metrics_from_pytest_json(raw_path)
        if raw is not None:
            kernel.update(raw)
    kernel_path = bench.write_bench_json(out_dir, kernel)
    print(f"kernel: {kernel['events_per_sec']:,.0f} events/sec "
          f"(public schedule {kernel['events_per_sec_public_schedule']:,.0f})"
          f" -> {kernel_path}")
    if kernel.get("compiled_available"):
        print(f"kernel backend: {kernel['backend']} "
              f"(requested {kernel['backend_requested']})")
    else:
        # Explicit skip marker: the compiled backend must never degrade
        # to pure Python silently (ISSUE 10 acceptance).
        print(f"kernel backend: python — compiled backend skipped: "
              f"{kernel.get('compiled_skipped_reason', 'unknown')}")

    if args.kernel_only:
        kernel_baseline = bench.load_baseline(baseline_path)
        failures = bench.check_regression(kernel, kernel_baseline)
        for failure in failures:
            print(f"regression: {failure}", file=sys.stderr)
        if not failures:
            if kernel_baseline is None:
                print("regression gate (kernel only): skipped (no baseline)")
            elif kernel_baseline.get("source") != kernel.get("source"):
                print(f"regression gate (kernel only): skipped (baseline "
                      f"source {kernel_baseline.get('source')!r} != current "
                      f"{kernel.get('source')!r})")
            else:
                print("regression gate (kernel only): ok")
        return 1 if failures else 0

    sweeps = bench.bench_sweeps(workers=args.workers)
    sweeps_path = bench.write_bench_json(out_dir, sweeps)
    print(f"sweeps: serial {sweeps['serial_wall_s']:.2f}s, "
          f"parallel({sweeps['workers']}) {sweeps['parallel_wall_s']:.2f}s "
          f"({sweeps['parallel_speedup']:.2f}x on {sweeps['cpus']} cpus), "
          f"cache hit rate {sweeps['link_cache']['hit_rate']:.1%}"
          f" -> {sweeps_path}")

    trace = bench.bench_trace(repeats=args.repeats)
    if args.raw is not None:
        raw_trace = bench.trace_metrics_from_pytest_json(pathlib.Path(args.raw))
        if raw_trace is not None:
            trace.update(raw_trace)
    trace_path = bench.write_bench_json(out_dir, trace)
    print(f"trace: disabled {trace['events_per_sec_disabled']:,.0f} "
          f"events/sec, records x{trace['records_overhead_ratio']:.2f}, "
          f"spans x{trace['spans_overhead_ratio']:.2f} -> {trace_path}")

    scale = bench.bench_scale()
    scale_path = bench.write_bench_json(out_dir, scale)
    top = scale["rows"][-1]
    print(f"scale: {top['stations']} stations culled {top['culled_wall_s']:.2f}s "
          f"vs exhaustive {top['exhaustive_wall_s']:.2f}s "
          f"({scale['speedup_at_max']:.1f}x, cull rate {top['cull_rate']:.1%}, "
          f"identical={scale['outcomes_identical']}) -> {scale_path}")

    cache = bench.bench_cache()
    cache_path = bench.write_bench_json(out_dir, cache)
    print(f"cache: uncached {cache['uncached_wall_s']:.2f}s, "
          f"cold {cache['cold_wall_s']:.2f}s "
          f"(+{cache['cold_overhead_ratio']:.1%}), "
          f"warm {cache['warm_wall_s'] * 1000:.0f}ms "
          f"({cache['warm_speedup']:.0f}x, "
          f"identical={cache['rows_identical']}) -> {cache_path}")

    storm = bench.bench_storm(repeats=args.repeats)
    storm_path = bench.write_bench_json(out_dir, storm)
    print(f"storm: batched {storm['batched_events_per_sec']:,.0f} events/sec "
          f"vs legacy {storm['legacy_events_per_sec']:,.0f} "
          f"({storm['speedup']:.1f}x, "
          f"identical={storm['outcomes_identical']}) -> {storm_path}")

    telemetry = bench.bench_telemetry()
    telemetry_path = bench.write_bench_json(out_dir, telemetry)
    print(f"telemetry: columnar {telemetry['size_ratio']:.1f}x smaller / "
          f"{telemetry['write_speedup']:.1f}x faster than JSONL at "
          f"{telemetry['events']:,} events, streaming peak "
          f"{telemetry['stream_memory_ratio']:.1%} of replay, "
          f"summaries identical={telemetry['summary_identical']} "
          f"-> {telemetry_path}")

    # The checks benchmark lives in repro.checks.bench: experiments and
    # checks share layer rank 7, so only this rank-8 entry point may
    # orchestrate both.
    from .checks.bench import bench_checks, check_checks_regression

    checks = bench_checks(jobs=args.workers)
    checks_path = bench.write_bench_json(out_dir, checks)
    print(f"checks: cold {checks['cold_wall_s']:.2f}s, "
          f"warm {checks['warm_wall_s'] * 1000:.0f}ms "
          f"({checks['warm_speedup']:.0f}x, "
          f"identical={checks['findings_identical']}) -> {checks_path}")

    shard = bench.bench_shard()
    shard_path = bench.write_bench_json(out_dir, shard)
    print(f"shard: oracle {shard['oracle_wall_s']:.2f}s vs "
          f"{shard['shards']}-shard {shard['sharded_wall_s']:.2f}s "
          f"({shard['speedup']:.2f}x on {shard['cpus']} cpus, "
          f"mode={shard['mode']}, "
          f"identical={shard['outcomes_identical']}, "
          f"coupled identical={shard['coupled']['outcomes_identical']}) "
          f"-> {shard_path}")

    scale_baseline_path = baseline_path.parent / "baseline_scale.json"
    cache_baseline_path = baseline_path.parent / "baseline_cache.json"
    storm_baseline_path = baseline_path.parent / "baseline_storm.json"
    telemetry_baseline_path = baseline_path.parent / "baseline_telemetry.json"
    shard_baseline_path = baseline_path.parent / "baseline_shard.json"
    checks_baseline_path = baseline_path.parent / "baseline_checks.json"
    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(kernel_path.read_text())
        scale_baseline_path.write_text(scale_path.read_text())
        cache_baseline_path.write_text(cache_path.read_text())
        storm_baseline_path.write_text(storm_path.read_text())
        telemetry_baseline_path.write_text(telemetry_path.read_text())
        shard_baseline_path.write_text(shard_path.read_text())
        checks_baseline_path.write_text(checks_path.read_text())
        print(f"baseline updated -> {baseline_path}")
        print(f"baseline updated -> {scale_baseline_path}")
        print(f"baseline updated -> {cache_baseline_path}")
        print(f"baseline updated -> {storm_baseline_path}")
        print(f"baseline updated -> {telemetry_baseline_path}")
        print(f"baseline updated -> {shard_baseline_path}")
        print(f"baseline updated -> {checks_baseline_path}")
        return 0

    baseline = bench.load_baseline(baseline_path)
    failures = bench.check_regression(kernel, baseline)
    # Sweep gate: serial/parallel row identity everywhere; the parallel
    # speedup floor only on hosts with enough usable cores for a pool.
    failures += bench.check_sweeps_regression(sweeps)
    # Trace gate: disabled-path floor vs the same kernel baseline, plus
    # machine-independent within-run overhead ratios.
    trace_baseline = baseline if (
        baseline is not None
        and baseline.get("source") == trace.get("source")) else None
    failures += bench.check_trace_regression(trace, trace_baseline)
    # Scale gate: outcome identity + speedup floor always; throughput vs
    # the committed scale baseline when one exists.
    failures += bench.check_scale_regression(
        scale, bench.load_baseline(scale_baseline_path))
    # Cache gate: row identity, all-hit warm replay, warm speedup floor
    # and cold-overhead ceiling always; warm speedup vs the committed
    # cache baseline when one exists.
    failures += bench.check_cache_regression(
        cache, bench.load_baseline(cache_baseline_path))
    # Storm gate: batched/legacy outcome identity and the batched-engine
    # speedup floor always; absolute batched throughput vs the committed
    # storm baseline when one exists.
    failures += bench.check_storm_regression(
        storm, bench.load_baseline(storm_baseline_path))
    # Telemetry gate: streaming/replay byte-identity, columnar size and
    # speed floors, bounded streaming memory, and the PR 2-style
    # disabled-path ceiling vs the committed kernel baseline.
    failures += bench.check_telemetry_regression(
        telemetry, bench.load_baseline(telemetry_baseline_path),
        kernel_baseline=baseline)
    # Shard gate: sharded-vs-oracle and coupled multiprocess-vs-inline
    # outcome identity always; the 4-shard speedup floor only on hosts
    # with enough usable cores; oracle throughput vs the committed shard
    # baseline when one exists.
    failures += bench.check_shard_regression(
        shard, bench.load_baseline(shard_baseline_path))
    # Checks gate: warm/cold finding byte-identity and zero warm
    # re-parses always; warm speedup floor within-run, plus a fraction
    # of the committed checks baseline when one exists.
    failures += check_checks_regression(
        checks, bench.load_baseline(checks_baseline_path))
    for failure in failures:
        print(f"regression: {failure}", file=sys.stderr)
    if not failures:
        if baseline is None:
            print("regression gate: skipped (no baseline; run "
                  "`make bench-baseline` to create one)")
        elif baseline.get("source") != kernel.get("source"):
            print(f"regression gate: skipped (baseline source "
                  f"{baseline.get('source')!r} != current "
                  f"{kernel.get('source')!r})")
        else:
            print("regression gate: ok")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:  # output piped into head etc.
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
