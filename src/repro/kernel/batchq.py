"""Batched homogeneous-event execution: the kernel's storm fast path.

Most simulated work in the pervasive stack is *storms of identical tiny
events* — CSMA/CA backoff expiries, genie-ACK turnarounds, lease-expiry
sweeps, framebuffer poll pacing.  The generic heap dispatches each one
through a Python ``Event`` object and O(log n) ``__lt__`` comparisons;
:class:`BatchQueue` instead stores one *event class* (same callback,
per-instance payload) struct-of-arrays — NumPy columns of deadline,
sequence number, owner index and generation — and drains entire
same-deadline cohorts per call.

Design (timer-wheel-style lazy cancellation over LSM-style sorted runs):

* **Pending buffer** — ``schedule`` is O(1) list appends; nothing is
  sorted until an entry must actually execute.  ``schedule_many`` appends
  a whole NumPy chunk at once.
* **Sorted runs** — on first drain the pending buffer is sorted into a
  *run* (stable argsort by deadline: appends happen in sequence order, so
  time-stable ordering *is* ``(time, seq)`` ordering).  New runs
  carry-merge with their neighbour whenever the neighbour is within 2x
  their size (LSM-style tiering), so each entry is re-sorted O(log n)
  times amortised even when entries trickle in one at a time; a hard cap
  of :data:`MAX_RUNS` runs triggers full consolidation as a backstop.
* **Lazy cancel** — cancellable classes allocate a slot in a generation
  table; ``handle.cancel()`` bumps the generation (O(1)) and the dead
  entry is skipped at drain or dropped by a threshold compaction (same
  ``2 * dead > queued`` rule as the event heap — see
  ``Simulator._note_cancel``).
* **Cohorts** — all entries sharing ``(time, priority)`` that sort before
  the next foreign event execute in one drain.  Classes may supply a
  vectorised ``cohort_fn(owners, payloads)``; otherwise the scalar
  callback runs per entry with the same span-context restore as the heap
  loop, so outcomes are byte-identical either way.

Interleaving with the heap is exact: every entry consumes a sequence
number from the *same* counter as heap events, and ``Simulator.run``
merges the two sources on the full ``(time, priority, seq)`` key.  With
``Simulator(batching=False)`` the same registration API returns an
:class:`UnbatchedQueue` that schedules plain heap events — the oracle
path the equivalence tests hold this module against.

Constraints on batch callbacks (checked by the equivalence suite, relied
on for cohort execution): a callback may schedule freely and cancel any
*future* entry, but must not schedule a same-time event at a *more
urgent* (numerically lower) priority than its own class — the remaining
cohort members run first.  None of the converted producers do this.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from .errors import ScheduleError, SimulationFinished

#: Hard cap on sorted runs per class before full consolidation.  The
#: carry-merge policy keeps the count near O(log n) by itself; the cap is
#: a backstop bounding head-scan cost per drain.
MAX_RUNS: int = 24

#: Minimum dead-entry count before cancellation-triggered compaction kicks
#: in — below this, lazy skip-at-head is always cheap enough.  Shared with
#: the event heap (re-exported as ``scheduler.COMPACT_MIN_QUEUE``) so both
#: stores compact on the same threshold.
COMPACT_MIN_QUEUE: int = 64


class BatchHandle:
    """Cancellation handle for one entry in a cancellable batch class.

    Mirrors :meth:`Event.cancel` semantics: cancelling is O(1) and
    idempotent, and cancelling an entry that already fired (or was
    discarded by ``Simulator.stop``) is a true no-op.
    """

    __slots__ = ("queue", "slot", "gen")

    def __init__(self, queue: "BatchQueue", slot: int, gen: int) -> None:
        self.queue = queue
        self.slot = slot
        self.gen = gen

    def cancel(self) -> None:
        self.queue._cancel(self.slot, self.gen)


class _Run:
    """One sorted batch of entries, drained front-to-back via a cursor."""

    __slots__ = ("time", "seq", "owner", "slot", "gen", "payload", "ctx",
                 "cursor", "n")

    def __init__(self, time: np.ndarray, seq: np.ndarray, owner: np.ndarray,
                 slot: Optional[np.ndarray], gen: Optional[np.ndarray],
                 payload: Optional[list], ctx: Optional[list]) -> None:
        self.time = time        # float64, non-decreasing
        self.seq = seq          # int64, ascending within equal time
        self.owner = owner      # int64
        self.slot = slot        # int64 (None: class is not cancellable)
        self.gen = gen          # int64 (entry generation at schedule time)
        self.payload = payload  # parallel list (None: all payloads None)
        self.ctx = ctx          # parallel list (None: all span ctx None)
        self.cursor = 0
        self.n = len(time)


class BatchQueue:
    """One homogeneous event class: same callback, struct-of-arrays store.

    Create through :meth:`Simulator.batch_class`, never directly.  The
    scalar callback signature is ``fn(owner, payload)``; ``cohort_fn``,
    when given, receives ``(owners, payloads)`` for a whole same-deadline
    cohort (``owners`` an int64 array view, ``payloads`` a list or None)
    and must be observably identical to looping ``fn`` over the cohort.
    """

    def __init__(self, sim, name: str, fn: Callable[[int, Any], None],
                 priority: int,
                 cohort_fn: Optional[Callable[[np.ndarray, Optional[list]],
                                              None]] = None,
                 cancellable: bool = True) -> None:
        self.sim = sim
        self.name = name
        self.fn = fn
        self.cohort_fn = cohort_fn
        self.priority = int(priority)
        self.cancellable = bool(cancellable)
        #: per-slot generation numbers; an entry is live iff its recorded
        #: generation still matches its slot's.
        self._gen_table: List[int] = []
        self._free_slots: List[int] = []
        # Unsorted pending appends (insertion order == sequence order).
        self._p_time: List[float] = []
        self._p_seq: List[int] = []
        self._p_owner: List[int] = []
        self._p_slot: List[int] = []
        self._p_gen: List[int] = []
        self._p_payload: List[Any] = []
        self._p_ctx: List[Any] = []
        self._p_any_payload = False
        self._p_any_ctx = False
        #: (time, seq) of the earliest pending entry, or None.
        self._p_min: Optional[Tuple[float, int]] = None
        #: column chunks awaiting a sort, in sequence order.
        self._chunks: List[tuple] = []
        self._runs: List[_Run] = []
        self._live = 0
        self._dead = 0
        self._draining = False
        self._epoch = 0
        # Observability (surfaced through the "kernel" metrics probe).
        self.scheduled = 0
        self.executed = 0
        self.cancelled = 0
        self.cohorts = 0
        self.compactions = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, owner: int = 0,
                 payload: Any = None) -> Optional[BatchHandle]:
        """Schedule one entry ``delay`` seconds from now.

        Fast path like ``schedule_bound``: no negative-delay validation
        (callers pass protocol constants).  Returns a cancellation handle
        for cancellable classes, None otherwise.
        """
        return self._enqueue(self.sim._now + delay, owner, payload)

    def schedule_at(self, time: float, owner: int = 0,
                    payload: Any = None) -> Optional[BatchHandle]:
        """Schedule one entry at absolute simulation time ``time``."""
        if time < self.sim._now:
            raise ScheduleError(
                f"cannot schedule at {time!r}, now is {self.sim._now!r}")
        return self._enqueue(time, owner, payload)

    def _enqueue(self, time: float, owner: int,
                 payload: Any) -> Optional[BatchHandle]:
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        handle = None
        if self.cancellable:
            # Mirrors Simulator.schedule: handle-returning entries refuse
            # a stopped simulator (the uncancellable path mirrors
            # schedule_bound, which skips the check).
            if sim._stopped:
                raise SimulationFinished("simulator has been stopped")
            free = self._free_slots
            if free:
                slot = free.pop()
            else:
                slot = len(self._gen_table)
                self._gen_table.append(0)
            gen = self._gen_table[slot]
            handle = BatchHandle(self, slot, gen)
        else:
            slot = -1
            gen = 0
        self._p_time.append(time)
        self._p_seq.append(seq)
        self._p_owner.append(owner)
        self._p_slot.append(slot)
        self._p_gen.append(gen)
        self._p_payload.append(payload)
        if payload is not None:
            self._p_any_payload = True
        ctx = sim._span_ctx
        self._p_ctx.append(ctx)
        if ctx is not None:
            self._p_any_ctx = True
        pm = self._p_min
        if pm is None or time < pm[0]:
            self._p_min = (time, seq)
        self._live += 1
        self.scheduled += 1
        sim._note_batch_key(time, self.priority, seq, self)
        return handle

    def schedule_many(self, delays: Sequence[float],
                      owners: Optional[Sequence[int]] = None,
                      payloads: Optional[Sequence[Any]] = None) -> None:
        """Vectorised bulk scheduling: one chunk append for N entries.

        Only non-cancellable classes — bulk entries return no handles, so
        there is nothing a generation slot would protect.
        """
        if self.cancellable:
            raise ScheduleError(
                "schedule_many requires a non-cancellable batch class")
        sim = self.sim
        if not isinstance(delays, np.ndarray) and len(delays) < 8:
            # Tiny batches: array setup (asarray/argmin/arange) costs more
            # than scalar appends.  Same sequence consumption either way.
            for i, delay in enumerate(delays):
                self._enqueue(sim._now + delay,
                              owners[i] if owners is not None else 0,
                              payloads[i] if payloads is not None else None)
            return
        time = sim._now + np.asarray(delays, dtype=np.float64)
        n = time.shape[0]
        if n == 0:
            return
        seq0 = sim._seq
        sim._seq = seq0 + n
        seqs = np.arange(seq0, seq0 + n, dtype=np.int64)
        if owners is None:
            owner_col = np.zeros(n, dtype=np.int64)
        else:
            owner_col = np.asarray(owners, dtype=np.int64)
            if owner_col.shape[0] != n:
                raise ScheduleError("owners length must match delays")
        payload_col = list(payloads) if payloads is not None else None
        if payload_col is not None and len(payload_col) != n:
            raise ScheduleError("payloads length must match delays")
        ctx = sim._span_ctx
        ctx_col = [ctx] * n if ctx is not None else None
        if self._p_time:
            self._chunks.append(self._take_scalar_chunk())
        self._chunks.append((time, seqs, owner_col, None, None,
                             payload_col, ctx_col))
        j = int(np.argmin(time))
        candidate = (float(time[j]), int(seqs[j]))
        pm = self._p_min
        if pm is None or candidate[0] < pm[0]:
            self._p_min = candidate
        self._live += n
        self.scheduled += n
        sim._note_batch_key(candidate[0], self.priority, candidate[1], self)

    def schedule_many_at(self, times: Sequence[float],
                         owners: Optional[Sequence[int]] = None,
                         payloads: Optional[Sequence[Any]] = None) -> None:
        """Vectorised bulk scheduling at *absolute* simulation times.

        The cross-shard injection path (:mod:`repro.kernel.shard`): a
        boundary batch arrives as struct-of-arrays columns stamped with
        effect times computed on the sending shard, and lands here in one
        chunk append.  Same constraints as :meth:`schedule_many`
        (non-cancellable classes only); every time must be ``>= now``,
        validated up front so a bad batch consumes no sequence numbers.
        """
        if self.cancellable:
            raise ScheduleError(
                "schedule_many_at requires a non-cancellable batch class")
        sim = self.sim
        n = len(times)
        if n == 0:
            return
        if not isinstance(times, np.ndarray) and n < 8:
            now = sim._now
            for time in times:
                if time < now:
                    raise ScheduleError(
                        f"cannot schedule at {time!r}, now is {now!r}")
            for i, time in enumerate(times):
                self._enqueue(float(time),
                              owners[i] if owners is not None else 0,
                              payloads[i] if payloads is not None else None)
            return
        time = np.asarray(times, dtype=np.float64)
        n = time.shape[0]
        j = int(np.argmin(time))
        if time[j] < sim._now:
            raise ScheduleError(
                f"cannot schedule at {float(time[j])!r}, "
                f"now is {sim._now!r}")
        seq0 = sim._seq
        sim._seq = seq0 + n
        seqs = np.arange(seq0, seq0 + n, dtype=np.int64)
        if owners is None:
            owner_col = np.zeros(n, dtype=np.int64)
        else:
            owner_col = np.asarray(owners, dtype=np.int64)
            if owner_col.shape[0] != n:
                raise ScheduleError("owners length must match times")
        payload_col = list(payloads) if payloads is not None else None
        if payload_col is not None and len(payload_col) != n:
            raise ScheduleError("payloads length must match times")
        ctx = sim._span_ctx
        ctx_col = [ctx] * n if ctx is not None else None
        if self._p_time:
            self._chunks.append(self._take_scalar_chunk())
        self._chunks.append((time, seqs, owner_col, None, None,
                             payload_col, ctx_col))
        candidate = (float(time[j]), int(seqs[j]))
        pm = self._p_min
        if pm is None or candidate[0] < pm[0]:
            self._p_min = candidate
        self._live += n
        self.scheduled += n
        sim._note_batch_key(candidate[0], self.priority, candidate[1], self)

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def _cancel(self, slot: int, gen: int) -> None:
        sim = self.sim
        if sim._stopped:
            return  # entries were discarded wholesale; nothing to count
        table = self._gen_table
        if table[slot] != gen:
            return  # already fired, cancelled, or compacted away
        table[slot] = gen + 1
        self._free_slots.append(slot)
        self._live -= 1
        self._dead += 1
        self.cancelled += 1
        sim._bdirty = True
        sim._update_cancel_gauge()
        if (not self._draining and self._dead > COMPACT_MIN_QUEUE
                and self._dead * 2 > self._live + self._dead):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries from every run (satellite of the heap's own
        threshold compaction — cancel-heavy workloads stay bounded)."""
        self._flush_pending()
        table = np.asarray(self._gen_table, dtype=np.int64)
        kept: List[_Run] = []
        for run in self._runs:
            cursor = run.cursor
            if cursor >= run.n:
                continue
            if run.slot is None:
                alive = None
            else:
                alive = self.sim._kernels.alive_mask(
                    table, run.slot[cursor:], run.gen[cursor:])
                if bool(alive.all()):
                    alive = None
            if alive is None:
                if cursor == 0:
                    kept.append(run)
                else:
                    kept.append(self._slice_run(run, np.arange(
                        cursor, run.n, dtype=np.int64)))
                continue
            idx = np.nonzero(alive)[0] + cursor
            if idx.shape[0]:
                kept.append(self._slice_run(run, idx))
        self._runs = kept
        self._dead = 0
        self.compactions += 1
        self.sim._bdirty = True

    @staticmethod
    def _slice_run(run: _Run, idx: np.ndarray) -> _Run:
        positions = idx.tolist()
        return _Run(
            run.time[idx], run.seq[idx], run.owner[idx],
            run.slot[idx] if run.slot is not None else None,
            run.gen[idx] if run.gen is not None else None,
            [run.payload[j] for j in positions] if run.payload is not None
            else None,
            [run.ctx[j] for j in positions] if run.ctx is not None else None)

    def _clear(self) -> None:
        """Discard everything (``Simulator.stop``)."""
        self._runs = []
        self._chunks = []
        self._reset_pending()
        self._live = 0
        self._dead = 0
        # Invalidate any in-flight drain accounting: a callback that calls
        # ``Simulator.stop`` clears the queue mid-cohort, and the drain's
        # ``finally`` must not re-subtract entries from the zeroed counters.
        self._epoch += 1

    def _reset_pending(self) -> None:
        self._p_time = []
        self._p_seq = []
        self._p_owner = []
        self._p_slot = []
        self._p_gen = []
        self._p_payload = []
        self._p_ctx = []
        self._p_any_payload = False
        self._p_any_ctx = False
        self._p_min = None

    # ------------------------------------------------------------------
    # Sorting machinery
    # ------------------------------------------------------------------
    def _take_scalar_chunk(self) -> tuple:
        if self.cancellable:
            slot_col = np.asarray(self._p_slot, dtype=np.int64)
            gen_col = np.asarray(self._p_gen, dtype=np.int64)
        else:
            slot_col = gen_col = None
        chunk = (np.asarray(self._p_time, dtype=np.float64),
                 np.asarray(self._p_seq, dtype=np.int64),
                 np.asarray(self._p_owner, dtype=np.int64),
                 slot_col, gen_col,
                 self._p_payload if self._p_any_payload else None,
                 self._p_ctx if self._p_any_ctx else None)
        self._reset_pending()
        return chunk

    @staticmethod
    def _combine_lists(chunks: List[tuple], index: int) -> Optional[list]:
        if all(chunk[index] is None for chunk in chunks):
            return None
        combined: List[Any] = []
        for chunk in chunks:
            column = chunk[index]
            if column is None:
                combined.extend([None] * chunk[0].shape[0])
            else:
                combined.extend(column)
        return combined

    def _flush_pending(self) -> None:
        """Sort everything pending into a new run."""
        if self._p_time:
            self._chunks.append(self._take_scalar_chunk())
        chunks = self._chunks
        if not chunks:
            return
        self._chunks = []
        self._p_min = None
        if len(chunks) == 1:
            time, seq, owner, slot, gen, payload, ctx = chunks[0]
        else:
            time = np.concatenate([c[0] for c in chunks])
            seq = np.concatenate([c[1] for c in chunks])
            owner = np.concatenate([c[2] for c in chunks])
            if self.cancellable:
                slot = np.concatenate([c[3] for c in chunks])
                gen = np.concatenate([c[4] for c in chunks])
            else:
                slot = gen = None
            payload = self._combine_lists(chunks, 5)
            ctx = self._combine_lists(chunks, 6)
        if time.shape[0] > 1 and not bool(np.all(time[:-1] <= time[1:])):
            # Appends happen in sequence order, so the (time, seq) merge
            # order equals a stable sort by time alone — either way the
            # backend kernel returns the identical permutation (keys are
            # unique; see repro.kernel.backend).
            order = self.sim._kernels.merge_order(time, seq)
            time = time[order]
            seq = seq[order]
            owner = owner[order]
            if slot is not None:
                slot = slot[order]
                gen = gen[order]
            positions = order.tolist()
            if payload is not None:
                payload = [payload[j] for j in positions]
            if ctx is not None:
                ctx = [ctx[j] for j in positions]
        self._runs.append(_Run(time, seq, owner, slot, gen, payload, ctx))
        self._carry_merge()

    def _carry_merge(self) -> None:
        """LSM-style tail merging: while the next-to-last run's remainder
        is within 2x of the last run's, merge the two.  Single entries
        trickling in (a self-rescheduling timer population) then cost
        O(log n) re-sorts each, amortised, instead of a full-queue sort
        every :data:`MAX_RUNS` appends."""
        runs = self._runs
        while len(runs) > 1:
            a = runs[-2]
            b = runs[-1]
            if (a.n - a.cursor) <= 2 * (b.n - b.cursor):
                runs[-2:] = [self._merged_run([a, b])]
            else:
                break
        if len(runs) > MAX_RUNS:
            self._consolidate()

    def _consolidate(self) -> None:
        """Merge every run's remainder into one (and shed dead entries)."""
        runs = [r for r in self._runs if r.cursor < r.n]
        if len(runs) <= 1:
            self._runs = runs
            return
        merged = self._merged_run(runs)
        if merged.slot is not None:
            table = np.asarray(self._gen_table, dtype=np.int64)
            alive = self.sim._kernels.alive_mask(table, merged.slot,
                                                 merged.gen)
            dead = int(alive.shape[0] - int(alive.sum()))
            if dead:
                self._dead -= dead
                idx = np.nonzero(alive)[0]
                merged = self._slice_run(merged, idx)
        self._runs = [merged]

    def _merged_run(self, runs: List[_Run]) -> _Run:
        """One sorted run from the remainders of ``runs``."""
        time = np.concatenate([r.time[r.cursor:] for r in runs])
        seq = np.concatenate([r.seq[r.cursor:] for r in runs])
        owner = np.concatenate([r.owner[r.cursor:] for r in runs])
        if self.cancellable:
            slot = np.concatenate([r.slot[r.cursor:] for r in runs])
            gen = np.concatenate([r.gen[r.cursor:] for r in runs])
        else:
            slot = gen = None
        if any(r.payload is not None for r in runs):
            payload: Optional[list] = []
            for r in runs:
                if r.payload is None:
                    payload.extend([None] * (r.n - r.cursor))
                else:
                    payload.extend(r.payload[r.cursor:])
        else:
            payload = None
        if any(r.ctx is not None for r in runs):
            ctx: Optional[list] = []
            for r in runs:
                if r.ctx is None:
                    ctx.extend([None] * (r.n - r.cursor))
                else:
                    ctx.extend(r.ctx[r.cursor:])
        else:
            ctx = None
        # Cross-run entries interleave arbitrarily: the full two-key sort
        # (backend kernel; identical permutation on every backend).
        order = self.sim._kernels.merge_order(time, seq)
        time = time[order]
        seq = seq[order]
        owner = owner[order]
        if slot is not None:
            slot = slot[order]
            gen = gen[order]
        positions = order.tolist()
        if payload is not None:
            payload = [payload[j] for j in positions]
        if ctx is not None:
            ctx = [ctx[j] for j in positions]
        return _Run(time, seq, owner, slot, gen, payload, ctx)

    # ------------------------------------------------------------------
    # Head inspection (for the two-source merge)
    # ------------------------------------------------------------------
    def _skip_dead(self, run: _Run) -> int:
        """Advance the cursor past cancelled head entries; return it."""
        cursor = run.cursor
        if run.slot is None:
            return cursor
        table = self._gen_table
        slot = run.slot
        gen = run.gen
        n = run.n
        while cursor < n and table[int(slot[cursor])] != gen[cursor]:
            self._dead -= 1
            if run.payload is not None:
                run.payload[cursor] = None
            cursor += 1
        run.cursor = cursor
        return cursor

    def _head_key(self) -> Optional[Tuple[float, int, int]]:
        """``(time, priority, seq)`` of the next live entry, or None.

        This is the batch half of the two-source merge peek.  The run
        heads are scanned by the backend's ``head_scan`` kernel when a
        compiled one is active; the pure backend keeps the scalar path
        (for the handful of runs a class holds, ``min`` on tuples beats
        building arrays) — both pick the identical lexicographic minimum
        because sequence numbers are unique.
        """
        runs = self._runs
        heads: List[Tuple[float, int]] = []
        i = 0
        while i < len(runs):
            run = runs[i]
            cursor = self._skip_dead(run)
            if cursor >= run.n:
                runs.pop(i)
                continue
            heads.append((float(run.time[cursor]), int(run.seq[cursor])))
            i += 1
        best: Optional[Tuple[float, int]] = None
        if heads:
            scan = self.sim._kernels.head_scan
            if scan is not None and len(heads) > 1:
                best = heads[int(scan(
                    np.array([h[0] for h in heads], dtype=np.float64),
                    np.array([h[1] for h in heads], dtype=np.int64)))]
            else:
                best = min(heads)
        pm = self._p_min
        if pm is not None and (best is None or pm < best):
            best = pm
        if best is None:
            return None
        return (best[0], self.priority, best[1])

    def __len__(self) -> int:
        return self._live

    def stats(self) -> dict:
        """Per-class counters for the "kernel" metrics probe."""
        return {"scheduled": self.scheduled, "executed": self.executed,
                "cancelled": self.cancelled, "cohorts": self.cohorts,
                "compactions": self.compactions, "pending": self._live}

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _drain(self, limit: Optional[Tuple[float, int, int]],
               until: Optional[float], budget: Optional[int]) -> int:
        """Execute entries with key strictly below ``limit`` (and time
        within ``until``), at most ``budget`` of them.  Returns the count.

        Runs cohort after cohort; exits back to the two-source merge as
        soon as a callback schedules *anything* (the new entry — in this
        class, another class, or the heap — may interleave before our
        remaining entries), when the budget is spent, or on ``stop()``.
        """
        sim = self.sim
        executed = 0
        self._draining = True
        try:
            while True:
                if budget is not None and executed >= budget:
                    break
                seq_mark = sim._seq
                best_run: Optional[_Run] = None
                best: Optional[Tuple[float, int]] = None
                runs = self._runs
                i = 0
                while i < len(runs):
                    run = runs[i]
                    cursor = self._skip_dead(run)
                    if cursor >= run.n:
                        runs.pop(i)
                        continue
                    key = (float(run.time[cursor]), int(run.seq[cursor]))
                    if best is None or key < best:
                        best = key
                        best_run = run
                    i += 1
                pm = self._p_min
                if pm is not None and (best is None or pm < best):
                    self._flush_pending()
                    continue
                if best_run is None:
                    break
                if until is not None and best[0] > until:
                    break
                if limit is not None and (best[0], self.priority,
                                          best[1]) >= limit:
                    break
                lo, hi = self._cohort_bounds(best_run, limit)
                if budget is not None:
                    hi = min(hi, lo + (budget - executed))
                count = self._exec_cohort(best_run, best[0], lo, hi)
                executed += count
                if count == 0 or sim._stopped or sim._seq != seq_mark:
                    break
        finally:
            self._draining = False
        if (self._dead > COMPACT_MIN_QUEUE
                and self._dead * 2 > self._live + self._dead):
            self._compact()
        return executed

    def _cohort_bounds(self, run: _Run,
                       limit: Optional[Tuple[float, int, int]]
                       ) -> Tuple[int, int]:
        """[lo, hi) bounds of the executable cohort at the run's head.

        The cohort is the maximal same-deadline prefix, clipped to the
        limit's sequence number when the limit shares our (time, priority)
        — and to any sibling run's head sequence, so equal-deadline entries
        split across runs still interleave in exact sequence order.
        """
        lo = run.cursor
        head_time = float(run.time[lo])
        hi = lo + int(np.searchsorted(run.time[lo:run.n], head_time,
                                      side="right"))
        if (limit is not None and limit[0] == head_time
                and limit[1] == self.priority):
            hi = lo + int(np.searchsorted(run.seq[lo:hi], limit[2]))
        for other in self._runs:
            if other is run or other.cursor >= other.n:
                continue
            if float(other.time[other.cursor]) == head_time:
                other_seq = int(other.seq[other.cursor])
                hi = lo + int(np.searchsorted(run.seq[lo:hi], other_seq))
        return lo, hi

    def _exec_cohort(self, run: _Run, head_time: float,
                     lo: int, hi: int) -> int:
        """Execute the cohort ``run[lo:hi]`` at ``head_time``."""
        sim = self.sim
        count = hi - lo
        if count <= 0:
            return 0
        sim._now = head_time
        span = None
        if sim.batch_spans and sim.tracer.enabled:
            span = sim.span_begin("kernel.cohort", self.name,
                                  activate=False, n=count)
        if (self.cohort_fn is not None and run.slot is None
                and run.ctx is None and sim._span_ctx is None):
            owners = run.owner[lo:hi]
            payloads = run.payload[lo:hi] if run.payload is not None else None
            run.cursor = hi
            epoch = self._epoch
            try:
                self.cohort_fn(owners, payloads)
            finally:
                if epoch == self._epoch:
                    self._live -= count
                self.executed += count
                self.cohorts += 1
            if span is not None:
                sim.span_end(span)
            return count
        fn = self.fn
        owners = run.owner[lo:hi].tolist()
        payloads = run.payload
        ctxs = run.ctx
        if run.slot is not None:
            slots = run.slot[lo:hi].tolist()
            gens = run.gen[lo:hi].tolist()
            table = self._gen_table
            free = self._free_slots
        else:
            slots = None
        consumed = 0
        executed = 0
        k = 0
        epoch = self._epoch
        try:
            while k < count:
                idx = lo + k
                k += 1
                if slots is not None:
                    slot = slots[k - 1]
                    if table[slot] != gens[k - 1]:
                        self._dead -= 1
                        if payloads is not None:
                            payloads[idx] = None
                        continue
                    # Fired: bump the generation so a late cancel() of this
                    # handle is a no-op and the slot can be reused safely.
                    table[slot] += 1
                    free.append(slot)
                consumed += 1
                owner = owners[k - 1]
                if payloads is not None:
                    payload = payloads[idx]
                    payloads[idx] = None  # break ref cycles, like the heap
                else:
                    payload = None
                ctx = ctxs[idx] if ctxs is not None else None
                if ctx is not None or sim._span_ctx is not None:
                    sim._span_ctx = ctx
                    fn(owner, payload)
                    sim._span_ctx = None
                else:
                    fn(owner, payload)
                executed += 1
                if sim._stopped:
                    break
        finally:
            run.cursor = lo + k
            if epoch == self._epoch:
                self._live -= consumed
            self.executed += executed
            self.cohorts += 1
        if span is not None:
            sim.span_end(span)
        return executed


class UnbatchedQueue:
    """The ``batching=False`` oracle: same API, plain heap events.

    Every call maps onto exactly the scheduling the pre-batching code
    performed — ``schedule_bound`` for uncancellable entries, a public
    handle-returning schedule otherwise — so a seeded run is byte-identical
    to the legacy kernel, which is what the equivalence tests assert.
    """

    __slots__ = ("sim", "name", "fn", "priority", "cancellable")

    def __init__(self, sim, name: str, fn: Callable[[int, Any], None],
                 priority: int, cancellable: bool = True) -> None:
        self.sim = sim
        self.name = name
        self.fn = fn
        self.priority = int(priority)
        self.cancellable = bool(cancellable)

    def schedule(self, delay: float, owner: int = 0, payload: Any = None):
        if self.cancellable:
            return self.sim.schedule(delay, self.fn, owner, payload,
                                     priority=self.priority)
        self.sim.schedule_bound(delay, self.fn, (owner, payload),
                                priority=self.priority)
        return None

    def schedule_at(self, time: float, owner: int = 0, payload: Any = None):
        event = self.sim.schedule_at(time, self.fn, owner, payload,
                                     priority=self.priority)
        return event if self.cancellable else None

    def schedule_many(self, delays: Sequence[float],
                      owners: Optional[Sequence[int]] = None,
                      payloads: Optional[Sequence[Any]] = None) -> None:
        if self.cancellable:
            raise ScheduleError(
                "schedule_many requires a non-cancellable batch class")
        sim = self.sim
        fn = self.fn
        priority = self.priority
        for i, delay in enumerate(delays):
            owner = owners[i] if owners is not None else 0
            payload = payloads[i] if payloads is not None else None
            sim.schedule_bound(float(delay), fn, (owner, payload),
                               priority=priority)

    def schedule_many_at(self, times: Sequence[float],
                         owners: Optional[Sequence[int]] = None,
                         payloads: Optional[Sequence[Any]] = None) -> None:
        if self.cancellable:
            raise ScheduleError(
                "schedule_many_at requires a non-cancellable batch class")
        sim = self.sim
        now = sim._now
        for time in times:
            if time < now:
                raise ScheduleError(
                    f"cannot schedule at {time!r}, now is {now!r}")
        fn = self.fn
        priority = self.priority
        for i, time in enumerate(times):
            owner = owners[i] if owners is not None else 0
            payload = payloads[i] if payloads is not None else None
            # schedule_at keeps the stored deadline exact (now + (t - now)
            # would round); one event per entry, same seq consumption as
            # the batched engine's chunk append.
            sim.schedule_at(float(time), fn, owner, payload,
                            priority=priority)

    def __len__(self) -> int:
        return 0  # entries live in the simulator's heap, counted there

    def stats(self) -> dict:
        return {"scheduled": 0, "executed": 0, "cancelled": 0,
                "cohorts": 0, "compactions": 0, "pending": 0}
