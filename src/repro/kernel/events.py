"""Event objects used by the discrete-event scheduler.

An :class:`Event` is a callback bound to a simulation time.  Events are
totally ordered by ``(time, priority, seq)`` where ``seq`` is a scheduler
assigned monotone counter — this makes runs *deterministic*: two events at
the same time and priority always fire in scheduling order, independent of
hash seeds or heap internals.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional


class Priority(enum.IntEnum):
    """Tie-break priority for events that share a timestamp.

    Lower values fire first.  The bands are chosen so that physical-medium
    bookkeeping (transmission ends) resolves before protocol reactions, and
    measurement hooks observe a settled state.
    """

    MEDIUM = 0     #: PHY/medium bookkeeping (carrier drop, delivery).
    PROTOCOL = 10  #: MAC/transport/middleware timers and handlers.
    APP = 20       #: application and user-behaviour callbacks.
    MONITOR = 30   #: metrics / instrumentation sampling.


class Event:
    """A scheduled callback.

    Instances are created by :meth:`repro.kernel.scheduler.Simulator.schedule`
    and friends; user code normally only keeps them to :meth:`cancel`.

    The scheduler's heap itself stores plain tuples (see
    :mod:`repro.kernel.dispatch`); an :class:`Event` is the *cancellation
    handle* riding in the tuple's last slot — the ``schedule_bound`` fast
    path stores ``None`` there and allocates no handle at all.  ``owner``
    points back at the scheduler while the event sits in the queue so
    cancellation can maintain an exact dead-entry count for O(1)
    ``pending()`` and threshold-triggered heap compaction.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled",
                 "owner", "ctx")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple = (),
    ) -> None:
        self.time = float(time)
        self.priority = int(priority)
        self.seq = int(seq)
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        self.owner: Optional[Any] = None
        #: span id current when the event was scheduled; the run loop
        #: restores it so causal span context crosses event boundaries.
        self.ctx: Optional[int] = None

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it.

        Cancelling is O(1); the dead entry is discarded lazily when it
        reaches the head of the heap, or in bulk when dead entries come to
        dominate the queue.  Cancelling an already-fired or already-cancelled
        event is a no-op.
        """
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references eagerly so cancelled closures do not pin objects
        # (NICs, frames, sessions) until the heap drains.
        self.fn = None
        self.args = ()
        owner = self.owner
        if owner is not None:
            self.owner = None
            owner._note_cancel()

    # Heap ordering -----------------------------------------------------
    def sort_key(self) -> tuple:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        # Inlined field comparisons: this runs hundreds of thousands of
        # times per heap-heavy run, and building two tuples per compare
        # measurably slows the event loop.
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} p={self.priority} {name} [{state}]>"
