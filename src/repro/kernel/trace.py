"""Structured trace log for simulations.

Components emit :class:`TraceRecord` entries through
:meth:`repro.kernel.scheduler.Simulator.trace`.  The trace is the raw
material for two consumers:

* metrics extraction in :mod:`repro.metrics` and the experiment harness;
* the LPC instrumentation bridge (:mod:`repro.core.instrument`) which
  classifies emitted *issues* into conceptual-model layers.

Tracing is cheap when disabled (a single predicate test per emit) and
filterable by category when enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        time: simulation time of the emission.
        category: dotted category string, e.g. ``"mac.tx"`` or
            ``"issue.session"``.  Categories beginning with ``issue.`` feed
            the LPC issue classifier.
        source: name of the emitting component.
        message: human-readable one-liner.
        data: structured payload (numbers, ids) for programmatic consumers.
    """

    time: float
    category: str
    source: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def matches(self, prefix: str) -> bool:
        """True if the record's category equals ``prefix`` or sits under it."""
        return self.category == prefix or self.category.startswith(prefix + ".")


class Tracer:
    """Collects trace records and dispatches them to live subscribers."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.records: List[TraceRecord] = []
        self._subscribers: List[tuple] = []  # (prefix, callback)
        self.dropped = 0

    def emit(self, record: TraceRecord) -> None:
        """Store ``record`` and notify matching subscribers.

        When a ``capacity`` is set the log behaves as a bounded buffer that
        drops the *newest* records once full (keeping the head preserves the
        warm-up behaviour experiments usually care about) while still
        counting drops so nothing is silently lost.
        """
        if not self.enabled:
            return
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
        else:
            self.records.append(record)
        for prefix, callback in self._subscribers:
            if record.matches(prefix):
                callback(record)

    def subscribe(self, prefix: str, callback: Callable[[TraceRecord], None]) -> Callable[[], None]:
        """Call ``callback`` for every future record under ``prefix``.

        Returns an unsubscribe function.
        """
        entry = (prefix, callback)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def select(self, prefix: str) -> List[TraceRecord]:
        """All stored records whose category sits under ``prefix``."""
        return [r for r in self.records if r.matches(prefix)]

    def issues(self) -> List[TraceRecord]:
        """All records in the ``issue.*`` namespace (LPC classifier input)."""
        return self.select("issue")

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)
