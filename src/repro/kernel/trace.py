"""Structured trace log and causal spans for simulations.

Components emit :class:`TraceRecord` entries through
:meth:`repro.kernel.scheduler.Simulator.trace`.  The trace is the raw
material for three consumers:

* metrics extraction in :mod:`repro.metrics` and the experiment harness;
* the LPC instrumentation bridge (:mod:`repro.core.instrument`) which
  classifies emitted *issues* into conceptual-model layers;
* the telemetry pipeline (:mod:`repro.telemetry`) which exports records,
  spans and metric snapshots as JSONL and renders per-layer run reports.

Alongside the flat record log the tracer stores :class:`Span` entries —
timed intervals with a ``parent_id`` forming a *causal tree*.  The
scheduler propagates the current span through every scheduled event (see
:meth:`repro.kernel.scheduler.Simulator.span_begin`), so a frame's journey
``transport.send -> mac.tx -> transport.deliver -> session.acquire`` is
reconstructable after the run even though it crossed many events.

Tracing is cheap when disabled (a single predicate test per emit) and
filterable by category when enabled.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from .errors import ConfigurationError

#: Bounded-buffer policies for :class:`Tracer`.
#: ``head`` (default) drops the *newest* records once full — preserving the
#: warm-up behaviour experiments usually care about; ``ring`` drops the
#: *oldest*, keeping a sliding window of the most recent records.  Both
#: count every drop.  ``stream`` stores nothing at all: every record and
#: span is dispatched to subscribers/hooks and then discarded, giving
#: O(1) memory for million-event runs consumed by
#: :class:`repro.telemetry.streaming.StreamingAggregator` or a live
#: exporter.
TRACER_MODES: Tuple[str, ...] = ("head", "ring", "stream")


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        time: simulation time of the emission.
        category: dotted category string, e.g. ``"mac.tx"`` or
            ``"issue.session"``.  Categories beginning with ``issue.`` feed
            the LPC issue classifier.
        source: name of the emitting component.
        message: human-readable one-liner.
        data: structured payload (numbers, ids) for programmatic consumers.
    """

    time: float
    category: str
    source: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def matches(self, prefix: str) -> bool:
        """True if the record's category equals ``prefix`` or sits under it.

        The empty prefix is the root: it matches everything.
        """
        if not prefix:
            return True
        return self.category == prefix or self.category.startswith(prefix + ".")


@dataclass(slots=True)
class Span:
    """One timed interval in the causal tree.

    A span is *open* between :meth:`Simulator.span_begin` and
    :meth:`Simulator.span_end`; ``parent_id`` points at the span that was
    current when it began (possibly in an earlier event — the scheduler
    carries span context across ``schedule``/``schedule_bound``).
    """

    span_id: int
    parent_id: Optional[int]
    category: str
    source: str
    start: float
    end: Optional[float] = None
    status: str = "open"  #: "open" until ended, then "ok"/"error"/custom.
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Span length in simulated seconds; None while still open."""
        return None if self.end is None else self.end - self.start

    def matches(self, prefix: str) -> bool:
        """True if the span's category equals ``prefix`` or sits under it
        (empty prefix matches everything)."""
        if not prefix:
            return True
        return self.category == prefix or self.category.startswith(prefix + ".")


class _NullSpan:
    """The span returned when tracing is disabled: inert and shared."""

    __slots__ = ()
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    category = ""
    source = ""
    status = "disabled"

    def matches(self, prefix: str) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NullSpan>"


#: Singleton no-op span handed out by a disabled tracer.
NULL_SPAN = _NullSpan()


# ---------------------------------------------------------------------------
# Process-default hooks: installed into every Tracer constructed afterwards.
# The CLI uses these to stream records/spans to a JSONL file from runs whose
# simulators are built deep inside an experiment.
# ---------------------------------------------------------------------------

_DEFAULT_SUBSCRIBERS: List[Tuple[str, Callable[[TraceRecord], None]]] = []
_DEFAULT_SPAN_HOOKS: List[Callable[[Span], None]] = []
_DEFAULT_SPAN_BEGIN_HOOKS: List[Callable[[Span], None]] = []


def add_default_subscriber(prefix: str,
                           callback: Callable[[TraceRecord], None],
                           ) -> Callable[[], None]:
    """Subscribe ``callback`` to ``prefix`` on every *future* Tracer.

    Returns a remover.  Existing tracers are unaffected.
    """
    entry = (prefix, callback)
    _DEFAULT_SUBSCRIBERS.append(entry)

    def remove() -> None:
        try:
            _DEFAULT_SUBSCRIBERS.remove(entry)
        except ValueError:
            pass

    return remove


def add_default_span_hook(callback: Callable[[Span], None],
                          ) -> Callable[[], None]:
    """Call ``callback(span)`` on span end in every *future* Tracer."""
    _DEFAULT_SPAN_HOOKS.append(callback)

    def remove() -> None:
        try:
            _DEFAULT_SPAN_HOOKS.remove(callback)
        except ValueError:
            pass

    return remove


def add_default_span_begin_hook(callback: Callable[[Span], None],
                                ) -> Callable[[], None]:
    """Call ``callback(span)`` on span *begin* in every *future* Tracer.

    Begin hooks let streaming consumers observe spans that never close
    (leaks, crashes) without the tracer retaining the span list.
    """
    _DEFAULT_SPAN_BEGIN_HOOKS.append(callback)

    def remove() -> None:
        try:
            _DEFAULT_SPAN_BEGIN_HOOKS.remove(callback)
        except ValueError:
            pass

    return remove


class Tracer:
    """Collects trace records and spans; dispatches to live subscribers.

    Args:
        enabled: record anything at all.
        capacity: optional bound on stored *records* (spans are unbounded;
            heavy sweeps run with tracing disabled).
        mode: bounded-buffer policy, ``"head"`` (drop newest, the default)
            or ``"ring"`` (drop oldest); ``"stream"`` retains nothing and
            only dispatches to subscribers and span hooks.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None,
                 mode: str = "head") -> None:
        if mode not in TRACER_MODES:
            raise ConfigurationError(
                f"unknown tracer mode {mode!r}; choose from {TRACER_MODES}")
        if mode == "stream" and capacity is not None:
            raise ConfigurationError(
                "tracer mode 'stream' stores nothing; capacity is meaningless"
                " — drop the capacity or use 'head'/'ring'")
        self.enabled = enabled
        self.capacity = capacity
        self.mode = mode
        self._retain = mode != "stream"
        if mode == "ring" and capacity is not None:
            # deque(maxlen=...) evicts the oldest entry on append-when-full
            # in O(1); emit() counts the eviction.
            self.records: Any = deque(maxlen=capacity)
        else:
            self.records = []
        self._subscribers: List[tuple] = list(_DEFAULT_SUBSCRIBERS)
        self._span_hooks: List[Callable[[Span], None]] = \
            list(_DEFAULT_SPAN_HOOKS)
        self._span_begin_hooks: List[Callable[[Span], None]] = \
            list(_DEFAULT_SPAN_BEGIN_HOOKS)
        self.dropped = 0
        self.spans: List[Span] = []
        self._span_seq = itertools.count(1)

    # ------------------------------------------------------------------
    # Records
    # ------------------------------------------------------------------
    def emit(self, record: TraceRecord) -> None:
        """Store ``record`` and notify matching subscribers.

        When a ``capacity`` is set the log behaves as a bounded buffer:
        ``head`` mode drops the *newest* records once full, ``ring`` mode
        drops the *oldest* — both count drops so nothing is silently lost.
        ``stream`` mode stores nothing (and counts nothing as dropped):
        subscribers are the only consumers.
        """
        if not self.enabled:
            return
        if not self._retain:
            pass
        elif self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            if self.mode == "ring":
                self.records.append(record)  # deque evicts the oldest
        else:
            self.records.append(record)
        for prefix, callback in self._subscribers:
            if record.matches(prefix):
                callback(record)

    def subscribe(self, prefix: str, callback: Callable[[TraceRecord], None]) -> Callable[[], None]:
        """Call ``callback`` for every future record under ``prefix``.

        Returns an unsubscribe function.
        """
        entry = (prefix, callback)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(entry)
            except ValueError:
                pass

        return unsubscribe

    def select(self, prefix: str) -> List[TraceRecord]:
        """All stored records whose category sits under ``prefix``."""
        return [r for r in self.records if r.matches(prefix)]

    def issues(self) -> List[TraceRecord]:
        """All records in the ``issue.*`` namespace (LPC classifier input)."""
        return self.select("issue")

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def begin_span(self, time: float, category: str, source: str,
                   parent_id: Optional[int] = None, **data: Any) -> Span:
        """Open a new span starting at ``time`` under ``parent_id``.

        In ``stream`` mode the span is handed to begin hooks but not
        retained; causal links still work because the caller holds the
        span object until :meth:`end_span`.
        """
        span = Span(next(self._span_seq), parent_id, category, source, time,
                    data=data)
        if self._retain:
            self.spans.append(span)
        for hook in self._span_begin_hooks:
            hook(span)
        return span

    def end_span(self, span: Span, time: float, status: str = "ok") -> None:
        """Close ``span`` at ``time`` and notify span hooks."""
        span.end = time
        span.status = status
        for hook in self._span_hooks:
            hook(span)

    def add_span_hook(self, callback: Callable[[Span], None]) -> Callable[[], None]:
        """Call ``callback(span)`` whenever a span ends; returns a remover."""
        self._span_hooks.append(callback)

        def remove() -> None:
            try:
                self._span_hooks.remove(callback)
            except ValueError:
                pass

        return remove

    def add_span_begin_hook(self, callback: Callable[[Span], None],
                            ) -> Callable[[], None]:
        """Call ``callback(span)`` whenever a span begins; returns a remover."""
        self._span_begin_hooks.append(callback)

        def remove() -> None:
            try:
                self._span_begin_hooks.remove(callback)
            except ValueError:
                pass

        return remove

    def select_spans(self, prefix: str) -> List[Span]:
        """All spans whose category sits under ``prefix``."""
        return [s for s in self.spans if s.matches(prefix)]

    def open_spans(self) -> List[Span]:
        """Spans begun but never ended (useful for leak hunting)."""
        return [s for s in self.spans if s.end is None]

    # ------------------------------------------------------------------
    def clear(self) -> None:
        self.records.clear()
        self.spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)


def span_children(spans: List[Span]) -> Dict[Optional[int], List[Span]]:
    """Index ``spans`` by parent: the causal tree as an adjacency map.

    Roots sit under the ``None`` key.  Children keep span-id order, which
    is begin order — deterministic for seeded runs.
    """
    tree: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent_id, []).append(span)
    for children in tree.values():
        children.sort(key=lambda s: s.span_id)
    return tree


def span_ancestry(spans: List[Span], leaf: Span) -> List[Span]:
    """The chain from ``leaf`` up to its root, leaf first."""
    by_id = {s.span_id: s for s in spans}
    chain = [leaf]
    seen = {leaf.span_id}
    while chain[-1].parent_id is not None:
        parent = by_id.get(chain[-1].parent_id)
        if parent is None or parent.span_id in seen:
            break
        chain.append(parent)
        seen.add(parent.span_id)
    return chain
