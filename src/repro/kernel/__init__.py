"""Deterministic discrete-event simulation kernel.

The kernel is the substrate under every other package: the radio
environment, MAC, transport, discovery middleware, services, and the
simulated users all run as events on one :class:`Simulator`.
"""

from .errors import (
    AddressError,
    ConfigurationError,
    ConstraintViolation,
    DiscoveryError,
    ExperimentError,
    LeaseError,
    ModelError,
    NetworkError,
    ProcessError,
    ReproError,
    ScheduleError,
    ServiceError,
    SessionError,
    SimulationError,
    SimulationFinished,
    TransportError,
)
from .batchq import BatchHandle, BatchQueue, UnbatchedQueue
from .events import Event, Priority
from .process import Process, Signal, spawn
from .random import RandomStreams
from .scheduler import PeriodicTask, Simulator
from .trace import NULL_SPAN, Span, TraceRecord, Tracer

__all__ = [
    "AddressError",
    "BatchHandle",
    "BatchQueue",
    "ConfigurationError",
    "ConstraintViolation",
    "DiscoveryError",
    "Event",
    "ExperimentError",
    "LeaseError",
    "ModelError",
    "NULL_SPAN",
    "NetworkError",
    "PeriodicTask",
    "Priority",
    "Process",
    "ProcessError",
    "RandomStreams",
    "ReproError",
    "ScheduleError",
    "ServiceError",
    "SessionError",
    "Signal",
    "SimulationError",
    "SimulationFinished",
    "Simulator",
    "Span",
    "TraceRecord",
    "Tracer",
    "TransportError",
    "UnbatchedQueue",
    "spawn",
]
