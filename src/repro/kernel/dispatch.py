"""Monomorphic dispatch loops for :class:`repro.kernel.scheduler.Simulator`.

``Simulator.run`` used to be one polymorphic loop that re-tested, per
event, conditions that are invariant for the whole call: is tracing on?
is there an ``until`` horizon or ``max_events`` budget?  Each test is
cheap, but at millions of events per second the tests *are* the
workload.  This module holds a small family of loop *variants*, one per
combination of those invariants; ``Simulator.run`` picks the matching
variant once at entry and the selected loop carries nothing it does not
need.

Heap entries are plain 7-tuples ``(time, priority, seq, fn, args, ctx,
handle)`` rather than :class:`~repro.kernel.events.Event` objects:
``heapq`` then compares entries with the C tuple comparator (which never
reaches ``fn`` — ``seq`` is globally unique), and the loops unpack one
entry in a single ``UNPACK_SEQUENCE`` instead of seven attribute loads.
``handle`` is the :class:`Event` cancellation handle for public
``schedule``/``schedule_at`` entries and ``None`` for the
``schedule_bound`` fast path, which is what the old free-list pooling
existed to optimise — tuples made the pool redundant.

Variant selection (see docs/performance.md for the full table):

========  =======================================================
axis      selected when
========  =======================================================
traced    ``tracer.enabled`` or a span context is ambient at
          ``run()`` entry.  The traced loops re-establish the
          captured span context around every callback.  The plain
          loops assume the no-span invariant — ``_span_ctx`` is
          ``None`` at every event boundary — which holds because a
          disabled tracer never activates spans and every direct
          ``_span_ctx`` writer (transport, ``_SpanScope``)
          save/restores within its own event.
bounded   an ``until`` horizon or ``max_events`` budget was given.
          The unbounded loops drain the heap with no limit tests
          at all.
batched   batch classes exist — handled by the two-source merge in
          ``Simulator._run_merged``, not here.
metrics   *no variant*: the kernel does no per-event metrics work
          (gauges/probes are sampled, not event-driven), so the
          metrics axis collapses onto the same loops by design.
          LPC109 keeps it that way.
========  =======================================================

Every loop body is byte-for-byte equivalent to the reference semantics
pinned by ``tests/test_kernel_dispatch_matrix.py``: identical event
orderings, span parentage, cancellation accounting and clock behaviour.

The ``HOT_LOOP`` registry names the functions that carry the
zero-overhead contract; the static pass (rule ``LPC109`` in
:mod:`repro.checks.determinism`) flags any per-event attribute read
reintroduced inside their loops, except the deliberate short allow-list
in :data:`HOT_LOOP_ALLOWED_ATTRS`.
"""

from __future__ import annotations

from heapq import heappop, heappush

__all__ = ["HOT_LOOP", "HOT_LOOP_ALLOWED_ATTRS", "select_loop",
           "loop_plain", "loop_traced", "loop_bounded",
           "loop_traced_bounded"]

#: Functions holding the kernel's zero-overhead dispatch contract.
#: LPC109 flags per-event attribute reads inside ``while``/``for``
#: bodies of any function with one of these names.
HOT_LOOP = frozenset({
    "loop_plain",
    "loop_traced",
    "loop_bounded",
    "loop_traced_bounded",
})

#: Attribute reads a hot loop legitimately performs per event:
#: ``handle.cancelled`` (lazy-cancellation check), ``sim._stopped``
#: (the ``stop()`` latch) and ``sim._span_ctx`` (ambient span restore,
#: traced variants only).  Everything else must be hoisted into a local
#: before the loop.
HOT_LOOP_ALLOWED_ATTRS = frozenset({"cancelled", "_stopped", "_span_ctx"})


def loop_plain(sim, queue):
    """Untraced, unbounded: the fastest path — drain the heap dry."""
    pop = heappop
    executed = 0
    while queue:
        t, _p, _s, fn, args, ctx, handle = pop(queue)
        if handle is not None:
            if handle.cancelled:
                sim._cancelled_count -= 1
                continue
            # Fired: break ref cycles; a late cancel() is a true no-op.
            handle.owner = None
            handle.fn = None
            handle.args = ()
        sim._now = t
        if ctx is None:
            fn(*args)
        else:
            # Rare here (no-span invariant): restore the captured span
            # context for this callback only.
            sim._span_ctx = ctx
            fn(*args)
            sim._span_ctx = None
        executed += 1
        if sim._stopped:
            break
    return executed


def loop_traced(sim, queue):
    """Traced, unbounded: per-event span-context save/restore."""
    pop = heappop
    executed = 0
    while queue:
        t, _p, _s, fn, args, ctx, handle = pop(queue)
        if handle is not None:
            if handle.cancelled:
                sim._cancelled_count -= 1
                continue
            handle.owner = None
            handle.fn = None
            handle.args = ()
        sim._now = t
        if ctx is not None or sim._span_ctx is not None:
            # Restore the causal span context captured at schedule time,
            # and clear it after — a span "continues" only in the events
            # it scheduled, never by wall-clock accident.
            sim._span_ctx = ctx
            fn(*args)
            sim._span_ctx = None
        else:
            fn(*args)
        executed += 1
        if sim._stopped:
            break
    return executed


def loop_bounded(sim, queue, until, max_events):
    """Untraced with an ``until`` horizon and/or ``max_events`` budget.

    The caller substitutes ``math.inf`` for whichever bound is absent, so
    one variant serves both and the tests stay branch-predictable.  A
    live head beyond the bounds is pushed straight back — content and
    ordering of the heap are unchanged; dead heads are discarded even
    past the horizon, exactly like the unbounded loops.
    """
    pop = heappop
    push = heappush
    executed = 0
    while queue:
        entry = pop(queue)
        t, _p, _s, fn, args, ctx, handle = entry
        if handle is not None and handle.cancelled:
            sim._cancelled_count -= 1
            continue
        if t > until or executed >= max_events:
            push(queue, entry)
            break
        if handle is not None:
            handle.owner = None
            handle.fn = None
            handle.args = ()
        sim._now = t
        if ctx is None:
            fn(*args)
        else:
            sim._span_ctx = ctx
            fn(*args)
            sim._span_ctx = None
        executed += 1
        if sim._stopped:
            break
    return executed


def loop_traced_bounded(sim, queue, until, max_events):
    """Traced with an ``until`` horizon and/or ``max_events`` budget."""
    pop = heappop
    push = heappush
    executed = 0
    while queue:
        entry = pop(queue)
        t, _p, _s, fn, args, ctx, handle = entry
        if handle is not None and handle.cancelled:
            sim._cancelled_count -= 1
            continue
        if t > until or executed >= max_events:
            push(queue, entry)
            break
        if handle is not None:
            handle.owner = None
            handle.fn = None
            handle.args = ()
        sim._now = t
        if ctx is not None or sim._span_ctx is not None:
            sim._span_ctx = ctx
            fn(*args)
            sim._span_ctx = None
        else:
            fn(*args)
        executed += 1
        if sim._stopped:
            break
    return executed


_LOOPS = {
    (False, False): loop_plain,
    (True, False): loop_traced,
    (False, True): loop_bounded,
    (True, True): loop_traced_bounded,
}


def select_loop(traced: bool, bounded: bool):
    """The monomorphic loop for one ``run()`` call's invariants."""
    return _LOOPS[(traced, bounded)]
