"""The discrete-event simulation kernel.

:class:`Simulator` is the heart of the reproduction: every substrate the
paper depends on (radio environment, 802.11-style MAC, transport, Jini-style
discovery, VNC-like framebuffer, simulated users) runs as callbacks on a
single deterministic event loop.

Design notes (following the HPC guides' "make it work, measure, then
optimise the bottleneck" workflow):

* The hot path is ``heapq`` push/pop of small ``Event`` objects with
  ``__slots__`` — profiling showed object allocation dominates, so events
  carry pre-bound args instead of closures where the callers are hot
  (the MAC and radio layers), and the :meth:`Simulator.schedule_bound`
  fast path recycles events through a free list (no handle escapes, so
  reuse is safe).
* Bulk cancellation (periodic tasks, retry timers) is O(1) per cancel and
  triggers a heap compaction once dead entries outnumber live ones, so
  ``run``/``peek``/``pending`` never degrade to O(dead events).
* Determinism: ties are broken by ``(priority, seq)``; all randomness flows
  through :class:`repro.kernel.random.RandomStreams`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from .errors import ScheduleError, SimulationFinished
from .events import Event, Priority
from .random import RandomStreams
from .trace import TraceRecord, Tracer

#: Upper bound on the event free list; beyond this, fired pooled events are
#: simply dropped for the GC.  Large enough for the densest MAC workloads
#: (every in-flight transmission holds at most a handful of timers).
FREE_LIST_CAP: int = 4096

#: Minimum queue size before cancellation-triggered compaction kicks in —
#: below this, the lazy pop-at-head discard is always cheap enough.
COMPACT_MIN_QUEUE: int = 64

_PROTOCOL = int(Priority.PROTOCOL)


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        seed: root seed for all named random streams.
        trace: whether to record trace events (cheap to leave on; heavy
            interference sweeps turn it off).
        trace_capacity: optional bound on stored trace records.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(5.0, fired.append, "hello")
        >>> sim.run()
        1
        >>> (sim.now, fired)
        (5.0, ['hello'])
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = True,
        trace_capacity: Optional[int] = None,
    ) -> None:
        self._now: float = 0.0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: free list of recyclable (pooled) events for the fast path.
        self._free: List[Event] = []
        #: exact count of cancelled events still sitting in the queue.
        self._cancelled_count: int = 0
        #: number of threshold-triggered heap compactions (observability).
        self.compactions: int = 0
        self.streams = RandomStreams(seed)
        self.tracer = Tracer(enabled=trace, capacity=trace_capacity)
        self.events_executed: int = 0
        #: arbitrary shared registry for components to find each other
        #: (e.g. the radio medium, the lookup service); keyed by name.
        self.context: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.PROTOCOL,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ScheduleError(f"negative delay {delay!r}")
        if self._stopped:
            raise SimulationFinished("simulator has been stopped")
        event = Event(self._now + delay, priority, self._seq, fn, args)
        event.owner = self
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.PROTOCOL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if self._stopped:
            raise SimulationFinished("simulator has been stopped")
        if time < self._now:
            raise ScheduleError(
                f"cannot schedule at {time!r}, now is {self._now!r}"
            )
        event = Event(time, priority, self._seq, fn, args)
        event.owner = self
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_bound(
        self,
        delay: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = _PROTOCOL,
    ) -> None:
        """Fast-path scheduling for hot inner loops (MAC/radio timers).

        Skips the per-call validation of :meth:`schedule` (the callers pass
        non-negative protocol constants) and recycles :class:`Event` objects
        through a free list.  No handle is returned — fast-path events cannot
        be cancelled — which is exactly what makes recycling safe: no caller
        can hold a stale reference to a reused event.

        ``args`` is passed as a tuple rather than ``*args`` so the call site
        builds exactly one tuple and the scheduler adds zero re-packing.
        """
        free = self._free
        if free:
            event = free.pop()
            event.time = self._now + delay
            event.priority = priority
            event.seq = self._seq
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(self._now + delay, priority, self._seq, fn, args)
            event.pooled = True
        self._seq += 1
        heapq.heappush(self._queue, event)

    def call_soon(self, fn: Callable[..., Any], *args: Any,
                  priority: int = Priority.PROTOCOL) -> Event:
        """Schedule ``fn`` at the current time (after pending same-time events)."""
        return self.schedule_at(self._now, fn, *args, priority=priority)

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        priority: int = Priority.PROTOCOL,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled."""
        if interval <= 0:
            raise ScheduleError(f"non-positive interval {interval!r}")
        task = PeriodicTask(self, interval, fn, args, priority)
        first = self._now + (interval if start is None else start)
        task._arm(first)
        return task

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the number of events executed by
        this call.

        When stopped by ``until``, the clock is advanced *to* ``until`` so a
        subsequent ``run`` resumes cleanly and time-based metrics integrate
        over the full horizon.
        """
        if self._stopped:
            raise SimulationFinished("simulator has been stopped")
        executed = 0
        queue = self._queue
        free = self._free
        pop = heapq.heappop
        self._running = True
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    pop(queue)
                    self._cancelled_count -= 1
                    if event.pooled and len(free) < FREE_LIST_CAP:
                        free.append(event)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                pop(queue)
                self._now = event.time
                fn, args = event.fn, event.args
                event.fn, event.args = None, ()  # break ref cycles
                event.owner = None  # fired: late cancel() is a true no-op
                fn(*args)  # type: ignore[misc]
                executed += 1
                if event.pooled and len(free) < FREE_LIST_CAP:
                    free.append(event)
                if self._stopped:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        self.events_executed += executed
        return executed

    def step(self) -> bool:
        """Run exactly one event.  Returns False when the queue is empty."""
        return self.run(max_events=1) == 1

    def stop(self) -> None:
        """Halt the simulation permanently; pending events are discarded."""
        self._stopped = True
        for event in self._queue:
            event.owner = None  # discarded: a late cancel() must not count
        self._queue.clear()
        self._cancelled_count = 0

    @property
    def stopped(self) -> bool:
        return self._stopped

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): the scheduler tracks the exact count of dead entries instead
        of scanning the heap.
        """
        return len(self._queue) - self._cancelled_count

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        queue = self._queue
        free = self._free
        while queue and queue[0].cancelled:
            event = heapq.heappop(queue)
            self._cancelled_count -= 1
            if event.pooled and len(free) < FREE_LIST_CAP:
                free.append(event)
        return queue[0].time if queue else None

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` for every event dying in-queue.

        Keeps ``pending()`` O(1) and compacts the heap once dead entries
        outnumber live ones, so workloads that cancel in bulk (periodic
        tasks, retry timers) never degrade ``run()``/``peek()`` to
        O(dead events).
        """
        self._cancelled_count += 1
        if (self._cancelled_count > COMPACT_MIN_QUEUE
                and self._cancelled_count * 2 > len(self._queue)):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries.

        Mutates the queue *in place*: ``run()`` holds a local reference to
        the list, so rebinding ``self._queue`` here would silently detach a
        running event loop from every event scheduled afterwards.
        """
        free = self._free
        queue = self._queue
        live: List[Event] = []
        for event in queue:
            if event.cancelled:
                if event.pooled and len(free) < FREE_LIST_CAP:
                    free.append(event)
            else:
                live.append(event)
        queue[:] = live
        heapq.heapify(queue)
        self._cancelled_count = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Randomness and tracing
    # ------------------------------------------------------------------
    def rng(self, name: str):
        """The named random stream (see :class:`RandomStreams`)."""
        return self.streams.stream(name)

    def trace(self, category: str, source: str, message: str, **data: Any) -> None:
        """Emit a structured trace record at the current time."""
        if self.tracer.enabled or category.startswith("issue"):
            self.tracer.emit(TraceRecord(self._now, category, source, message, data))

    def issue(self, topic: str, source: str, message: str, **data: Any) -> None:
        """Emit an *issue* — a concern the LPC classifier will place in a
        layer.  Issues are recorded even when ordinary tracing is disabled,
        because experiment E9 depends on them."""
        record = TraceRecord(self._now, f"issue.{topic}", source, message, data)
        enabled = self.tracer.enabled
        self.tracer.enabled = True
        try:
            self.tracer.emit(record)
        finally:
            self.tracer.enabled = enabled


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(self, sim: Simulator, interval: float,
                 fn: Callable[..., Any], args: tuple, priority: int) -> None:
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.priority = priority
        self.fires = 0
        self.cancelled = False
        self._event: Optional[Event] = None

    def _arm(self, time: float) -> None:
        self._event = self.sim.schedule_at(time, self._fire, priority=self.priority)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fires += 1
        self.fn(*self.args)
        if not self.cancelled and not self.sim.stopped:
            self._arm(self.sim.now + self.interval)

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None
