"""The discrete-event simulation kernel.

:class:`Simulator` is the heart of the reproduction: every substrate the
paper depends on (radio environment, 802.11-style MAC, transport, Jini-style
discovery, VNC-like framebuffer, simulated users) runs as callbacks on a
single deterministic event loop.

Design notes (following the HPC guides' "make it work, measure, then
optimise the bottleneck" workflow):

* The hot path is ``heapq`` push/pop of small ``Event`` objects with
  ``__slots__`` — profiling showed object allocation dominates, so events
  carry pre-bound args instead of closures where the callers are hot
  (the MAC and radio layers).
* Determinism: ties are broken by ``(priority, seq)``; all randomness flows
  through :class:`repro.kernel.random.RandomStreams`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional

from .errors import ScheduleError, SimulationFinished
from .events import Event, Priority
from .random import RandomStreams
from .trace import TraceRecord, Tracer


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        seed: root seed for all named random streams.
        trace: whether to record trace events (cheap to leave on; heavy
            interference sweeps turn it off).
        trace_capacity: optional bound on stored trace records.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(5.0, fired.append, "hello")
        >>> sim.run()
        1
        >>> (sim.now, fired)
        (5.0, ['hello'])
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = True,
        trace_capacity: Optional[int] = None,
    ) -> None:
        self._now: float = 0.0
        self._queue: List[Event] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)
        self.tracer = Tracer(enabled=trace, capacity=trace_capacity)
        self.events_executed: int = 0
        #: arbitrary shared registry for components to find each other
        #: (e.g. the radio medium, the lookup service); keyed by name.
        self.context: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.PROTOCOL,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ScheduleError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.PROTOCOL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if self._stopped:
            raise SimulationFinished("simulator has been stopped")
        if time < self._now:
            raise ScheduleError(
                f"cannot schedule at {time!r}, now is {self._now!r}"
            )
        event = Event(time, priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, fn: Callable[..., Any], *args: Any,
                  priority: int = Priority.PROTOCOL) -> Event:
        """Schedule ``fn`` at the current time (after pending same-time events)."""
        return self.schedule_at(self._now, fn, *args, priority=priority)

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        priority: int = Priority.PROTOCOL,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled."""
        if interval <= 0:
            raise ScheduleError(f"non-positive interval {interval!r}")
        task = PeriodicTask(self, interval, fn, args, priority)
        first = self._now + (interval if start is None else start)
        task._arm(first)
        return task

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the number of events executed by
        this call.

        When stopped by ``until``, the clock is advanced *to* ``until`` so a
        subsequent ``run`` resumes cleanly and time-based metrics integrate
        over the full horizon.
        """
        if self._stopped:
            raise SimulationFinished("simulator has been stopped")
        executed = 0
        queue = self._queue
        self._running = True
        try:
            while queue:
                event = queue[0]
                if event.cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and event.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(queue)
                self._now = event.time
                fn, args = event.fn, event.args
                event.fn, event.args = None, ()  # break ref cycles
                fn(*args)  # type: ignore[misc]
                executed += 1
                if self._stopped:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        self.events_executed += executed
        return executed

    def step(self) -> bool:
        """Run exactly one event.  Returns False when the queue is empty."""
        return self.run(max_events=1) == 1

    def stop(self) -> None:
        """Halt the simulation permanently; pending events are discarded."""
        self._stopped = True
        self._queue.clear()

    @property
    def stopped(self) -> bool:
        return self._stopped

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    # ------------------------------------------------------------------
    # Randomness and tracing
    # ------------------------------------------------------------------
    def rng(self, name: str):
        """The named random stream (see :class:`RandomStreams`)."""
        return self.streams.stream(name)

    def trace(self, category: str, source: str, message: str, **data: Any) -> None:
        """Emit a structured trace record at the current time."""
        if self.tracer.enabled or category.startswith("issue"):
            self.tracer.emit(TraceRecord(self._now, category, source, message, data))

    def issue(self, topic: str, source: str, message: str, **data: Any) -> None:
        """Emit an *issue* — a concern the LPC classifier will place in a
        layer.  Issues are recorded even when ordinary tracing is disabled,
        because experiment E9 depends on them."""
        record = TraceRecord(self._now, f"issue.{topic}", source, message, data)
        enabled = self.tracer.enabled
        self.tracer.enabled = True
        try:
            self.tracer.emit(record)
        finally:
            self.tracer.enabled = enabled


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(self, sim: Simulator, interval: float,
                 fn: Callable[..., Any], args: tuple, priority: int) -> None:
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.priority = priority
        self.fires = 0
        self.cancelled = False
        self._event: Optional[Event] = None

    def _arm(self, time: float) -> None:
        self._event = self.sim.schedule_at(time, self._fire, priority=self.priority)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fires += 1
        self.fn(*self.args)
        if not self.cancelled and not self.sim.stopped:
            self._arm(self.sim.now + self.interval)

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None
