"""The discrete-event simulation kernel.

:class:`Simulator` is the heart of the reproduction: every substrate the
paper depends on (radio environment, 802.11-style MAC, transport, Jini-style
discovery, VNC-like framebuffer, simulated users) runs as callbacks on a
single deterministic event loop.

Design notes (following the HPC guides' "make it work, measure, then
optimise the bottleneck" workflow):

* The hot path is ``heapq`` push/pop of plain 7-tuples ``(time, priority,
  seq, fn, args, ctx, handle)`` — profiling showed per-event attribute
  walks and Python-level ``Event.__lt__`` comparisons dominated, so heap
  entries are tuples compared by the C tuple comparator (``seq`` is
  unique, so comparison never reaches ``fn``) and unpacked in one
  instruction.  ``handle`` is the :class:`Event` cancellation handle for
  public ``schedule`` calls and ``None`` on the
  :meth:`Simulator.schedule_bound` fast path.
* ``run()`` selects a *monomorphic loop variant* at entry (traced x
  bounded; see :mod:`repro.kernel.dispatch`) so the common disabled-path
  loop carries zero per-event feature tests.
* Bulk cancellation (periodic tasks, retry timers) is O(1) per cancel and
  triggers a heap compaction once dead entries outnumber live ones, so
  ``run``/``peek``/``pending`` never degrade to O(dead events).
* Determinism: ties are broken by ``(priority, seq)``; all randomness flows
  through :class:`repro.kernel.random.RandomStreams`.
"""

from __future__ import annotations

import heapq
from math import inf
from typing import Any, Callable, Dict, List, Optional, Tuple

from .backend import Kernels, resolve as _resolve_backend
from .batchq import COMPACT_MIN_QUEUE, BatchQueue, UnbatchedQueue
from .dispatch import select_loop
from .errors import ScheduleError, SimulationFinished
from .events import Event, Priority
from .random import RandomStreams
from .trace import NULL_SPAN, Span, TraceRecord, Tracer

__all__ = ["COMPACT_MIN_QUEUE", "PeriodicTask", "Simulator"]

_PROTOCOL = int(Priority.PROTOCOL)


class Simulator:
    """A deterministic discrete-event simulator.

    Args:
        seed: root seed for all named random streams.
        trace: whether to record trace events (cheap to leave on; heavy
            interference sweeps turn it off).
        trace_capacity: optional bound on stored trace records.
        trace_mode: bounded-buffer policy when ``trace_capacity`` is set —
            ``"head"`` drops the newest records, ``"ring"`` the oldest;
            ``"stream"`` retains nothing and only feeds tracer subscribers
            (pair with a streaming aggregator or live exporter).
        batching: whether :meth:`batch_class` returns the struct-of-arrays
            batched engine (the default) or a legacy per-event shim — the
            byte-identical oracle path the equivalence tests compare
            against.
        batch_spans: emit a ``kernel.cohort`` span around every batched
            cohort.  Off by default because extra spans would break the
            batching-equivalence oracle; turn on for engine debugging.
        backend: inner-kernel backend for the batch engine —
            ``"python"`` (the always-available oracle) or ``"compiled"``
            (mypyc/numba, silently falling back to the oracle when no
            compiler is installed).  ``None`` (the default) reads
            ``$REPRO_KERNEL_BACKEND``.  See :mod:`repro.kernel.backend`.

    Example:
        >>> sim = Simulator(seed=1)
        >>> fired = []
        >>> _ = sim.schedule(5.0, fired.append, "hello")
        >>> sim.run()
        1
        >>> (sim.now, fired)
        (5.0, ['hello'])
    """

    def __init__(
        self,
        seed: int = 0,
        trace: bool = True,
        trace_capacity: Optional[int] = None,
        trace_mode: str = "head",
        batching: bool = True,
        batch_spans: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        self._now: float = 0.0
        #: the heap of 7-tuples ``(time, priority, seq, fn, args, ctx,
        #: handle)``; ``handle`` is an :class:`Event` or None (fast path).
        self._queue: List[tuple] = []
        self._seq: int = 0
        self._running = False
        self._stopped = False
        #: resolved inner-kernel backend for the batch engine.
        self._kernels: Kernels = _resolve_backend(backend)
        #: exact count of cancelled events still sitting in the queue.
        self._cancelled_count: int = 0
        #: number of threshold-triggered heap compactions (observability).
        self.compactions: int = 0
        self.streams = RandomStreams(seed)
        self.tracer = Tracer(enabled=trace, capacity=trace_capacity,
                             mode=trace_mode)
        #: span id of the currently-active causal span (ambient context);
        #: captured by every schedule call and restored by the run loop.
        self._span_ctx: Optional[int] = None
        #: lazily-created MetricsRegistry (see the ``metrics`` property).
        self._metrics: Optional[Any] = None
        self.events_executed: int = 0
        #: arbitrary shared registry for components to find each other
        #: (e.g. the radio medium, the lookup service); keyed by name.
        self.context: Dict[str, Any] = {}
        self.batching = bool(batching)
        self.batch_spans = bool(batch_spans)
        #: registered homogeneous batch classes (see :meth:`batch_class`).
        self._batches: List[BatchQueue] = []
        self._batch_names: Dict[str, Any] = {}
        #: cached global batch head ``(time, priority, seq, queue)`` plus
        #: the best head among the *other* classes (the drain limit), and
        #: the dirty flag that forces a rescan.  A schedule can only lower
        #: the minimum, so it updates the cache in O(1); cancels and drains
        #: set the flag instead.
        self._bhead: Optional[tuple] = None
        self._bsecond: Optional[tuple] = None
        self._bdirty = False
        #: ``kernel.cancelled_ratio`` gauge, created with the registry.
        self._cancel_gauge: Optional[Any] = None

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.PROTOCOL,
    ) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ScheduleError(f"negative delay {delay!r}")
        if self._stopped:
            raise SimulationFinished("simulator has been stopped")
        event = Event(self._now + delay, priority, self._seq, fn, args)
        event.owner = self
        event.ctx = self._span_ctx
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event.priority, event.seq,
                                     fn, args, event.ctx, event))
        return event

    def schedule_at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = Priority.PROTOCOL,
    ) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if self._stopped:
            raise SimulationFinished("simulator has been stopped")
        if time < self._now:
            raise ScheduleError(
                f"cannot schedule at {time!r}, now is {self._now!r}"
            )
        event = Event(time, priority, self._seq, fn, args)
        event.owner = self
        event.ctx = self._span_ctx
        self._seq += 1
        heapq.heappush(self._queue, (event.time, event.priority, event.seq,
                                     fn, args, event.ctx, event))
        return event

    def schedule_bound(
        self,
        delay: float,
        fn: Callable[..., Any],
        args: tuple = (),
        priority: int = _PROTOCOL,
    ) -> None:
        """Fast-path scheduling for hot inner loops (MAC/radio timers).

        Skips the per-call validation of :meth:`schedule` (the callers pass
        non-negative protocol constants) and allocates no :class:`Event`
        at all: the heap entry is one tuple with a ``None`` handle slot.
        No handle is returned — fast-path events cannot be cancelled.

        ``args`` is passed as a tuple rather than ``*args`` so the call site
        builds exactly one tuple and the scheduler adds zero re-packing.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self._now + delay, priority, seq,
                                     fn, args, self._span_ctx, None))

    def call_soon(self, fn: Callable[..., Any], *args: Any,
                  priority: int = Priority.PROTOCOL) -> Event:
        """Schedule ``fn`` at the current time (after pending same-time events)."""
        return self.schedule_at(self._now, fn, *args, priority=priority)

    def every(
        self,
        interval: float,
        fn: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
        priority: int = Priority.PROTOCOL,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` every ``interval`` seconds until cancelled."""
        if interval <= 0:
            raise ScheduleError(f"non-positive interval {interval!r}")
        task = PeriodicTask(self, interval, fn, args, priority)
        first = self._now + (interval if start is None else start)
        task._arm(first)
        return task

    # ------------------------------------------------------------------
    # Batched homogeneous event classes
    # ------------------------------------------------------------------
    def batch_class(self, name: str, fn: Callable[[int, Any], None], *,
                    priority: int = Priority.PROTOCOL,
                    cohort_fn: Optional[Callable[..., None]] = None,
                    cancellable: bool = True, shared: bool = False) -> Any:
        """Register a homogeneous event class (see :mod:`.batchq`).

        ``fn(owner, payload)`` is the per-entry callback; every entry of
        the class shares it, which is what lets the engine store entries
        struct-of-arrays and drain same-deadline cohorts in one pass.
        With ``shared=True`` a second registration under the same name
        returns the existing queue (for module-level callbacks serving
        many components); otherwise names are auto-suffixed on collision.
        With ``batching=False`` the returned shim schedules plain heap
        events, byte-identical to the pre-batching kernel.
        """
        names = self._batch_names
        if shared:
            existing = names.get(name)
            if existing is not None:
                if existing.fn is not fn:
                    raise ScheduleError(
                        f"batch class {name!r} already registered with a "
                        "different callback")
                return existing
        elif name in names:
            suffix = 2
            while f"{name}#{suffix}" in names:
                suffix += 1
            name = f"{name}#{suffix}"
        if self.batching:
            queue: Any = BatchQueue(self, name, fn, int(priority),
                                    cohort_fn=cohort_fn,
                                    cancellable=cancellable)
            self._batches.append(queue)
        else:
            queue = UnbatchedQueue(self, name, fn, int(priority),
                                   cancellable=cancellable)
        names[name] = queue
        return queue

    def _note_batch_key(self, time: float, priority: int, seq: int,
                        queue: Any) -> None:
        """O(1) head-cache maintenance for one newly scheduled entry."""
        if self._bdirty:
            return
        head = self._bhead
        if head is None:
            self._bhead = (time, priority, seq, queue)
            self._bsecond = None
            return
        if queue is head[3]:
            if (time, priority, seq) < (head[0], head[1], head[2]):
                self._bhead = (time, priority, seq, queue)
            return
        if (time, priority, seq) < (head[0], head[1], head[2]):
            # The displaced head belonged to another class, so it is a
            # valid (conservative) bound on every other class's head.
            self._bsecond = (head[0], head[1], head[2])
            self._bhead = (time, priority, seq, queue)
        else:
            second = self._bsecond
            if second is None or (time, priority, seq) < second:
                self._bsecond = (time, priority, seq)

    def _rescan_batches(self) -> None:
        """Recompute the global batch head and the best sibling head."""
        best: Optional[tuple] = None
        best_queue: Any = None
        second: Optional[tuple] = None
        for queue in self._batches:
            key = queue._head_key()
            if key is None:
                continue
            if best is None or key < best:
                second = best
                best = key
                best_queue = queue
            elif second is None or key < second:
                second = key
        self._bhead = None if best is None else (best[0], best[1], best[2],
                                                 best_queue)
        self._bsecond = second
        self._bdirty = False

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Execute events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the number of events executed by
        this call.

        When stopped by ``until``, the clock is advanced *to* ``until`` so a
        subsequent ``run`` resumes cleanly and time-based metrics integrate
        over the full horizon.

        Dispatch is monomorphic: the matching loop variant (traced x
        bounded, see :mod:`repro.kernel.dispatch`) is selected *here*, once
        — so enabling tracing mid-run takes effect at the next ``run()``
        call, and the disabled-path loop carries zero per-event feature
        tests.
        """
        if self._stopped:
            raise SimulationFinished("simulator has been stopped")
        if self._batches:
            return self._run_merged(until, max_events)
        traced = self.tracer.enabled or self._span_ctx is not None
        bounded = until is not None or max_events is not None
        loop = select_loop(traced, bounded)
        self._running = True
        try:
            if bounded:
                executed = loop(self, self._queue,
                                inf if until is None else until,
                                inf if max_events is None else max_events)
            else:
                executed = loop(self, self._queue)
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        self.events_executed += executed
        self._update_cancel_gauge()
        return executed

    def _run_merged(self, until: Optional[float],
                    max_events: Optional[int]) -> int:
        """The two-source merge: heap events interleaved with batch-class
        drains on the full ``(time, priority, seq)`` key.

        Taken only when batch classes exist, so the pure-heap loop above
        keeps its zero-overhead fast path.  The heap branch mirrors that
        loop statement for statement; the batch branch hands the winning
        class a *limit* — the earliest foreign key (next heap event or
        sibling class head) — and lets it drain whole cohorts below it.
        """
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        self._running = True
        try:
            while True:
                while queue:
                    head = queue[0]
                    handle = head[6]
                    if handle is None or not handle.cancelled:
                        break
                    pop(queue)
                    self._cancelled_count -= 1
                if self._bdirty:
                    self._rescan_batches()
                bhead = self._bhead
                entry = queue[0] if queue else None
                # A 7-tuple entry compares against the 3-tuple batch key
                # on (time, priority, seq) alone: seq is globally unique,
                # so the comparison never runs past index 2.
                if entry is not None and (
                        bhead is None
                        or entry < (bhead[0], bhead[1], bhead[2])):
                    if until is not None and entry[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    pop(queue)
                    t, _p, _s, fn, args, ctx, handle = entry
                    if handle is not None:
                        # Fired: break ref cycles; late cancel() is a no-op.
                        handle.owner = None
                        handle.fn = None
                        handle.args = ()
                    self._now = t
                    if ctx is not None or self._span_ctx is not None:
                        self._span_ctx = ctx
                        fn(*args)  # type: ignore[misc]
                        self._span_ctx = None
                    else:
                        fn(*args)  # type: ignore[misc]
                    executed += 1
                    if self._stopped:
                        break
                elif bhead is not None:
                    if until is not None and bhead[0] > until:
                        break
                    if max_events is not None and executed >= max_events:
                        break
                    limit = self._bsecond
                    if entry is not None:
                        heap_key = (entry[0], entry[1], entry[2])
                        if limit is None or heap_key < limit:
                            limit = heap_key
                    budget = (None if max_events is None
                              else max_events - executed)
                    drained = bhead[3]._drain(limit, until, budget)
                    executed += drained
                    self._bdirty = True
                    if self._stopped:
                        break
                    if drained == 0:
                        continue  # stale head (all dead): rescan and retry
                else:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self._now < until:
            self._now = until
        self.events_executed += executed
        self._update_cancel_gauge()
        return executed

    def step(self) -> bool:
        """Run exactly one event.  Returns False when the queue is empty."""
        return self.run(max_events=1) == 1

    def stop(self) -> None:
        """Halt the simulation permanently; pending events are discarded."""
        self._stopped = True
        for entry in self._queue:
            handle = entry[6]
            if handle is not None:
                handle.owner = None  # discarded: late cancel() must not count
        self._queue.clear()
        self._cancelled_count = 0
        for batch in self._batches:
            batch._clear()
        self._bhead = None
        self._bsecond = None
        self._bdirty = False

    @property
    def stopped(self) -> bool:
        return self._stopped

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): the scheduler tracks the exact count of dead entries instead
        of scanning the heap.
        """
        live = len(self._queue) - self._cancelled_count
        for batch in self._batches:
            live += batch._live
        return live

    def peek(self) -> Optional[float]:
        """Time of the next live event, or None if the queue is empty."""
        queue = self._queue
        while queue:
            handle = queue[0][6]
            if handle is None or not handle.cancelled:
                break
            heapq.heappop(queue)
            self._cancelled_count -= 1
        head_time = queue[0][0] if queue else None
        if self._batches:
            if self._bdirty:
                self._rescan_batches()
            bhead = self._bhead
            if bhead is not None and (head_time is None
                                      or bhead[0] < head_time):
                head_time = bhead[0]
        return head_time

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` for every event dying in-queue.

        Keeps ``pending()`` O(1) and compacts the heap once dead entries
        outnumber live ones, so workloads that cancel in bulk (periodic
        tasks, retry timers) never degrade ``run()``/``peek()`` to
        O(dead events).
        """
        self._cancelled_count += 1
        if (self._cancelled_count > COMPACT_MIN_QUEUE
                and self._cancelled_count * 2 > len(self._queue)):
            self._compact()
        self._update_cancel_gauge()

    @property
    def cancelled_ratio(self) -> float:
        """Dead entries as a fraction of everything still stored — heap
        plus batch classes.  The same number is exposed live as the
        ``kernel.cancelled_ratio`` gauge once the metrics registry exists."""
        dead = self._cancelled_count
        total = len(self._queue)
        for batch in self._batches:
            dead += batch._dead
            total += batch._live + batch._dead
        return dead / total if total else 0.0

    def _update_cancel_gauge(self) -> None:
        gauge = self._cancel_gauge
        if gauge is not None:
            gauge.set(self.cancelled_ratio)

    def _compact(self) -> None:
        """Rebuild the heap without its cancelled entries.

        Mutates the queue *in place*: ``run()`` holds a local reference to
        the list, so rebinding ``self._queue`` here would silently detach a
        running event loop from every event scheduled afterwards.
        """
        queue = self._queue
        # Fast-path entries (handle None) are uncancellable, so dead
        # entries always carry a handle.
        queue[:] = [entry for entry in queue
                    if entry[6] is None or not entry[6].cancelled]
        heapq.heapify(queue)
        self._cancelled_count = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Randomness and tracing
    # ------------------------------------------------------------------
    def rng(self, name: str):
        """The named random stream (see :class:`RandomStreams`)."""
        return self.streams.stream(name)

    def trace(self, category: str, source: str, message: str, **data: Any) -> None:
        """Emit a structured trace record at the current time."""
        if self.tracer.enabled or category.startswith("issue"):
            self.tracer.emit(TraceRecord(self._now, category, source, message, data))

    def issue(self, topic: str, source: str, message: str, **data: Any) -> None:
        """Emit an *issue* — a concern the LPC classifier will place in a
        layer.  Issues are recorded even when ordinary tracing is disabled,
        because experiment E9 depends on them."""
        record = TraceRecord(self._now, f"issue.{topic}", source, message, data)
        enabled = self.tracer.enabled
        self.tracer.enabled = True
        try:
            self.tracer.emit(record)
        finally:
            self.tracer.enabled = enabled

    # ------------------------------------------------------------------
    # Causal spans
    # ------------------------------------------------------------------
    def span_begin(self, category: str, source: str, *,
                   parent: Optional[Span] = None, activate: bool = True,
                   **data: Any) -> Any:
        """Open a causal span at the current time and return it.

        The parent defaults to the *ambient* span — the one active in the
        current event, which the scheduler carried over from whichever
        event scheduled this one.  With ``activate`` (the default) the new
        span becomes ambient, so events scheduled before the matching
        :meth:`span_end` become its children.  With tracing disabled this
        returns the shared :data:`repro.kernel.trace.NULL_SPAN` and costs
        one predicate test.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return NULL_SPAN
        parent_id = self._span_ctx if parent is None else parent.span_id
        span = tracer.begin_span(self._now, category, source,
                                 parent_id=parent_id, **data)
        if activate:
            self._span_ctx = span.span_id
        return span

    def span_end(self, span: Any, status: str = "ok") -> None:
        """Close ``span`` at the current time.

        If the span is still the ambient one, ambience reverts to its
        parent.  Ending :data:`NULL_SPAN` (or any span from a disabled
        tracer) is a no-op, so callers never need their own enabled check.
        """
        if span.span_id is None:
            return
        self.tracer.end_span(span, self._now, status)
        if self._span_ctx == span.span_id:
            self._span_ctx = span.parent_id

    def span(self, category: str, source: str, **data: Any) -> "_SpanScope":
        """Context manager: ``with sim.span("session.acquire", name): ...``.

        Begins the span on entry, ends it on exit — with status ``"error"``
        if the block raised — and restores whatever span was ambient before,
        even if the block shifted ambience itself.
        """
        return _SpanScope(self, category, source, data)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> Any:
        """The per-simulator :class:`repro.metrics.registry.MetricsRegistry`.

        Created on first access (lazily — the metrics package imports this
        module, so importing it eagerly here would be circular).
        """
        registry = self._metrics
        if registry is None:
            from ..metrics.registry import MetricsRegistry
            registry = self._metrics = MetricsRegistry(self)
            self._cancel_gauge = registry.gauge("kernel.cancelled_ratio")
            registry.register_probe("kernel", self._kernel_probe)
        return registry

    def next_seq(self, name: str) -> int:
        """Monotonic per-simulator sequence counter, starting at 1.

        The sanctioned home for id/sequence counters that used to live
        as module-level ``itertools.count`` globals (the
        ``services.sessions._session_seq`` bug class, now LPC301): a
        module counter is shared by every simulator in the process and
        keeps ticking across runs, so run N+1 mints different ids than
        run N and forked shards diverge from the inline oracle.  Scoping
        the counter to the simulator keeps twin runs byte-identical.
        """
        value = self.context.get(name, 0) + 1
        self.context[name] = value
        return value

    def _kernel_probe(self) -> Dict[str, Any]:
        """Engine self-observability for metric snapshots.  Reflects the
        *internal* event store (batched vs legacy runs differ here even
        when outcomes are byte-identical), so the equivalence oracle
        excludes it — see docs/performance.md."""
        return {
            "cancelled_ratio": self.cancelled_ratio,
            "compactions": self.compactions,
            "batch": {batch.name: batch.stats()
                      for batch in self._batch_names.values()},
        }


class _SpanScope:
    """Context manager returned by :meth:`Simulator.span`."""

    __slots__ = ("sim", "category", "source", "data", "span", "_saved")

    def __init__(self, sim: Simulator, category: str, source: str,
                 data: Dict[str, Any]) -> None:
        self.sim = sim
        self.category = category
        self.source = source
        self.data = data
        self.span: Any = NULL_SPAN

    def __enter__(self) -> Any:
        self._saved = self.sim._span_ctx
        self.span = self.sim.span_begin(self.category, self.source,
                                        **self.data)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.sim.span_end(self.span, "error" if exc_type else "ok")
        self.sim._span_ctx = self._saved
        return False


class PeriodicTask:
    """Handle for a repeating callback created by :meth:`Simulator.every`."""

    def __init__(self, sim: Simulator, interval: float,
                 fn: Callable[..., Any], args: tuple, priority: int) -> None:
        self.sim = sim
        self.interval = interval
        self.fn = fn
        self.args = args
        self.priority = priority
        self.fires = 0
        self.cancelled = False
        self._event: Optional[Event] = None

    def _arm(self, time: float) -> None:
        self._event = self.sim.schedule_at(time, self._fire, priority=self.priority)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.fires += 1
        self.fn(*self.args)
        if not self.cancelled and not self.sim.stopped:
            self._arm(self.sim.now + self.interval)

    def cancel(self) -> None:
        self.cancelled = True
        if self._event is not None:
            self._event.cancel()
            self._event = None
