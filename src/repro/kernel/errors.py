"""Exception hierarchy for the simulation kernel and the layers built on it.

Every package in :mod:`repro` raises exceptions derived from
:class:`ReproError` so that callers can catch reproduction-library failures
without masking genuine programming errors (``TypeError`` etc. propagate
unchanged).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class ScheduleError(SimulationError):
    """An event was scheduled incorrectly (negative delay, in the past...)."""


class SimulationFinished(SimulationError):
    """Raised when interacting with a simulator that has been stopped."""


class ProcessError(SimulationError):
    """A simulation process misbehaved (bad yield value, dead process...)."""


class ConfigurationError(ReproError):
    """A model was constructed with inconsistent or invalid parameters."""


class NetworkError(ReproError):
    """Base class for errors in the network substrate."""


class AddressError(NetworkError):
    """An unknown or malformed address was used."""


class TransportError(NetworkError):
    """A reliable-transport operation failed (closed channel, overflow...)."""


class DiscoveryError(ReproError):
    """Base class for service-discovery failures."""


class LeaseError(DiscoveryError):
    """A lease operation failed (expired, unknown, denied...)."""


class LookupError_(DiscoveryError):
    """A lookup failed; named with a trailing underscore to avoid shadowing
    the builtin ``LookupError``."""


class ServiceError(ReproError):
    """Base class for abstract-layer service failures."""


class SessionError(ServiceError):
    """A session operation was rejected (busy, bad token, expired...)."""


class ModelError(ReproError):
    """The LPC conceptual model was used inconsistently."""


class ConstraintViolation(ModelError):
    """A cross-column LPC constraint check failed hard.

    Most constraint checks *report* violations rather than raise; this
    exception is reserved for callers that ask for strict enforcement.
    """


class ExperimentError(ReproError):
    """An experiment harness failure (unknown experiment, bad sweep...)."""
