"""Conservative parallel DES: one simulator per shard, forked workers.

The conceptual model scopes interactions physically, so a partitioned
world (:mod:`repro.env.partition`) decomposes into cells whose only
coupling is *boundary traffic*: frames audible across a cell edge,
discovery/lease exchanges with a remote registry, bridged wired links.
This module runs each shard as its own :class:`Simulator` in a forked
worker process and synchronises them with classic conservative
(Chandy–Misra–Bryant-style) time windows:

* **Lookahead** ``L`` is the minimum latency of *any* boundary event —
  cross-boundary propagation delay plus the minimum MAC turnaround on
  the far side.  Every :meth:`ShardPorts.send` must declare a delay of
  at least ``L``; a zero or negative lookahead is rejected outright
  (:class:`ConfigurationError`), because conservative synchronisation
  degenerates to lockstep there.
* **Null-message time advance.**  The coordinator grants each shard a
  window ``(G_prev, G]``.  A message generated at ``t`` inside a window
  takes effect at ``t + delay > G_prev + L``; as long as every grant
  satisfies ``G <= G_prev + L`` — or jumps straight to the earliest
  pending event when *nothing* can happen before it — no shard ever
  receives a message in its past.  The grant itself is the null
  message: it carries only time, and each ``done`` reply reports the
  shard's next local event so idle regions are skipped at event
  granularity instead of crawling one lookahead per round.
* **Boundary batches.**  Outgoing boundary events are grouped per
  ``(dst, channel)`` into struct-of-arrays batches (one float64 column
  of effect times plus a payload tuple) and land in the receiving
  shard's :class:`~repro.kernel.batchq.BatchQueue` via one
  ``schedule_many_at`` chunk append.  Batches are routed and injected
  in ``(src, channel)`` order, so simultaneous boundary events from
  different shards always join one ``(time, seq)`` cohort in the same
  deterministic order — in-process and multi-process runs are
  byte-identical.

:class:`ShardedSimulator` is the front-end.  With ``processes=True``
(and a ``fork``-capable platform) shards run in forked workers over
pipes; ``processes=False`` runs the *identical* window protocol
sequentially in one interpreter — the deterministic oracle the
multi-process path is tested against, and the fallback on platforms
without ``fork``.  A worker that raises ships its traceback to the
coordinator; a worker that dies surfaces as a clear
:class:`ExperimentError` instead of a hang.

Per-shard telemetry is reduced *inside* each worker (the builders
attach a ``StreamingAggregator`` and ship its summary — a few hundred
bytes, never raw traces) and merged by :func:`merge_summaries`.  The
merge keeps totals, issue counts and metric *counters*; like the
batching oracle, it drops ``medium.culling.*`` counters because they
report *how* audibility sets were built against the locally attached
population — legitimately different under partitioning — not *what*
the simulation did.

Shard isolation is enforced statically: rule ``LPC108``
(:mod:`repro.checks`) flags code outside this module reaching into
another shard's ``.sim``/``.world`` state — all cross-shard traffic
must flow through :class:`ShardPorts`.
"""

from __future__ import annotations

import multiprocessing
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .errors import (ConfigurationError, ExperimentError, ScheduleError,
                     SimulationFinished)
from .events import Priority
from .scheduler import Simulator

#: Counter prefixes excluded from merged-vs-oracle comparisons: they
#: describe the mechanics of the local engine, not simulation outcomes.
HOW_NOT_WHAT_COUNTERS: Tuple[str, ...] = ("medium.culling.",)


@dataclass
class BoundaryBatch:
    """One ``(src shard, dst shard, channel)`` group of boundary events.

    ``times`` is a float64 column of absolute effect times (already
    ``>= send time + lookahead``); ``payloads`` aligns with it.  This is
    the only thing that crosses a shard pipe during a run.
    """

    channel: str
    src: int
    dst: int
    times: np.ndarray
    payloads: Tuple[Any, ...]

    def __len__(self) -> int:
        return int(self.times.shape[0])


class ShardPorts:
    """A shard's boundary endpoints: named receive channels + send().

    Handed to the shard builder inside :class:`ShardContext`.  ``open``
    may be called at build time (before the shard's simulator exists);
    registration is deferred until the runtime binds the simulator.
    """

    def __init__(self, shard_id: int, shard_count: int,
                 lookahead: float) -> None:
        self.shard_id = shard_id
        self.shard_count = shard_count
        self.lookahead = lookahead
        self.sent = 0
        self.received = 0
        self._sim: Optional[Simulator] = None
        self._pending_open: List[Tuple[str, Callable[[int, Any], None]]] = []
        self._rx: Dict[str, Any] = {}
        self._outbox: List[Tuple[int, str, float, Any]] = []

    # -- build-time API -------------------------------------------------
    def open(self, channel: str, fn: Callable[[int, Any], None]) -> None:
        """Receive boundary events on ``channel`` via ``fn(src, payload)``.

        ``fn`` runs as a batch-class callback at each event's effect
        time, with ``src`` the sending shard's id.
        """
        if not channel:
            raise ConfigurationError("boundary channel needs a name")
        if (channel in self._rx
                or any(c == channel for c, _ in self._pending_open)):
            raise ConfigurationError(
                f"boundary channel {channel!r} is already open")
        if self._sim is not None:
            self._register(channel, fn)
        else:
            self._pending_open.append((channel, fn))

    # -- runtime API (inside events) ------------------------------------
    def send(self, channel: str, dst: int, payload: Any = None,
             delay: Optional[float] = None) -> None:
        """Emit a boundary event to shard ``dst``, effective after ``delay``.

        ``delay`` defaults to the lookahead and must never be below it —
        that bound is exactly what lets every shard run its window
        without waiting on the others.
        """
        if self._sim is None:
            raise ScheduleError("ports are not bound to a simulator yet")
        delay = self.lookahead if delay is None else delay
        if delay < self.lookahead:
            raise ScheduleError(
                f"boundary delay {delay!r} is below the lookahead "
                f"{self.lookahead!r}; conservative sync would be unsound")
        if dst == self.shard_id or not 0 <= dst < self.shard_count:
            raise ConfigurationError(
                f"invalid destination shard {dst!r} "
                f"(this is shard {self.shard_id} of {self.shard_count})")
        self._outbox.append((dst, channel, self._sim._now + delay, payload))
        self.sent += 1

    # -- runtime plumbing ------------------------------------------------
    def _register(self, channel: str, fn: Callable[[int, Any], None]) -> None:
        self._rx[channel] = self._sim.batch_class(
            f"shard.rx.{channel}", fn, priority=Priority.PROTOCOL,
            cancellable=False)

    def _bind(self, sim: Simulator) -> None:
        self._sim = sim
        for channel, fn in self._pending_open:
            self._register(channel, fn)
        self._pending_open.clear()

    def channels(self) -> List[str]:
        return sorted(self._rx)

    def _inject(self, batches: Sequence[BoundaryBatch]) -> None:
        for batch in batches:
            queue = self._rx[batch.channel]
            n = len(batch)
            queue.schedule_many_at(
                batch.times, owners=np.full(n, batch.src, dtype=np.int64),
                payloads=batch.payloads)
            self.received += n

    def _drain(self) -> List[BoundaryBatch]:
        if not self._outbox:
            return []
        groups: Dict[Tuple[int, str], List[Tuple[float, Any]]] = {}
        for dst, channel, time, payload in self._outbox:
            groups.setdefault((dst, channel), []).append((time, payload))
        self._outbox.clear()
        return [BoundaryBatch(channel=channel, src=self.shard_id, dst=dst,
                              times=np.array([t for t, _ in entries],
                                             dtype=np.float64),
                              payloads=tuple(p for _, p in entries))
                for (dst, channel), entries in sorted(groups.items())]


@dataclass
class ShardContext:
    """What a shard builder receives: its identity and boundary ports."""

    shard_id: int
    shard_count: int
    ports: ShardPorts

    @property
    def lookahead(self) -> float:
        return self.ports.lookahead


@dataclass
class ShardProgram:
    """What a shard builder returns.

    ``finalize(sim)`` produces the shard's picklable result rows;
    ``summarize(sim)`` its telemetry summary (conventionally
    ``telemetry_summary(sim, stream=aggregator)``).  Both run in the
    worker at collect time, so only small reduced dicts cross the pipe.
    """

    sim: Simulator
    finalize: Optional[Callable[[Simulator], Any]] = None
    summarize: Optional[Callable[[Simulator], Dict[str, Any]]] = None


def _build_program(builder: Callable[[ShardContext], ShardProgram],
                   prerun: Sequence[Tuple[float, Callable, tuple, int]],
                   lookahead: float, shard_id: int,
                   shard_count: int) -> Tuple[ShardProgram, ShardPorts]:
    ports = ShardPorts(shard_id, shard_count, lookahead)
    program = builder(ShardContext(shard_id, shard_count, ports))
    if not isinstance(program, ShardProgram):
        raise ConfigurationError(
            f"shard builder {shard_id} returned {type(program).__name__}, "
            "expected a ShardProgram")
    ports._bind(program.sim)
    for delay, fn, args, priority in prerun:
        program.sim.schedule(delay, fn, *args, priority=priority)
    return program, ports


def _worker_main(builder, prerun, lookahead, shard_id, shard_count,
                 conn) -> None:
    """Forked worker loop: build, then serve grant/collect commands."""
    try:
        program, ports = _build_program(builder, prerun, lookahead,
                                        shard_id, shard_count)
        sim = program.sim
        conn.send(("ready", sim.peek(), ports.channels()))
        while True:
            msg = conn.recv()
            if msg[0] == "run":
                _, grant, batches = msg
                ports._inject(batches)
                sim.run(until=grant)
                conn.send(("done", sim.peek(), ports._drain()))
            elif msg[0] == "collect":
                conn.send(("result", {
                    "result": (program.finalize(sim)
                               if program.finalize is not None else None),
                    "telemetry": (program.summarize(sim)
                                  if program.summarize is not None else None),
                    "events": sim.events_executed,
                    "sent": ports.sent,
                    "received": ports.received,
                }))
                return
            else:  # pragma: no cover - defensive: unknown command
                raise ExperimentError(f"unknown shard command {msg[0]!r}")
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
    finally:
        conn.close()


class _PipePeer:
    """Coordinator-side handle for one forked shard worker."""

    def __init__(self, ctx, builder, prerun, lookahead, shard_id,
                 shard_count) -> None:
        self.shard_id = shard_id
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(builder, prerun, lookahead, shard_id, shard_count, child),
            daemon=True)
        self.proc.start()
        child.close()

    def _recv(self, expect: str):
        try:
            msg = self.conn.recv()
        except (EOFError, OSError):
            raise ExperimentError(
                f"shard {self.shard_id} worker died mid-run (pipe closed "
                "before it answered) — see the worker's stderr for the "
                "crash; the run cannot continue")
        if msg[0] == "error":
            raise ExperimentError(
                f"shard {self.shard_id} failed:\n{msg[1]}")
        if msg[0] != expect:  # pragma: no cover - protocol bug guard
            raise ExperimentError(
                f"shard {self.shard_id} answered {msg[0]!r}, "
                f"expected {expect!r}")
        return msg

    def ready(self):
        msg = self._recv("ready")
        return msg[1], msg[2]

    def post_grant(self, grant: float,
                   batches: Sequence[BoundaryBatch]) -> None:
        self.conn.send(("run", grant, list(batches)))

    def wait_done(self):
        msg = self._recv("done")
        return msg[1], msg[2]

    def collect(self) -> Dict[str, Any]:
        self.conn.send(("collect",))
        return self._recv("result")[1]

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5.0)


class _InlinePeer:
    """Same protocol, no processes: the sequential oracle / fallback."""

    def __init__(self, builder, prerun, lookahead, shard_id,
                 shard_count) -> None:
        self.shard_id = shard_id
        self.program, self.ports = _build_program(
            builder, prerun, lookahead, shard_id, shard_count)
        self._done: Optional[tuple] = None

    def ready(self):
        return self.program.sim.peek(), self.ports.channels()

    def post_grant(self, grant: float,
                   batches: Sequence[BoundaryBatch]) -> None:
        sim = self.program.sim
        self.ports._inject(batches)
        sim.run(until=grant)
        self._done = (sim.peek(), self.ports._drain())

    def wait_done(self):
        done, self._done = self._done, None
        return done

    def collect(self) -> Dict[str, Any]:
        program, sim = self.program, self.program.sim
        return {
            "result": (program.finalize(sim)
                       if program.finalize is not None else None),
            "telemetry": (program.summarize(sim)
                          if program.summarize is not None else None),
            "events": sim.events_executed,
            "sent": self.ports.sent,
            "received": self.ports.received,
        }

    def close(self) -> None:
        pass


class ShardedSimulator:
    """Run N shard simulators under one conservative coordinator.

    Keeps the :class:`Simulator` front-end shape: :meth:`run` drives the
    whole ensemble to ``until``; :meth:`schedule` queues pre-run events
    onto a chosen shard; ``now``/``events_executed`` report merged
    progress; :meth:`telemetry` returns the merged per-shard summaries.

    Args:
        builders: one callable per shard; each receives a
            :class:`ShardContext` and returns a :class:`ShardProgram`.
        lookahead: minimum boundary latency (propagation + MAC
            turnaround).  Must be strictly positive.
        processes: fork one worker per shard (default).  Falls back to
            the in-process path when ``fork`` is unavailable or there is
            only one shard; ``processes=False`` forces it — that path is
            the byte-identical oracle for the multi-process one.
    """

    def __init__(self, builders: Sequence[Callable[[ShardContext],
                                                   ShardProgram]],
                 *, lookahead: float, processes: bool = True) -> None:
        if not builders:
            raise ConfigurationError("ShardedSimulator needs >= 1 shard")
        if not (lookahead > 0.0):
            raise ConfigurationError(
                f"conservative synchronisation requires a strictly "
                f"positive lookahead, got {lookahead!r} — with zero "
                "lookahead every shard must wait for every other shard "
                "at every instant and parallelism is impossible")
        self._builders = list(builders)
        self.lookahead = float(lookahead)
        self.processes = bool(processes)
        self._prerun: List[List[Tuple[float, Callable, tuple, int]]] = [
            [] for _ in builders]
        self._ran = False
        self._now = 0.0
        self._events = 0
        self.results: Optional[List[Any]] = None
        self.summaries: Optional[List[Optional[Dict[str, Any]]]] = None
        self.stats: Dict[str, Any] = {}

    # -- Simulator-shaped surface ---------------------------------------
    @property
    def shard_count(self) -> int:
        return len(self._builders)

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 shard: int = 0,
                 priority: int = Priority.PROTOCOL) -> None:
        """Queue ``fn(*args)`` onto ``shard`` before the run starts.

        Pre-run only: once workers are forked there is no sound way to
        inject arbitrary callables into their event streams (that is
        what boundary channels are for).
        """
        if self._ran:
            raise SimulationFinished(
                "ShardedSimulator.schedule is pre-run only; use a "
                "boundary channel for runtime cross-shard events")
        if delay < 0:
            raise ScheduleError(f"negative delay {delay!r}")
        if not 0 <= shard < len(self._builders):
            raise ConfigurationError(f"no shard {shard!r}")
        self._prerun[shard].append((delay, fn, args, priority))

    def telemetry(self) -> Dict[str, Any]:
        """The merged per-shard telemetry summaries (after :meth:`run`)."""
        if self.summaries is None:
            raise SimulationFinished("run() has not completed yet")
        shipped = [s for s in self.summaries if s is not None]
        if not shipped:
            raise ConfigurationError(
                "no shard shipped a telemetry summary — give the shard "
                "programs a summarize callback")
        return merge_summaries(shipped)

    @property
    def metrics(self) -> Dict[str, Any]:
        """Merged metric counters across shards (after :meth:`run`)."""
        return dict(self.telemetry()["metrics"])

    # -- the conservative coordinator -----------------------------------
    def run(self, until: Optional[float] = None) -> int:
        """Drive every shard to ``until`` under conservative windows."""
        if self._ran:
            raise SimulationFinished("ShardedSimulator.run is one-shot")
        if until is None or not until > 0.0:
            raise ConfigurationError(
                f"a sharded run needs a positive horizon, got {until!r}")
        self._ran = True
        n = len(self._builders)
        use_processes = (
            self.processes and n > 1
            and "fork" in multiprocessing.get_all_start_methods())
        peers: List[Any] = []
        try:
            if use_processes:
                ctx = multiprocessing.get_context("fork")
                peers = [_PipePeer(ctx, self._builders[i], self._prerun[i],
                                   self.lookahead, i, n)
                         for i in range(n)]
            else:
                peers = [_InlinePeer(self._builders[i], self._prerun[i],
                                     self.lookahead, i, n)
                         for i in range(n)]
            self._coordinate(peers, float(until), use_processes)
        finally:
            for peer in peers:
                peer.close()
        return self._events

    def _coordinate(self, peers: List[Any], until: float,
                    use_processes: bool) -> None:
        n = len(peers)
        next_times: List[Optional[float]] = [None] * n
        channels: List[set] = [set()] * n
        for i, peer in enumerate(peers):
            next_times[i], opened = peer.ready()
            channels[i] = set(opened)
        inboxes: List[List[BoundaryBatch]] = [[] for _ in range(n)]
        rounds = 0
        batches_routed = 0
        events_routed = 0
        dropped = 0
        grant = 0.0
        lookahead = self.lookahead
        freerun = not any(channels)
        while True:
            pending = [t for t in next_times if t is not None]
            pending += [float(b.times.min())
                        for inbox in inboxes for b in inbox]
            global_min = min(pending) if pending else None
            if grant >= until and not any(inboxes):
                break
            if freerun or global_min is None or global_min > until:
                grant = until
            elif global_min > grant + lookahead:
                grant = min(until, global_min)
            else:
                grant = min(until, grant + lookahead)
            rounds += 1
            for i, peer in enumerate(peers):
                peer.post_grant(grant, inboxes[i])
                inboxes[i] = []
            for i, peer in enumerate(peers):
                next_times[i], outgoing = peer.wait_done()
                for batch in outgoing:
                    if batch.channel not in channels[batch.dst]:
                        raise ExperimentError(
                            f"shard {i} sent on channel "
                            f"{batch.channel!r} but shard {batch.dst} "
                            "never opened it")
                    keep = batch.times <= until
                    if not keep.all():
                        dropped += int((~keep).sum())
                        batch = BoundaryBatch(
                            channel=batch.channel, src=batch.src,
                            dst=batch.dst, times=batch.times[keep],
                            payloads=tuple(
                                p for p, k in zip(batch.payloads, keep)
                                if k))
                    if len(batch):
                        inboxes[batch.dst].append(batch)
                        batches_routed += 1
                        events_routed += len(batch)
        collected = [peer.collect() for peer in peers]
        self._now = until
        self._events = sum(c["events"] for c in collected)
        self.results = [c["result"] for c in collected]
        self.summaries = [c["telemetry"] for c in collected]
        self.stats = {
            "mode": "processes" if use_processes else "inline",
            "shards": n,
            "rounds": rounds,
            "lookahead": lookahead,
            "boundary_batches": batches_routed,
            "boundary_events": events_routed,
            "dropped_beyond_horizon": dropped,
            "sent": sum(c["sent"] for c in collected),
            "received": sum(c["received"] for c in collected),
        }


def merge_summaries(summaries: Sequence[Dict[str, Any]],
                    drop_counters: Tuple[str, ...] = HOW_NOT_WHAT_COUNTERS,
                    ) -> Dict[str, Any]:
    """Collapse per-shard telemetry summaries into one run-level dict.

    Shape-compatible with ``telemetry_summary``: totals sum across
    shards, ``sim_time`` is the common horizon (max), issue maps merge
    by key, and ``metrics`` keeps summed *counters* only (gauges,
    latencies and probes are per-engine shapes with no sound cross-shard
    sum).  Counters with a prefix in ``drop_counters`` are excluded —
    they describe engine mechanics, not outcomes, exactly like the
    kernel probe the batching oracle excludes.  Equivalence tests
    compare ``merge_summaries(shard_summaries)`` against
    ``merge_summaries([oracle_summary])`` so both sides pass through the
    same reduction.
    """
    if not summaries:
        raise ConfigurationError("nothing to merge")
    totals = {"events_executed": 0, "records": 0, "records_dropped": 0,
              "spans": 0, "spans_open": 0}
    issues_by_layer: Dict[str, int] = {}
    issues_by_column: Dict[str, int] = {}
    counters: Dict[str, float] = {}
    sim_time = 0.0
    for summary in summaries:
        sim_time = max(sim_time, summary.get("sim_time", 0.0))
        for name in totals:
            totals[name] += summary.get(name, 0)
        for target, key in ((issues_by_layer, "issues_by_layer"),
                            (issues_by_column, "issues_by_column")):
            for name, value in summary.get(key, {}).items():
                target[name] = target.get(name, 0) + value
        metrics = summary.get("metrics") or {}
        for name, value in metrics.get("counters", {}).items():
            if any(name.startswith(prefix) for prefix in drop_counters):
                continue
            counters[name] = counters.get(name, 0) + value
    out: Dict[str, Any] = {"sim_time": sim_time}
    out.update(totals)
    out["issues_by_layer"] = dict(sorted(issues_by_layer.items()))
    out["issues_by_column"] = dict(sorted(issues_by_column.items()))
    out["metrics"] = {"counters": dict(sorted(counters.items()))}
    return out
