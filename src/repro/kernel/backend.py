"""Optional compiled backend for the batch engine's hottest kernels.

The pure-Python/numpy implementations below are the *oracle*: they define
the semantics, every test runs against them, and they are always
available.  When ``REPRO_KERNEL_BACKEND=compiled`` is set (or a
``Simulator`` is constructed with ``backend="compiled"``), the kernel
tries two compilers in order and silently falls back to the oracle when
neither is present, recording *why* so benchmarks and tests can surface
an explicit skip marker rather than a silent pass:

1. **mypyc** — an ahead-of-time compiled ``repro.kernel._kernels_c``
   extension module exporting the same three functions (built out of
   band; never required).
2. **numba** — ``@njit`` JIT compilation of loop-form equivalents.

Three kernels are covered, chosen by profiling the batched engine:

``merge_order(time, seq)``
    The index permutation realising ``(time, seq)`` order.  Serves both
    ``BatchQueue._flush_pending`` (whose stable argsort by time equals
    the two-key sort because appends happen in sequence order) and the
    LSM carry-merge in ``BatchQueue._merged_run``.  Keys are globally
    unique, so any correct implementation yields the *identical*
    permutation — byte-identity is provable, not statistical.

``alive_mask(table, slot, gen)``
    Generation-table liveness for compaction/consolidation:
    ``table[slot[i]] == gen[i]`` per entry.

``head_scan(times, seqs)``
    Index of the lexicographic minimum ``(time, seq)`` head — the
    two-source merge peek across a class's sorted runs.  ``None`` on the
    pure backend: for the handful of runs a class holds, the builtin
    ``min`` beats building arrays, so the oracle keeps its scalar path
    and only a real compiled backend swaps the scan in.

Backends are resolved per :class:`~repro.kernel.scheduler.Simulator`
construction (cheap: the default short-circuits to the oracle without
probing any compiler), so two simulators with different backends coexist
in one process and the identity tests can compare them directly.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Any, Callable, Optional, Tuple

import numpy as np

__all__ = ["Kernels", "resolve", "compiled_info", "BACKEND_ENV"]

#: Environment variable consulted when ``Simulator(backend=None)``.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"


class Kernels:
    """One resolved backend: a name, a fallback reason, and the kernels.

    Attributes:
        name: ``"python"`` or ``"compiled"`` — what is actually active.
        requested: what the caller asked for (differs from ``name`` only
            when the compiled backend fell back).
        reason: why a requested compiled backend is not active, or ""
            when ``name == requested``.
        merge_order / alive_mask: always-callable kernels.
        head_scan: compiled head peek, or ``None`` for the scalar oracle.
    """

    __slots__ = ("name", "requested", "reason", "merge_order",
                 "alive_mask", "head_scan")

    def __init__(self, name: str, requested: str, reason: str,
                 merge_order: Callable[..., np.ndarray],
                 alive_mask: Callable[..., np.ndarray],
                 head_scan: Optional[Callable[..., int]]) -> None:
        self.name = name
        self.requested = requested
        self.reason = reason
        self.merge_order = merge_order
        self.alive_mask = alive_mask
        self.head_scan = head_scan


# ---------------------------------------------------------------------------
# Pure-Python/numpy oracle kernels
# ---------------------------------------------------------------------------

def _merge_order_py(time: np.ndarray, seq: np.ndarray) -> np.ndarray:
    """Permutation realising ``(time, seq)`` order (keys are unique)."""
    return np.lexsort((seq, time))


def _alive_mask_py(table: np.ndarray, slot: np.ndarray,
                   gen: np.ndarray) -> np.ndarray:
    """Per-entry liveness against the generation table."""
    return table[slot] == gen


_PYTHON = Kernels("python", "python", "",
                  _merge_order_py, _alive_mask_py, None)


# ---------------------------------------------------------------------------
# Compiled candidates
# ---------------------------------------------------------------------------

def _merge_order_loop(time, seq):  # pragma: no cover - compiled only
    """Loop-form stable merge by ``(time, seq)`` for njit compilation.

    Bottom-up mergesort over an index array: deterministic, and — keys
    being unique — provably the same permutation as ``np.lexsort``.
    """
    n = time.shape[0]
    idx = np.arange(n).astype(np.int64)
    tmp = np.empty(n, np.int64)
    width = 1
    while width < n:
        lo = 0
        while lo < n:
            mid = lo + width
            if mid > n:
                mid = n
            hi = lo + 2 * width
            if hi > n:
                hi = n
            i = lo
            j = mid
            k = lo
            while i < mid and j < hi:
                a = idx[i]
                b = idx[j]
                if time[a] < time[b] or (time[a] == time[b]
                                         and seq[a] <= seq[b]):
                    tmp[k] = a
                    i += 1
                else:
                    tmp[k] = b
                    j += 1
                k += 1
            while i < mid:
                tmp[k] = idx[i]
                i += 1
                k += 1
            while j < hi:
                tmp[k] = idx[j]
                j += 1
                k += 1
            lo = hi
        idx[0:n] = tmp[0:n]
        width *= 2
    return idx


def _alive_mask_loop(table, slot, gen):  # pragma: no cover - compiled only
    n = slot.shape[0]
    out = np.empty(n, np.bool_)
    for i in range(n):
        out[i] = table[slot[i]] == gen[i]
    return out


def _head_scan_loop(times, seqs):  # pragma: no cover - compiled only
    best = 0
    bt = times[0]
    bs = seqs[0]
    for i in range(1, times.shape[0]):
        t = times[i]
        if t < bt or (t == bt and seqs[i] < bs):
            bt = t
            bs = seqs[i]
            best = i
    return best


@lru_cache(maxsize=1)
def _compiled() -> Tuple[Optional[Any], str]:
    """``(Kernels, "")`` when a compiler is present, else ``(None, why)``.

    Probed lazily (only when a compiled backend is actually requested)
    and cached for the life of the process: compiler availability cannot
    change mid-run, and re-probing would re-pay the import cost per
    ``Simulator``.
    """
    # 1. Ahead-of-time: a mypyc-built extension module, if someone ran
    #    the out-of-band build.  Same signatures as the oracle.
    try:
        from . import _kernels_c  # type: ignore[attr-defined]
    except ImportError:
        aot_reason = "no mypyc-built repro.kernel._kernels_c module"
    else:  # pragma: no cover - requires an out-of-band build
        return (Kernels("compiled", "compiled", "",
                        _kernels_c.merge_order, _kernels_c.alive_mask,
                        _kernels_c.head_scan), "")
    # 2. JIT: numba, when installed.
    try:
        from numba import njit  # type: ignore[import-not-found]
    except ImportError:
        return (None, f"{aot_reason}; numba not installed")
    else:  # pragma: no cover - requires numba in the environment
        return (Kernels("compiled", "compiled", "",
                        njit(cache=True)(_merge_order_loop),
                        njit(cache=True)(_alive_mask_loop),
                        njit(cache=True)(_head_scan_loop)), "")


def compiled_info() -> Tuple[bool, str]:
    """``(available, reason_if_not)`` for benchmarks and skip markers."""
    kernels, reason = _compiled()
    return (kernels is not None, reason)


def resolve(requested: Optional[str] = None) -> Kernels:
    """The :class:`Kernels` for ``requested`` (or ``$REPRO_KERNEL_BACKEND``).

    ``"python"``/unset selects the oracle without probing any compiler.
    ``"compiled"`` probes mypyc then numba and *silently* falls back to
    the oracle when neither is present — the fallback is recorded in
    ``Kernels.reason`` so callers that must not skip silently (the
    benchmark gate, the dispatch-matrix test) can surface it.
    """
    name = requested if requested is not None else os.environ.get(
        BACKEND_ENV, "python")
    if name in ("", "python"):
        return _PYTHON
    if name != "compiled":
        return Kernels("python", name,
                       f"unknown backend {name!r}; valid: python, compiled",
                       _merge_order_py, _alive_mask_py, None)
    kernels, reason = _compiled()
    if kernels is not None:  # pragma: no cover - requires a compiler
        return kernels
    return Kernels("python", "compiled", reason,
                   _merge_order_py, _alive_mask_py, None)
