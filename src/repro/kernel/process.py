"""Generator-based simulation processes.

Some behaviours (user task scripts, lease renewal loops, discovery clients)
read much better as sequential code than as callback chains.  A *process*
is a generator driven by the simulator; it can::

    yield 2.5          # sleep 2.5 simulated seconds
    yield some_signal  # wait until the Signal fires, receiving its value
    result = yield other_process  # wait for a child process to finish

Processes are a thin layer over :class:`repro.kernel.scheduler.Simulator`;
they add no new event semantics, just sequencing sugar.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from .errors import ProcessError
from .events import Priority
from .scheduler import Simulator


class Signal:
    """A one-shot or repeating wakeup channel for processes and callbacks.

    ``fire(value)`` wakes every current waiter exactly once.  Waiters added
    after a fire wait for the *next* fire (edge-triggered semantics, like a
    condition variable rather than a future).
    """

    def __init__(self, sim: Simulator, name: str = "signal") -> None:
        self.sim = sim
        self.name = name
        self._call_soon = sim.call_soon
        self._waiters: List[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register ``callback(value)`` for the next fire."""
        self._waiters.append(callback)

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters with ``value``; returns how many woke."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            # Deliver asynchronously so firing inside a handler cannot
            # reentrantly grow the stack or reorder same-time events.
            self._call_soon(callback, value, priority=Priority.APP)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name} fires={self.fire_count}>"


class Process:
    """A running generator process.  Create via :func:`spawn`."""

    def __init__(self, sim: Simulator, gen: Generator, name: str = "process") -> None:
        self.sim = sim
        self.gen = gen
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finished = Signal(sim, f"{name}.finished")
        # Pre-bound handler table: sleep re-arms are the hot path of a
        # looping process, so resolve the scheduler entry points once.
        self._schedule = sim.schedule
        self._call_soon = sim.call_soon
        # The process's causal span: parented under whatever was ambient at
        # spawn time, spanning spawn to finish.  Not activated here — the
        # spawner's own context must survive the spawn call — _advance
        # re-establishes it every time the generator resumes.
        self.span = sim.span_begin("process", name, activate=False)

    def _start(self) -> None:
        self._advance(None)

    def _advance(self, value: Any) -> None:
        if self.done:
            return
        if self.span.span_id is not None:
            # Resume under the process span so everything the generator
            # schedules (sleeps, sends, child spawns) nests beneath it,
            # regardless of whose context delivered this wakeup.
            self.sim._span_ctx = self.span.span_id
        try:
            yielded = self.gen.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except Exception as exc:  # noqa: BLE001 - intentional process capture
            self._finish(error=exc)
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._finish(error=ProcessError(
                    f"process {self.name!r} yielded negative delay {yielded!r}"))
                return
            self._schedule(float(yielded), self._advance, None,
                           priority=Priority.APP)
        elif isinstance(yielded, Signal):
            yielded.wait(self._advance)
        elif isinstance(yielded, Process):
            if yielded.done:
                self._call_soon(self._advance, yielded.result,
                                priority=Priority.APP)
            else:
                yielded.finished.wait(lambda _v, p=yielded: self._advance(p.result))
        else:
            self._finish(error=ProcessError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"))

    def _finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.done = True
        self.result = result
        self.error = error
        if error is not None:
            self.sim.trace("process.error", self.name,
                           f"process failed: {error!r}")
        self.sim.span_end(self.span, "error" if error is not None else "ok")
        self.finished.fire(result)

    def interrupt(self) -> None:
        """Throw :class:`ProcessError` into the generator, ending it."""
        if self.done:
            return
        try:
            self.gen.throw(ProcessError(f"process {self.name!r} interrupted"))
        except StopIteration as stop:
            self._finish(result=stop.value)
        except ProcessError as exc:
            self._finish(error=exc)
        except Exception as exc:  # noqa: BLE001
            self._finish(error=exc)
        else:
            # Generator swallowed the interrupt and yielded again; treat
            # that as a protocol violation to keep semantics simple.
            self._finish(error=ProcessError(
                f"process {self.name!r} ignored interrupt"))


def spawn(sim: Simulator, gen: Generator, name: str = "process",
          delay: float = 0.0) -> Process:
    """Start ``gen`` as a simulation process after ``delay`` seconds."""
    if not hasattr(gen, "send"):
        raise ProcessError(f"spawn() needs a generator, got {gen!r}")
    proc = Process(sim, gen, name)
    sim.schedule(delay, proc._start, priority=Priority.APP)
    return proc
