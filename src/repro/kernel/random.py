"""Named, reproducible random-number streams.

Every stochastic component (radio shadowing, MAC backoff, user behaviour,
workload generation...) draws from its *own* named stream derived from the
simulation's root seed via :class:`numpy.random.SeedSequence` spawning.
This gives two properties the experiments rely on:

* **Reproducibility** — the same root seed always produces the same run.
* **Variance isolation** — changing how many numbers one component draws
  does not perturb any other component's stream, so parameter sweeps only
  vary what they mean to vary (a standard common-random-numbers technique
  for comparing simulated systems).
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream for a given ``(seed, name)`` pair is always identical
        regardless of creation order, because each stream is derived by
        hashing the name into the root seed sequence rather than by
        sequential spawning.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Derive a child seed from the root entropy plus a stable hash
            # of the name.  Avoid Python's randomised str hash.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            key = int(digest.astype(np.uint64).sum() * 1000003 + len(name)) & 0xFFFFFFFF
            child = np.random.SeedSequence(
                entropy=self._root.entropy, spawn_key=(key,)
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list:
        """Names of the streams created so far (sorted, for reporting)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self._seed} n={len(self._streams)}>"
