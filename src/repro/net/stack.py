"""Per-node network stack: port demultiplexing over any interface.

A :class:`NetworkStack` sits on one interface (wireless NIC or wired port —
anything with ``address``, ``send_frame`` and an ``on_receive`` slot) and
demultiplexes inbound frames to bound ports.  It is the resource-layer
"Net" box of the paper's Figure 3: the networking capability applications
can count on being available.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Protocol

from ..kernel.errors import ConfigurationError, NetworkError
from ..kernel.scheduler import Simulator
from .addresses import BROADCAST
from .frames import Frame


class Interface(Protocol):
    """Anything a stack can sit on."""

    address: str
    on_receive: Optional[Callable[[Frame], None]]

    def send_frame(self, frame: Frame) -> bool: ...


class NetworkStack:
    """Port-based demultiplexing on one interface."""

    def __init__(self, sim: Simulator, interface: Interface) -> None:
        self.sim = sim
        self.interface = interface
        self.address = interface.address
        self._ports: Dict[int, Callable[[Frame], None]] = {}
        interface.on_receive = self._receive
        self.rx_frames = 0
        self.rx_unbound = 0
        self.tx_frames = 0
        # Registry wiring: one aggregate counter for frames nobody was
        # listening for (a misconfiguration smell) plus a per-node probe.
        metrics = sim.metrics
        self._m_rx_unbound = metrics.counter("net.rx_unbound")
        metrics.register_probe(f"net.{self.address}", lambda: {
            "rx_frames": self.rx_frames,
            "rx_unbound": self.rx_unbound,
            "tx_frames": self.tx_frames,
            "ports": len(self._ports),
        })

    # ------------------------------------------------------------------
    def bind(self, port: int, handler: Callable[[Frame], None]) -> Callable[[], None]:
        """Bind ``handler`` to ``port``; returns an unbind function."""
        if port < 0:
            raise ConfigurationError(f"negative port {port}")
        if port in self._ports:
            raise NetworkError(f"port {port} already bound on {self.address}")
        self._ports[port] = handler

        def unbind() -> None:
            if self._ports.get(port) is handler:
                del self._ports[port]

        return unbind

    def is_bound(self, port: int) -> bool:
        return port in self._ports

    # ------------------------------------------------------------------
    def send(self, dst: str, payload: Any = None, payload_bytes: int = 0,
             port: int = 0, kind: str = "data") -> bool:
        """Send one frame out the interface; False when the NIC refuses it."""
        frame = Frame(self.address, dst, payload, payload_bytes, kind, port)
        ok = self.interface.send_frame(frame)
        if ok:
            self.tx_frames += 1
        return ok

    def broadcast(self, payload: Any = None, payload_bytes: int = 0,
                  port: int = 0, kind: str = "mgmt") -> bool:
        return self.send(BROADCAST, payload, payload_bytes, port, kind)

    # ------------------------------------------------------------------
    def _receive(self, frame: Frame) -> None:
        if frame.dst != self.address and frame.dst != BROADCAST:
            return  # not for us (promiscuous delivery from a bridge)
        if frame.src == self.address:
            return  # our own broadcast echoed back
        self.rx_frames += 1
        handler = self._ports.get(frame.port)
        if handler is None:
            self.rx_unbound += 1
            self._m_rx_unbound.add()
            self.sim.trace("stack.unbound", self.address,
                           f"no listener on port {frame.port}")
            return
        handler(frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NetworkStack {self.address} ports={sorted(self._ports)}>"
