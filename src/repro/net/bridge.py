"""A learning bridge joining wired and wireless segments.

The Aroma scenario spans both worlds: the Jini lookup service may live on
the laboratory's wired LAN while the adapter and laptop are wireless.  A
:class:`Bridge` owns several interfaces (wireless NICs, wired ports),
learns source addresses per interface, and forwards frames — flooding
unknown destinations and broadcasts to every other interface.
"""

from __future__ import annotations

from typing import Dict, List

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator
from .addresses import BROADCAST
from .frames import Frame


class Bridge:
    """A transparent learning bridge.

    Interfaces must expose ``address``, ``send_frame`` and an
    ``on_receive`` slot (both :class:`repro.phys.nic.WirelessNIC` and
    :class:`repro.net.link.WiredPort` qualify).
    """

    def __init__(self, sim: Simulator, name: str = "bridge") -> None:
        self.sim = sim
        self.name = name
        self._interfaces: List = []
        self._table: Dict[str, int] = {}  # learned address -> interface idx
        self.forwarded = 0
        self.flooded = 0
        self.filtered = 0

    def attach(self, interface) -> None:
        """Add an interface; the bridge takes over its receive slot."""
        for existing in self._interfaces:
            if existing.address == interface.address:
                raise ConfigurationError(
                    f"interface {interface.address!r} already attached")
        index = len(self._interfaces)
        self._interfaces.append(interface)
        interface.on_receive = lambda frame, i=index: self._ingress(i, frame)

    def interfaces(self) -> List:
        return list(self._interfaces)

    def _ingress(self, index: int, frame: Frame) -> None:
        # Learn the sender's location.
        self._table[frame.src] = index
        dst = frame.dst
        if dst == BROADCAST:
            self._flood(index, frame)
            return
        known = self._table.get(dst)
        if known is None:
            self._flood(index, frame)
        elif known == index:
            self.filtered += 1  # destination is back where it came from
        else:
            self.forwarded += 1
            self._interfaces[known].send_frame(frame)

    def _flood(self, ingress_index: int, frame: Frame) -> None:
        self.flooded += 1
        for i, interface in enumerate(self._interfaces):
            if i != ingress_index:
                interface.send_frame(frame)

    def learned(self) -> Dict[str, str]:
        """Learned address table: address -> interface address."""
        return {addr: self._interfaces[i].address
                for addr, i in self._table.items()}
