"""Networking substrate: frames, links, transport, multicast, bridging.

Everything here is the "Net" box of the paper's resource layer — the
networking capability applications count on — built on the wireless
physical layer (:mod:`repro.phys`) and the wired links of the traditional
network the Aroma project connects to.
"""

from .addresses import BROADCAST, AddressAllocator, is_broadcast, validate_address
from .bridge import Bridge
from .frames import HEADER_BYTES, MTU_BYTES, Frame
from .link import WiredLink, WiredPort
from .multicast import MULTICAST_PORT, GroupDatagram, MulticastService
from .queueing import DropTailQueue, TokenBucket
from .stack import NetworkStack
from .transport import Ack, ReliableEndpoint, Segment

__all__ = [
    "Ack",
    "AddressAllocator",
    "BROADCAST",
    "Bridge",
    "DropTailQueue",
    "Frame",
    "GroupDatagram",
    "HEADER_BYTES",
    "MTU_BYTES",
    "MULTICAST_PORT",
    "MulticastService",
    "NetworkStack",
    "ReliableEndpoint",
    "Segment",
    "TokenBucket",
    "WiredLink",
    "WiredPort",
    "is_broadcast",
    "validate_address",
]
