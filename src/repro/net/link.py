"""Wired point-to-point links.

"Connecting portable wireless devices to traditional networks" is one of
the Aroma project's four research areas — the wired side is the
traditional network.  A :class:`WiredLink` joins two :class:`WiredPort`
endpoints with serialisation delay, propagation delay, an optional random
loss rate, and a drop-tail queue per direction.  Ports expose the same
interface as a wireless NIC (``address``, ``send_frame``, ``on_receive``)
so stacks and bridges are transport-agnostic.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..kernel.errors import ConfigurationError
from ..kernel.events import Priority
from ..kernel.scheduler import Simulator
from .addresses import validate_address
from .frames import Frame
from .queueing import DropTailQueue, Pacer

_MEDIUM_PRI = int(Priority.MEDIUM)


def _fire_sent(_owner: int, pack: tuple) -> None:
    port, frame = pack
    port._sent(frame)


def _fire_deliver(_owner: int, pack: tuple) -> None:
    port, frame = pack
    port._deliver(frame)


class WiredPort:
    """One endpoint of a wired link."""

    def __init__(self, link: "WiredLink", address: str) -> None:
        self.link = link
        self.address = validate_address(address)
        self.on_receive: Optional[Callable[[Frame], None]] = None
        self.queue = DropTailQueue(link.queue_frames, link.sim,
                                   f"wired.{self.address}")
        self._busy = False
        self.tx_frames = 0
        self.rx_frames = 0

    def send_frame(self, frame: Frame) -> bool:
        """Queue a frame for the far end; False on queue overflow."""
        if not self.queue.push(frame):
            self.link.sim.trace("link.qdrop", self.address,
                                f"queue full, dropping #{frame.frame_id}")
            return False
        self._pump()
        return True

    def send(self, dst: str, payload=None, payload_bytes: int = 0,
             kind: str = "data", port: int = 0) -> bool:
        return self.send_frame(Frame(self.address, dst, payload,
                                     payload_bytes, kind, port))

    def _pump(self) -> None:
        if self._busy or not self.queue:
            return
        frame = self.queue.pop()
        self._busy = True
        tx_time = 8.0 * frame.wire_bytes / self.link.rate_bps
        self.link._schedule_sent(tx_time, payload=(self, frame))

    def _sent(self, frame: Frame) -> None:
        self._busy = False
        self.tx_frames += 1
        self.link._propagate(self, frame)
        self._pump()

    def _deliver(self, frame: Frame) -> None:
        self.rx_frames += 1
        if self.on_receive is not None:
            self.on_receive(frame)


class WiredLink:
    """A full-duplex point-to-point wire between two named endpoints.

    Args:
        sim: the simulator.
        a, b: endpoint addresses.
        rate_bps: serialisation rate (10 Mb/s Ethernet by default).
        delay_s: one-way propagation delay.
        loss: independent per-frame loss probability (cable faults; 0.0
            for a healthy wire).
        queue_frames: per-direction interface queue capacity.
    """

    def __init__(self, sim: Simulator, a: str, b: str,
                 rate_bps: float = 10e6, delay_s: float = 1e-4,
                 loss: float = 0.0, queue_frames: int = 128) -> None:
        if rate_bps <= 0 or delay_s < 0:
            raise ConfigurationError("bad link rate/delay")
        if not (0.0 <= loss < 1.0):
            raise ConfigurationError("loss must be in [0, 1)")
        if a == b:
            raise ConfigurationError("link endpoints must differ")
        self.sim = sim
        self.rate_bps = float(rate_bps)
        self.delay_s = float(delay_s)
        self.loss = float(loss)
        self.queue_frames = queue_frames
        self._rng = sim.rng(f"link.{a}--{b}")
        # Serialisation-end and propagation timers ride the batched path;
        # shared by name, so every wired link drains from the same queues.
        self._sent_pacer = Pacer(sim, "link.sent", _fire_sent,
                                 priority=_MEDIUM_PRI)
        self._deliver_pacer = Pacer(sim, "link.deliver", _fire_deliver,
                                    priority=_MEDIUM_PRI)
        # Pre-bound handler table: each frame event is scheduled through a
        # direct method reference instead of two attribute walks per frame.
        self._schedule_sent = self._sent_pacer.after
        self._schedule_deliver = self._deliver_pacer.after
        self.port_a = WiredPort(self, a)
        self.port_b = WiredPort(self, b)
        self.frames_lost = 0

    def _propagate(self, from_port: WiredPort, frame: Frame) -> None:
        if self.loss > 0.0 and self._rng.random() < self.loss:
            self.frames_lost += 1
            self.sim.trace("link.loss", from_port.address,
                           f"frame #{frame.frame_id} lost on the wire")
            return
        to_port = self.port_b if from_port is self.port_a else self.port_a
        # Point-to-point: deliver unicast-for-us and broadcast frames; a
        # frame addressed elsewhere still arrives (the far end may be a
        # bridge that forwards it).
        self._schedule_deliver(self.delay_s, payload=(to_port, frame))

    def other_end(self, address: str) -> WiredPort:
        """The port opposite the one named ``address``."""
        if address == self.port_a.address:
            return self.port_b
        if address == self.port_b.address:
            return self.port_a
        raise ConfigurationError(f"{address!r} is not an endpoint of this link")
