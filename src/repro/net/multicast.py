"""Group (multicast) communication over broadcast-capable interfaces.

Jini discovery begins with multicast request/announcement; this module
provides the group abstraction those protocol steps ride on.  Groups are
named; datagrams are carried in broadcast frames on a well-known port and
filtered by membership at the receiver — exactly how IP multicast degrades
on a single 802.11 segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator
from .stack import NetworkStack

#: Well-known stack port carrying all multicast datagrams.
MULTICAST_PORT: int = 7


@dataclass(frozen=True)
class GroupDatagram:
    """Envelope for a multicast payload."""

    group: str
    data: Any


class MulticastService:
    """Per-node multicast membership and delivery.

    One instance binds :data:`MULTICAST_PORT` on the node's stack; joins
    register handlers per group name.
    """

    def __init__(self, sim: Simulator, stack: NetworkStack) -> None:
        self.sim = sim
        self.stack = stack
        self._groups: Dict[str, List[Callable[[str, Any], None]]] = {}
        stack.bind(MULTICAST_PORT, self._receive)
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.datagrams_filtered = 0

    def join(self, group: str, handler: Callable[[str, Any], None]) -> Callable[[], None]:
        """Join ``group``; ``handler(src, data)`` is called per datagram.

        Returns a leave function.
        """
        if not group:
            raise ConfigurationError("group name must be non-empty")
        handlers = self._groups.setdefault(group, [])
        handlers.append(handler)

        def leave() -> None:
            try:
                handlers.remove(handler)
            except ValueError:
                pass
            if not handlers and self._groups.get(group) is handlers:
                del self._groups[group]

        return leave

    def member_of(self, group: str) -> bool:
        return group in self._groups

    def send(self, group: str, data: Any, size_bytes: int = 64) -> bool:
        """Multicast ``data`` to ``group`` (one broadcast frame)."""
        if not group:
            raise ConfigurationError("group name must be non-empty")
        self.datagrams_sent += 1
        return self.stack.broadcast(GroupDatagram(group, data), size_bytes,
                                    MULTICAST_PORT)

    def _receive(self, frame) -> None:
        payload = frame.payload
        if not isinstance(payload, GroupDatagram):
            return
        handlers = self._groups.get(payload.group)
        if not handlers:
            self.datagrams_filtered += 1
            return
        self.datagrams_delivered += 1
        for handler in list(handlers):
            handler(frame.src, payload.data)
