"""Queueing primitives shared by links and services.

Two small pieces: a drop-tail FIFO with occupancy statistics (what every
1999 interface actually ran) and a token bucket used for pacing the VNC
sender so experiment E1 can shape offered load independently of the radio.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from ..kernel.errors import ConfigurationError
from ..kernel.events import Priority
from ..kernel.scheduler import Simulator


class DropTailQueue:
    """Bounded FIFO that drops arrivals when full.

    Passing ``sim`` and ``name`` opts the queue into the simulator's
    metrics registry: drops feed the aggregate ``queue.drops`` counter and
    a ``queue.<name>`` probe exposes live occupancy at snapshot time.
    """

    def __init__(self, capacity: int, sim: Optional[Simulator] = None,
                 name: Optional[str] = None) -> None:
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self.enqueued = 0
        self.dropped = 0
        self.dequeued = 0
        self.peak_depth = 0
        self._m_drops = None
        if sim is not None and name is not None:
            metrics = sim.metrics
            self._m_drops = metrics.counter("queue.drops")
            metrics.register_probe(f"queue.{name}", lambda: {
                "depth": len(self._items),
                "peak_depth": self.peak_depth,
                "enqueued": self.enqueued,
                "dropped": self.dropped,
                "drop_rate": self.drop_rate,
            })

    def push(self, item: Any) -> bool:
        """Append ``item``; False (and a drop count) when the queue is full."""
        if len(self._items) >= self.capacity:
            self.dropped += 1
            if self._m_drops is not None:
                self._m_drops.add()
            return False
        self._items.append(item)
        self.enqueued += 1
        self.peak_depth = max(self.peak_depth, len(self._items))
        return True

    def pop(self) -> Any:
        """Remove and return the head; raises IndexError when empty."""
        item = self._items.popleft()
        self.dequeued += 1
        return item

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def drop_rate(self) -> float:
        total = self.enqueued + self.dropped
        return self.dropped / total if total else 0.0


class Pacer:
    """A named batched timer class for frame pacing and queue draining.

    Thin veneer over :meth:`Simulator.batch_class`: a layer that paces
    homogeneous work — wired serialisation/propagation, framebuffer
    frame-rate pacing, drain timers — registers one callback here and
    schedules entries through :meth:`after`/:meth:`at`, which puts the
    timers on the kernel's struct-of-arrays batch path instead of the
    per-event heap.  ``shared=True`` (the default) means every pacer of
    the same name on one simulator drains from the same queue, so the
    callback must be a module-level function, not a bound method.
    """

    def __init__(self, sim: Simulator, name: str,
                 fn: Callable[[int, Any], None], *,
                 priority: int = int(Priority.PROTOCOL),
                 cancellable: bool = False, shared: bool = True) -> None:
        self.sim = sim
        self.name = name
        self._q = sim.batch_class(name, fn, priority=priority,
                                  cancellable=cancellable, shared=shared)

    def after(self, delay: float, owner: int = 0, payload: Any = None):
        """Fire ``delay`` seconds from now; returns a cancellation handle
        for cancellable pacers, None otherwise."""
        return self._q.schedule(delay, owner, payload)

    def at(self, time: float, owner: int = 0, payload: Any = None):
        """Fire at absolute simulation time ``time``."""
        return self._q.schedule_at(time, owner, payload)

    def __len__(self) -> int:
        return len(self._q)


class TokenBucket:
    """A token-bucket rate limiter over simulated time.

    Args:
        sim: simulator providing the clock.
        rate: token refill rate per second (e.g. bytes/s).
        burst: bucket depth (maximum instantaneous burst).
    """

    def __init__(self, sim: Simulator, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ConfigurationError("rate and burst must be positive")
        self.sim = sim
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = sim.now

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
        self._last = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_consume(self, amount: float) -> bool:
        """Take ``amount`` tokens if available; False otherwise."""
        if amount < 0:
            raise ConfigurationError("amount must be non-negative")
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def time_until(self, amount: float) -> float:
        """Seconds until ``amount`` tokens will be available (0 if now)."""
        self._refill()
        deficit = amount - self._tokens
        return max(0.0, deficit / self.rate)
