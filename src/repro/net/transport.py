"""Reliable message transport over the lossy substrate.

The Smart Projector's services (VNC-like projection, control RPCs, lookup
registration) need messages larger than one frame delivered reliably over
a radio that loses frames.  :class:`ReliableEndpoint` provides that:

* messages are segmented to the MTU;
* a per-destination sliding window limits in-flight segments (so one bulk
  sender cannot flood the MAC queue);
* receivers acknowledge segments selectively; senders retransmit on
  timeout with exponential backoff up to a retry budget;
* receivers deduplicate, reassemble, and deliver exactly once per message.

The MAC below already retries individual frames; transport-level recovery
covers what the MAC gives up on (retry exhaustion, queue drops, lost
genie-ACK duplicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Set, Tuple

from ..kernel.errors import ConfigurationError, TransportError
from ..kernel.events import Priority
from ..kernel.scheduler import Simulator
from .frames import MTU_BYTES, Frame
from .stack import NetworkStack



@dataclass(frozen=True)
class Segment:
    """Transport header riding in a frame payload."""

    message_id: int
    index: int
    count: int
    data: Any  #: the message object, carried on the final segment only
    total_bytes: int = 0  #: declared size of the whole message


@dataclass(frozen=True)
class Ack:
    message_id: int
    index: int


class _TxMessage:
    """Sender-side state for one in-flight message."""

    __slots__ = ("message_id", "dst", "obj", "size_bytes", "segments",
                 "unacked", "inflight", "on_delivered", "on_failed",
                 "retries", "timer", "timeout", "started", "span")

    def __init__(self, message_id: int, dst: str, obj: Any, size_bytes: int,
                 count: int, on_delivered, on_failed, timeout: float,
                 started: float) -> None:
        self.span = None  #: causal span from send() to final ack/failure
        self.message_id = message_id
        self.dst = dst
        self.obj = obj
        self.size_bytes = size_bytes
        self.segments = count
        self.unacked: Set[int] = set(range(count))
        self.inflight: Set[int] = set()
        self.on_delivered = on_delivered
        self.on_failed = on_failed
        self.retries = 0
        self.timer = None
        self.timeout = timeout
        self.started = started


class _RxMessage:
    """Receiver-side reassembly state."""

    __slots__ = ("received", "count", "data")

    def __init__(self, count: int) -> None:
        self.received: Set[int] = set()
        self.count = count
        self.data: Any = None


class ReliableEndpoint:
    """Reliable, message-oriented endpoint bound to one stack port.

    Args:
        sim: simulator.
        stack: the node's network stack.
        port: port to bind (data and acks share it).
        on_message: ``callback(src_address, obj, size_bytes)`` for inbound
            messages.
        window: max unacked segments per destination.
        timeout: initial retransmission timeout (doubles per retry).
        max_retries: per-message retransmission rounds before failure.
    """

    ACK_BYTES = 8

    def __init__(self, sim: Simulator, stack: NetworkStack, port: int,
                 on_message: Optional[Callable[[str, Any, int], None]] = None,
                 window: int = 8, timeout: float = 0.08,
                 max_retries: int = 10) -> None:
        if window < 1 or timeout <= 0 or max_retries < 0:
            raise ConfigurationError("bad window/timeout/max_retries")
        self.sim = sim
        self.stack = stack
        self.port = port
        self.on_message = on_message
        self.window = window
        self.timeout = timeout
        self.max_retries = max_retries
        self._unbind = stack.bind(port, self._receive)
        self._tx: Dict[int, _TxMessage] = {}
        #: per-destination FIFO of message ids; only the head is in flight,
        #: so two large messages to one peer cannot interleave and thrash
        #: the shared radio (TCP-like serialisation per flow).
        self._tx_queues: Dict[str, list] = {}
        self._rx: Dict[Tuple[str, int], _RxMessage] = {}
        self._delivered: Set[Tuple[str, int]] = set()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_failed = 0
        self.messages_received = 0
        self.bytes_received = 0
        self.closed = False

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, dst: str, obj: Any = None, size_bytes: int = 0,
             on_delivered: Optional[Callable[[], None]] = None,
             on_failed: Optional[Callable[[], None]] = None) -> int:
        """Send ``obj`` (declared ``size_bytes`` on the wire) reliably.

        Returns the message id.  Completion is signalled through the
        optional callbacks.
        """
        if self.closed:
            raise TransportError("endpoint is closed")
        if size_bytes < 0:
            raise ConfigurationError("size_bytes must be non-negative")
        count = max(1, -(-size_bytes // MTU_BYTES))  # ceil division
        message_id = self.sim.next_seq("net.message_seq")
        tx = _TxMessage(message_id, dst, obj, size_bytes, count,
                        on_delivered, on_failed, self.timeout, self.sim.now)
        if self.sim.tracer.enabled:
            # Not activated here: the caller's context must survive the
            # send() call.  _push() makes it ambient while frames and the
            # retransmission timer are scheduled, so they nest beneath it.
            tx.span = self.sim.span_begin(
                "transport.send", self.stack.address, activate=False,
                msg=message_id, dst=dst, bytes=size_bytes, segments=count)
        self._tx[message_id] = tx
        queue = self._tx_queues.setdefault(dst, [])
        queue.append(message_id)
        self.messages_sent += 1
        if queue[0] == message_id:
            self._push(tx)
        return message_id

    def cancel_pending(self, dst: str) -> int:
        """Abandon queued (not-yet-started) messages to ``dst``.

        Used by senders whose payloads go stale — e.g. a framebuffer
        server that is about to send a fresher update.  The in-flight head
        message is not touched.  Returns how many messages were dropped;
        their ``on_failed`` callbacks fire.
        """
        queue = self._tx_queues.get(dst, [])
        dropped = 0
        for message_id in queue[1:]:
            tx = self._tx.pop(message_id, None)
            if tx is None:
                continue
            dropped += 1
            self.messages_failed += 1
            if tx.on_failed is not None:
                tx.on_failed()
        del queue[1:]
        return dropped

    def _segment_bytes(self, tx: _TxMessage, index: int) -> int:
        if tx.segments == 1:
            return tx.size_bytes
        if index < tx.segments - 1:
            return MTU_BYTES
        return max(1, tx.size_bytes - MTU_BYTES * (tx.segments - 1))

    def _push(self, tx: _TxMessage) -> None:
        """Fill the window under the message's span (see ``_push_now``)."""
        span = tx.span
        if span is None or span.span_id is None:
            self._push_now(tx)
            return
        saved = self.sim._span_ctx
        self.sim._span_ctx = span.span_id
        try:
            self._push_now(tx)
        finally:
            self.sim._span_ctx = saved

    def _push_now(self, tx: _TxMessage) -> None:
        """Fill the window with not-yet-in-flight segments, arm the timer.

        Only segments that are neither acked nor already in flight are
        (re)sent, so an arriving ACK opens exactly one window slot instead
        of blasting duplicates of everything outstanding.
        """
        if tx.message_id not in self._tx:
            return
        room = self.window - len(tx.inflight)
        if room > 0:
            for index in sorted(tx.unacked - tx.inflight)[:room]:
                tx.inflight.add(index)
                data = tx.obj if index == tx.segments - 1 else None
                segment = Segment(tx.message_id, index, tx.segments, data,
                                  tx.size_bytes)
                self.stack.send(tx.dst, segment,
                                self._segment_bytes(tx, index),
                                self.port, kind="data")
        if tx.timer is not None:
            tx.timer.cancel()
        tx.timer = self.sim.schedule(tx.timeout, self._timeout, tx,
                                     priority=Priority.PROTOCOL)

    def _timeout(self, tx: _TxMessage) -> None:
        if tx.message_id not in self._tx or not tx.unacked:
            return
        tx.retries += 1
        if tx.retries > self.max_retries:
            self._finish_tx(tx, success=False)
            return
        tx.timeout = min(tx.timeout * 2.0, 2.0)
        tx.inflight.clear()  # everything outstanding is presumed lost
        self.sim.trace("transport.rto", self.stack.address,
                       f"msg {tx.message_id} retry {tx.retries}")
        self._push(tx)

    def _finish_tx(self, tx: _TxMessage, success: bool) -> None:
        if tx.timer is not None:
            tx.timer.cancel()
            tx.timer = None
        self._tx.pop(tx.message_id, None)
        queue = self._tx_queues.get(tx.dst)
        if queue and queue[0] == tx.message_id:
            queue.pop(0)
            while queue:  # start the next message to this destination
                next_tx = self._tx.get(queue[0])
                if next_tx is not None:
                    self._push(next_tx)
                    break
                queue.pop(0)
        if tx.span is not None:
            self.sim.span_end(tx.span, "ok" if success else "failed")
        if success:
            self.messages_delivered += 1
            if tx.on_delivered is not None:
                tx.on_delivered()
        else:
            self.messages_failed += 1
            self.sim.trace("transport.fail", self.stack.address,
                           f"msg {tx.message_id} to {tx.dst} failed")
            if tx.on_failed is not None:
                tx.on_failed()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _receive(self, frame: Frame) -> None:
        payload = frame.payload
        if isinstance(payload, Ack):
            self._handle_ack(payload)
        elif isinstance(payload, Segment):
            self._handle_segment(frame.src, payload)
        # anything else on this port is a stray; ignore silently

    def _handle_ack(self, ack: Ack) -> None:
        tx = self._tx.get(ack.message_id)
        if tx is None:
            return
        tx.unacked.discard(ack.index)
        tx.inflight.discard(ack.index)
        if not tx.unacked:
            self._finish_tx(tx, success=True)
        else:
            self._push(tx)

    def _handle_segment(self, src: str, segment: Segment) -> None:
        # Always ack, even duplicates (the earlier ack may have been lost).
        self.stack.send(src, Ack(segment.message_id, segment.index),
                        self.ACK_BYTES, self.port, kind="ctrl")
        key = (src, segment.message_id)
        if key in self._delivered:
            return
        state = self._rx.get(key)
        if state is None:
            state = _RxMessage(segment.count)
            self._rx[key] = state
        if segment.index in state.received:
            return
        state.received.add(segment.index)
        if segment.index == segment.count - 1:
            state.data = segment.data
        if len(state.received) == state.count:
            del self._rx[key]
            self._delivered.add(key)
            self.messages_received += 1
            self.bytes_received += segment.total_bytes
            if self.on_message is not None:
                # The delivery span nests under whatever frame carried the
                # final segment (a mac.tx or wired delivery), closing the
                # causal chain send -> airtime -> deliver -> handler work.
                with self.sim.span("transport.deliver", self.stack.address,
                                   msg=segment.message_id, src=src,
                                   bytes=segment.total_bytes):
                    self.on_message(src, state.data, segment.total_bytes)

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Messages still awaiting full acknowledgement."""
        return len(self._tx)

    def close(self) -> None:
        """Unbind; in-flight messages are abandoned (callbacks not fired)."""
        if not self.closed:
            for tx in list(self._tx.values()):
                if tx.timer is not None:
                    tx.timer.cancel()
            self._tx.clear()
            self._unbind()
            self.closed = True
