"""Frames: the unit of transmission on links and the wireless medium.

A frame carries an arbitrary Python payload but declares its *wire size*
explicitly — like mpi4py's pickle-based convenience API, the payload rides
along for programmer comfort while the simulated airtime and loss behaviour
depend only on the declared byte count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..kernel.errors import ConfigurationError
from .addresses import validate_address

#: Link-layer framing overhead added to every frame (header + FCS), bytes.
HEADER_BYTES: int = 34

#: Conventional MTU for the payload portion, bytes.
MTU_BYTES: int = 1500

_frame_ids = itertools.count(1)


@dataclass
class Frame:
    """One link-layer frame.

    Attributes:
        src: sender address.
        dst: destination address (may be :data:`BROADCAST`).
        payload: arbitrary Python object delivered to the receiver.
        payload_bytes: declared payload size on the wire.
        kind: coarse type tag — ``"data"``, ``"mgmt"`` (discovery, leases)
            or ``"ctrl"`` (transport acks).
        port: demultiplexing key for the receiving stack.
        frame_id: unique id assigned at construction (monotone).
    """

    src: str
    dst: str
    payload: Any = None
    payload_bytes: int = 0
    kind: str = "data"
    port: int = 0
    frame_id: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        validate_address(self.src)
        validate_address(self.dst)
        if self.payload_bytes < 0:
            raise ConfigurationError(f"negative payload size {self.payload_bytes}")
        if self.payload_bytes > MTU_BYTES:
            raise ConfigurationError(
                f"payload {self.payload_bytes}B exceeds MTU {MTU_BYTES}B; "
                "segment at the transport layer")
        if self.kind not in ("data", "mgmt", "ctrl"):
            raise ConfigurationError(f"unknown frame kind {self.kind!r}")

    @property
    def wire_bytes(self) -> int:
        """Total size on the wire including link-layer overhead."""
        return self.payload_bytes + HEADER_BYTES

    def airtime(self, bits_per_second: float, preamble_s: float = 0.0) -> float:
        """Transmission duration at a given PHY rate."""
        if bits_per_second <= 0:
            raise ConfigurationError("rate must be positive")
        return preamble_s + (8.0 * self.wire_bytes) / bits_per_second

    def clone(self) -> "Frame":
        """A copy with a fresh frame id (used by retransmissions that must
        be distinguishable in traces)."""
        return Frame(self.src, self.dst, self.payload, self.payload_bytes,
                     self.kind, self.port)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Frame #{self.frame_id} {self.src}->{self.dst} "
                f"{self.kind}/{self.port} {self.payload_bytes}B>")
