"""Addressing for the simulated network substrate.

Addresses are short strings (node names) — the simulation equivalent of a
MAC/IP pair.  A :data:`BROADCAST` sentinel addresses every station on a
segment, which the discovery protocol's multicast announcements ride on.
"""

from __future__ import annotations

import re
from typing import Iterable

from ..kernel.errors import AddressError

#: Destination matching every station on the segment/channel.
BROADCAST: str = "*"

_ADDRESS_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._:\-]*$")


def validate_address(address: str) -> str:
    """Validate and return ``address``; raises :class:`AddressError`."""
    if address == BROADCAST:
        return address
    if not isinstance(address, str) or not _ADDRESS_RE.match(address):
        raise AddressError(f"malformed address {address!r}")
    return address


def is_broadcast(address: str) -> bool:
    return address == BROADCAST


class AddressAllocator:
    """Hands out unique addresses with a common prefix (``pda-1``, ``pda-2``...)."""

    def __init__(self) -> None:
        self._counters: dict = {}
        self._issued: set = set()

    def allocate(self, prefix: str) -> str:
        validate_address(prefix)
        count = self._counters.get(prefix, 0) + 1
        self._counters[prefix] = count
        address = f"{prefix}-{count}"
        self._issued.add(address)
        return address

    def reserve(self, address: str) -> str:
        """Claim a specific address; fails if already issued."""
        validate_address(address)
        if address in self._issued:
            raise AddressError(f"address {address!r} already issued")
        self._issued.add(address)
        return address

    def issued(self) -> Iterable[str]:
        return sorted(self._issued)
