"""Battery and energy accounting for portable devices.

The paper's vision ("systems on a chip will cost approximately $10 and
include a pico-cellular wireless transceiver") implies battery-operated
information appliances; energy is a physical-layer resource that the
environment and workload drain.  The model is a simple coulomb counter
with per-state power draws typical of a 1999 PCMCIA WLAN card.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator

#: Typical power draw in watts by radio state (1999-era 802.11b card).
DEFAULT_DRAW_W: Dict[str, float] = {
    "idle": 0.75,
    "rx": 0.9,
    "tx": 1.4,
    "sleep": 0.05,
}


class Battery:
    """An energy store drained by device activity.

    Args:
        sim: simulator (for timestamps in the trace).
        capacity_j: total energy in joules (a 1999 laptop pack ≈ 150 kJ;
            a PDA cell ≈ 5 kJ).
        name: used in traces.
    """

    def __init__(self, sim: Simulator, capacity_j: float, name: str = "battery") -> None:
        if capacity_j <= 0:
            raise ConfigurationError("battery capacity must be positive")
        self.sim = sim
        self.capacity_j = float(capacity_j)
        self.remaining_j = float(capacity_j)
        self.name = name
        self.drained_events = 0

    @property
    def fraction(self) -> float:
        """Remaining charge as a fraction of capacity."""
        return self.remaining_j / self.capacity_j

    @property
    def empty(self) -> bool:
        return self.remaining_j <= 0.0

    def draw(self, watts: float, seconds: float) -> float:
        """Drain ``watts`` for ``seconds``; returns the energy consumed.

        Draining past empty clamps at zero and emits a physical-layer issue
        the LPC analysis can pick up.
        """
        if watts < 0 or seconds < 0:
            raise ConfigurationError("draw arguments must be non-negative")
        energy = watts * seconds
        before = self.remaining_j
        self.remaining_j = max(0.0, self.remaining_j - energy)
        if before > 0.0 and self.remaining_j == 0.0:
            self.drained_events += 1
            self.sim.issue("power", self.name, "battery drained")
        return min(energy, before)


class EnergyMeter:
    """Accumulates radio energy use per state for one NIC."""

    def __init__(self, sim: Simulator, battery: Optional[Battery] = None,
                 draw_w: Optional[Dict[str, float]] = None) -> None:
        self.sim = sim
        self.battery = battery
        self.draw_w = dict(DEFAULT_DRAW_W)
        if draw_w:
            self.draw_w.update(draw_w)
        self.energy_j: Dict[str, float] = {state: 0.0 for state in self.draw_w}

    def account(self, state: str, seconds: float) -> None:
        """Record ``seconds`` spent in ``state``; drains the battery if any."""
        if state not in self.draw_w:
            raise ConfigurationError(f"unknown radio state {state!r}")
        energy = self.draw_w[state] * seconds
        self.energy_j[state] += energy
        if self.battery is not None:
            self.battery.draw(self.draw_w[state], seconds)

    @property
    def total_j(self) -> float:
        return float(sum(self.energy_j.values()))
