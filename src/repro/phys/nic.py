"""Wireless network interface: MAC + energy accounting + convenience API.

A :class:`WirelessNIC` is what a device plugs into its network stack: it
owns a :class:`repro.phys.mac.CsmaMac`, meters energy per airtime second,
and offers a payload-level ``send`` so upper layers never hand-build
frames.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..env.radio import RateMode
from ..kernel.scheduler import Simulator
from ..net.addresses import BROADCAST
from ..net.frames import Frame
from .mac import CsmaMac, WirelessMedium
from .power import Battery, EnergyMeter


class WirelessNIC:
    """One 2.4 GHz interface attached to a shared medium.

    Args:
        sim: simulator.
        medium: the deployment's shared medium.
        address: station address (must match the owning device's placement).
        channel: 2.4 GHz channel.
        battery: optional battery to drain; None means mains-powered.
        fixed_rate: pin the PHY rate (rate adaptation otherwise).
        tx_power_dbm / queue_limit / retry_limit: passed to the MAC.
    """

    def __init__(self, sim: Simulator, medium: WirelessMedium, address: str,
                 channel: int = 6, battery: Optional[Battery] = None,
                 fixed_rate: Optional[RateMode] = None,
                 tx_power_dbm: float = 15.0, queue_limit: int = 64,
                 retry_limit: int = 7) -> None:
        self.sim = sim
        self.medium = medium
        self.address = address
        self.mac = CsmaMac(sim, medium, address, channel=channel,
                           tx_power_dbm=tx_power_dbm, fixed_rate=fixed_rate,
                           queue_limit=queue_limit, retry_limit=retry_limit)
        self.energy = EnergyMeter(sim, battery)
        self.mac.on_receive = self._on_mac_receive
        self.on_receive: Optional[Callable[[Frame], None]] = None
        self._accounted_busy = 0.0
        self._reported_dead = False

    # ------------------------------------------------------------------
    @property
    def dead(self) -> bool:
        """True once the battery is drained: the radio is off the air.

        A dead radio neither transmits nor receives — the physical layer
        failing out from under every layer above it, exactly the coupling
        the LPC model exists to surface.
        """
        if self.energy.battery is None or not self.energy.battery.empty:
            return False
        if not self._reported_dead:
            self._reported_dead = True
            self.mac.receiving_disabled = True
            self.sim.issue("power", self.address,
                           "radio dead: battery drained mid-operation")
        return True

    @property
    def channel(self) -> int:
        return self.mac.channel

    def set_channel(self, channel: int) -> None:
        self.mac.set_channel(channel)

    def send(self, dst: str, payload=None, payload_bytes: int = 0,
             kind: str = "data", port: int = 0) -> bool:
        """Queue one frame to ``dst``; returns False on queue overflow."""
        frame = Frame(self.address, dst, payload, payload_bytes, kind, port)
        return self.send_frame(frame)

    def send_frame(self, frame: Frame) -> bool:
        if self.dead:
            return False
        accepted = self.mac.send(frame)
        self._account_energy()
        return accepted

    def broadcast(self, payload=None, payload_bytes: int = 0,
                  kind: str = "mgmt", port: int = 0) -> bool:
        """Broadcast one frame to every co-channel station in range."""
        return self.send(BROADCAST, payload, payload_bytes, kind, port)

    # ------------------------------------------------------------------
    def _on_mac_receive(self, frame: Frame) -> None:
        # Receive airtime energy: approximate with the frame airtime at the
        # base rate (the meter's purpose is comparative, not calorimetric).
        self.energy.account("rx", frame.airtime(1e6))
        if self.on_receive is not None:
            self.on_receive(frame)

    def _account_energy(self) -> None:
        busy = self.mac.stats["busy_time"]
        delta = busy - self._accounted_busy
        if delta > 0:
            self.energy.account("tx", delta)
            self._accounted_busy = busy

    # ------------------------------------------------------------------
    @property
    def stats(self):
        """The underlying MAC statistics dict."""
        self._account_energy()
        return self.mac.stats

    def goodput_frames(self) -> int:
        """Frames successfully delivered to their unicast destinations."""
        return int(self.mac.stats["tx_success"])

    def __repr__(self) -> str:  # pragma: no cover
        return f"<WirelessNIC {self.address} ch{self.channel}>"
