"""The shared wireless medium and a CSMA/CA-style MAC.

Together with :mod:`repro.env.radio` this is the executable version of the
paper's Aroma wireless substrate (a 1999-era 2.4 GHz 802.11-class LAN).
The model is an "802.11b-lite":

* **Medium** — tracks every in-flight transmission.  Interference is
  mutual: any two transmissions that overlap in time interfere, weighted
  by their spectral overlap (:func:`repro.env.spectrum.overlap_factor`).
  Delivery is decided at transmission end from the receiver's SINR through
  the rate's frame-error-rate curve.  Hidden terminals emerge naturally:
  carrier sense happens at the *sender*, SINR at the *receiver*.
* **CSMA/CA MAC** — DIFS + carrier sense + binary-exponential backoff with
  retry limit.  Unicast success is observed through a "genie ACK": the
  sender learns the receiver-side outcome after SIFS + ACK airtime without
  putting the ACK on the air (a standard simulator simplification that
  preserves timing and loss shape while halving event count).

Timing constants follow 802.11b long-preamble numbers.
"""

from __future__ import annotations

from collections import deque
from math import log10 as _math_log10
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..env.linkcache import LinkCache
from ..env.radio import (
    NOISE_FLOOR_DBM,
    RATES,
    PropagationModel,
    RateMode,
    interference_sum_mw,
    sinr_from_mw,
)
from ..env.spatialindex import SpatialGrid
from ..env.spectrum import overlap_factor, validate_channel
from ..env.world import World
from ..kernel.errors import ConfigurationError, NetworkError
from ..kernel.events import Priority
from ..kernel.scheduler import Simulator
from ..net.addresses import BROADCAST
from ..net.frames import HEADER_BYTES, Frame

#: 802.11b long-preamble PLCP duration (s).
PREAMBLE_S: float = 192e-6
#: Slot time (s).
SLOT_S: float = 20e-6
#: Short interframe space (s).
SIFS_S: float = 10e-6
#: DCF interframe space (s).
DIFS_S: float = 50e-6
#: ACK frame airtime at the 2 Mb/s control rate incl. preamble (s).
ACK_S: float = PREAMBLE_S + (14 * 8) / 2e6

#: Genie-ACK turnaround: the one delay every unicast frame schedules.
ACK_TURNAROUND_S: float = SIFS_S + ACK_S

#: Priorities as plain ints for the scheduler fast path.
_MEDIUM_PRI: int = int(Priority.MEDIUM)
_PROTOCOL_PRI: int = int(Priority.PROTOCOL)

#: Interferer count at which the SINR sum switches from a scalar loop to
#: one vectorised NumPy pass (array setup only pays off beyond a handful).
_VECTORISE_MIN: int = 8

#: Audibility allowance for per-frame Rayleigh fading, dB.  The fading
#: boost is ``10*log10(Exponential(1))``; the largest value a float64
#: uniform can produce is ~28.7 dB, so a 30 dB margin makes it *impossible*
#: for fading to rescue a station culled as inaudible.
FADE_MARGIN_DB: float = 30.0

# ----------------------------------------------------------------------
# Batched timer callbacks (module-level so `shared=True` batch classes
# registered by several media on one simulator compare equal).  These are
# the three hottest timers in the whole simulator — DIFS/backoff expiry,
# genie-ACK turnaround, and transmission end — and they run through the
# kernel's struct-of-arrays batch queues (see repro.kernel.batchq).
# ----------------------------------------------------------------------
def _fire_attempt(_owner: int, mac: "CsmaMac") -> None:
    mac._attempt()


def _fire_ack(_owner: int, pack: tuple) -> None:
    mac, frame, delivered = pack
    mac._ack_outcome(frame, delivered)


def _fire_finish(_owner: int, tx: "Transmission") -> None:
    tx.sender.medium._finish(tx)


def _compute_decode_floor_sinr_db() -> float:
    """Highest SINR (dB) at which decoding is *certain* to fail.

    Below this SINR the base-rate FER of the smallest possible frame
    (header only) is exactly 1.0 in float64, so ``rng.random() >= fer``
    can never succeed: skipping the decode attempt for such a station is
    outcome-identical to evaluating it.  The base 1 Mb/s mode is the
    binding case (largest processing gain); interference only lowers SINR
    further, so a noise-only bound is conservative for every receiver.
    """
    mode = RATES[0]
    sinr = 0.0
    while sinr > -40.0 and mode.fer(sinr, HEADER_BYTES) < 1.0:
        sinr -= 0.5
    return sinr


# Computed eagerly at import time: the old lazy ``global`` memo was a
# module-state write on the fork-reachable path (LPC301); the value is a
# pure function of the rate table, so there is nothing to defer.
_DECODE_FLOOR_SINR_DB: float = _compute_decode_floor_sinr_db()


def _decode_floor_sinr_db() -> float:
    return _DECODE_FLOOR_SINR_DB


class Transmission:
    """One in-flight frame on the medium."""

    __slots__ = ("sender", "frame", "channel", "rate", "power_dbm",
                 "start", "end", "interferers", "span")

    def __init__(self, sender: "CsmaMac", frame: Frame, channel: int,
                 rate: RateMode, power_dbm: float, start: float, end: float) -> None:
        self.sender = sender
        self.frame = frame
        self.channel = channel
        self.rate = rate
        self.power_dbm = power_dbm
        self.start = start
        self.end = end
        #: transmissions that overlapped this one in time at any point.
        self.interferers: List["Transmission"] = []
        #: causal span covering the airtime (None with tracing disabled).
        self.span = None


class WirelessMedium:
    """The shared 2.4 GHz medium for one deployment.

    With ``culling=True`` (the default) every per-frame scan — broadcast
    delivery, promiscuous overhearing, carrier sense — iterates only the
    sender's **audible set**: the stations whose cached link budget can
    put received power above the weakest relevant threshold (the lower of
    carrier-sense and base-rate decode sensitivity, credited with a
    conservative fast-fading margin when fading is on).  Audible sets are
    found through a :class:`~repro.env.spatialindex.SpatialGrid` radius
    query and cached per (sender, topology epoch, config epoch), so the
    cost of a transmission tracks physical neighbours, not population.
    ``culling=False`` keeps the exhaustive scan over every station — the
    reference mode the equivalence tests hold the grid path against
    (outcomes are byte-identical either way; see docs/performance.md).
    """

    def __init__(self, sim: Simulator, world: World,
                 propagation: Optional[PropagationModel] = None,
                 fast_fading: bool = False, culling: bool = True,
                 grid_cell_m: Optional[float] = None,
                 per_station_rng: bool = False,
                 interference_radius_m: Optional[float] = None) -> None:
        self.sim = sim
        self.world = world
        self.propagation = propagation or PropagationModel(
            rng=sim.rng("radio.shadowing"))
        #: topology-epoch-keyed cache of per-pair link attenuation; the
        #: single biggest win in stationary dense-medium sweeps.
        self.link_cache = LinkCache(world, self.propagation)
        #: per-frame Rayleigh fading on the wanted signal — models a busy
        #: multipath room where even a static link flutters.  Off by
        #: default (log-normal shadowing alone keeps links stable, which
        #: most experiments want).
        self.fast_fading = fast_fading
        #: spatial audibility culling (see class docstring).
        self.culling = culling
        self._grid = SpatialGrid(world, cell_size=grid_cell_m)
        self._macs: Dict[str, "CsmaMac"] = {}
        self._active: List[Transmission] = []
        self._rng = sim.rng("radio.delivery")
        self._fading_rng = sim.rng("radio.fading")
        #: draw delivery/fading randomness from per-receiver streams
        #: (``radio.delivery.<addr>``) instead of the two shared streams.
        #: Outcomes then depend only on each receiver's own frame history,
        #: so a world split across simulators (:mod:`repro.kernel.shard`)
        #: consumes randomness identically to the single-process oracle.
        self.per_station_rng = per_station_rng
        self._rng_by_rx: Dict[str, np.random.Generator] = {}
        self._fading_rng_by_rx: Dict[str, np.random.Generator] = {}
        #: hard interaction radius between *senders*: two transmissions
        #: only interfere (and carrier-sense each other) when their
        #: senders are within this distance.  ``None`` keeps the exact
        #: physics where every active transmission contributes.  Set it to
        #: at least twice the audible radius and the cut only removes
        #: terms provably below any receiver's noise resolution — the
        #: contract sharded configs rely on for oracle byte-identity.
        self.interference_radius_m = interference_radius_m
        #: bumped on attach / channel retune / promiscuous toggle; keys the
        #: station-list, per-channel-partition and audible-set caches.
        self._config_epoch = 0
        self._attach_order: Dict[str, int] = {}
        self._stations_cache: Optional[List[str]] = None
        self._partitions: Optional[Dict[int, List["CsmaMac"]]] = None
        self._promisc_cache: Optional[Tuple["CsmaMac", ...]] = None
        self._caches_key = (-1, -1)
        #: sender address -> (key, tx_power, audible macs, audible names).
        self._audible: Dict[str, tuple] = {}
        self._min_cs_dbm = float("inf")
        self._decode_floor_dbm = NOISE_FLOOR_DBM + _decode_floor_sinr_db()
        # Medium health lives in the per-simulator registry; ``unique=True``
        # because tests legitimately run several media on one simulator.
        metrics = sim.metrics
        self._m_transmissions = metrics.counter("medium.transmissions",
                                                unique=True)
        self._m_deliveries = metrics.counter("medium.deliveries", unique=True)
        self._m_decode_failures = metrics.counter("medium.decode_failures",
                                                  unique=True)
        # Culling health: how many stations the audible sets admit vs skip,
        # and how often a set is rebuilt vs served from cache.  Counted in
        # both modes (the exhaustive scan applies the same predicate), so
        # equivalence runs agree on these too.
        self._m_cull_audible = metrics.counter("medium.culling.audible",
                                               unique=True)
        self._m_cull_culled = metrics.counter("medium.culling.culled",
                                              unique=True)
        self._m_cull_builds = metrics.counter("medium.culling.set_builds",
                                              unique=True)
        self._m_cull_reuses = metrics.counter("medium.culling.set_reuses",
                                              unique=True)
        metrics.register_probe("medium", lambda: {
            "active_transmissions": len(self._active),
            "stations": len(self._macs),
            "channel_airtime": {str(ch): t for ch, t
                                in sorted(self.channel_airtime.items())},
            "culling": self.culling_stats(),
        })
        #: cumulative airtime per channel — what a passive scan observes.
        self.channel_airtime: Dict[int, float] = {}
        # Homogeneous timer classes on the kernel's batched path.  All
        # three are fire-and-forget (the legacy code used schedule_bound,
        # which returns no handle either), and shared so several media on
        # one simulator drain from the same struct-of-arrays queues.
        self._attempt_q = sim.batch_class(
            "mac.attempt", _fire_attempt, priority=_PROTOCOL_PRI,
            cancellable=False, shared=True)
        self._ack_q = sim.batch_class(
            "mac.ack", _fire_ack, priority=_PROTOCOL_PRI,
            cancellable=False, shared=True)
        self._finish_q = sim.batch_class(
            "medium.finish", _fire_finish, priority=_MEDIUM_PRI,
            cancellable=False, shared=True)
        # Pre-bound handler table: ``transmit`` is the hottest producer,
        # so the schedule entry point is resolved once here instead of a
        # two-attribute walk per frame.
        self._schedule_finish = self._finish_q.schedule

    # Back-compat attribute names; the counters are the source of truth.
    @property
    def total_transmissions(self) -> int:
        return int(self._m_transmissions.value)

    @property
    def total_deliveries(self) -> int:
        return int(self._m_deliveries.value)

    @property
    def total_decode_failures(self) -> int:
        return int(self._m_decode_failures.value)

    # ------------------------------------------------------------------
    def attach(self, mac: "CsmaMac") -> None:
        if mac.address in self._macs:
            raise ConfigurationError(f"MAC {mac.address!r} already attached")
        if mac.address not in self.world:
            raise ConfigurationError(
                f"{mac.address!r} has no placement in the world; place the "
                "device before attaching its NIC")
        self._attach_order[mac.address] = len(self._macs)
        self._macs[mac.address] = mac
        if mac.cs_threshold_dbm < self._min_cs_dbm:
            self._min_cs_dbm = mac.cs_threshold_dbm
        self.notify_config_change()

    def notify_config_change(self) -> None:
        """Invalidate station/partition/audible caches (attach, retune,
        promiscuous toggle).  Cheap: one integer bump; caches rebuild
        lazily on next use."""
        self._config_epoch += 1

    def stations(self) -> List[str]:
        """Sorted attached addresses (cached; invalidated by attach)."""
        if self._stations_cache is None or \
                self._caches_key[0] != self._config_epoch:
            self._refresh_station_caches()
        return list(self._stations_cache)

    def _refresh_station_caches(self) -> None:
        self._stations_cache = sorted(self._macs)
        partitions: Dict[int, List["CsmaMac"]] = {}
        promisc = []
        for mac in self._macs.values():  # attach order
            partitions.setdefault(mac._channel, []).append(mac)
            if mac._promiscuous:
                promisc.append(mac)
        self._partitions = partitions
        self._promisc_cache = tuple(promisc)
        self._caches_key = (self._config_epoch, 0)

    def stations_on_channel(self, channel: int) -> List[str]:
        """Attached addresses tuned to ``channel``, in attach order.

        Served from the per-channel partition cache so channel-filtered
        scans never touch the full station dict.
        """
        if self._partitions is None or \
                self._caches_key[0] != self._config_epoch:
            self._refresh_station_caches()
        return [mac.address for mac in self._partitions.get(channel, ())]

    def _promiscuous_macs(self) -> Tuple["CsmaMac", ...]:
        if self._promisc_cache is None or \
                self._caches_key[0] != self._config_epoch:
            self._refresh_station_caches()
        return self._promisc_cache

    # ------------------------------------------------------------------
    # Audibility culling
    # ------------------------------------------------------------------
    def audibility_floor_dbm(self) -> float:
        """The weakest received power that can still matter to anyone:
        the lower of the tightest carrier-sense threshold and the
        base-rate decode floor (below which FER is exactly 1.0)."""
        floor = self._decode_floor_dbm
        cs = self._min_cs_dbm
        return cs if cs < floor else floor

    def max_audible_radius_m(self, tx_power_dbm: float) -> float:
        """Conservative culling radius for a sender at ``tx_power_dbm``."""
        return self.propagation.max_audible_distance_m(
            tx_power_dbm, self.audibility_floor_dbm(),
            FADE_MARGIN_DB if self.fast_fading else 0.0)

    def _audible_entry(self, sender: "CsmaMac") -> tuple:
        """``(key, tx_power, audible_macs, audible_names)`` for ``sender``.

        Only used with culling on; cached per (topology epoch, config
        epoch, tx power).  The audible predicate — cached link budget
        above :meth:`audibility_floor_dbm` — is exactly the one the
        exhaustive mode applies inline per frame; the grid radius provably
        covers every station the predicate can pass (shadowing is clamped,
        the fading margin exceeds the maximum possible fade), so the two
        modes attempt the same decodes in the same order and outcomes are
        byte-identical.
        """
        key = (self.world.epoch, self._config_epoch)
        entry = self._audible.get(sender.address)
        tx_power = sender.tx_power_dbm
        if entry is not None and entry[0] == key and entry[1] == tx_power:
            self._m_cull_reuses.add()
            return entry
        margin = FADE_MARGIN_DB if self.fast_fading else 0.0
        floor = self.audibility_floor_dbm()
        radius = self.propagation.max_audible_distance_m(
            tx_power, floor, margin)
        macs = self._macs
        if radius < self.world.diagonal_m():
            order = self._attach_order
            names = [n for n in self._grid.neighbors_within(
                sender.address, radius) if n in macs]
            names.sort(key=order.__getitem__)
            candidates = [macs[n] for n in names]
        else:
            # The radius covers the whole world: culling is a no-op here
            # and the candidate set is everyone (see docs/performance.md).
            candidates = list(macs.values())
        cache = self.link_cache
        sender_address = sender.address
        audible = []
        for mac in candidates:
            if mac is sender:
                continue
            if (tx_power - cache.attenuation_db(sender_address, mac.address)
                    + margin >= floor):
                audible.append(mac)
        entry = (key, tx_power, tuple(audible),
                 frozenset(m.address for m in audible))
        self._audible[sender_address] = entry
        self._m_cull_builds.add()
        self._m_cull_audible.add(len(audible))
        self._m_cull_culled.add(len(macs) - 1 - len(audible))
        return entry

    def _audible_to(self, sender: "CsmaMac", rx: "CsmaMac") -> bool:
        """The audible predicate for one directed link (no set build)."""
        margin = FADE_MARGIN_DB if self.fast_fading else 0.0
        return (sender.tx_power_dbm
                - self.link_cache.attenuation_db(sender.address, rx.address)
                + margin >= self.audibility_floor_dbm())

    def culling_stats(self) -> Dict[str, float]:
        """Culling health for benchmarks, probes and experiment rows."""
        audible = self._m_cull_audible.value
        culled = self._m_cull_culled.value
        considered = audible + culled
        return {
            "enabled": self.culling,
            "audible": audible,
            "culled": culled,
            "cull_rate": culled / considered if considered else 0.0,
            "set_builds": self._m_cull_builds.value,
            "set_reuses": self._m_cull_reuses.value,
            "grid": self._grid.stats(),
        }

    # ------------------------------------------------------------------
    # Channel state as seen by one station
    # ------------------------------------------------------------------
    def _rx_power(self, tx: Transmission, rx_address: str) -> float:
        return self.link_cache.rx_power_dbm(
            tx.power_dbm, tx.sender.address, rx_address)

    def _delivery_rng(self, rx_address: str) -> np.random.Generator:
        """The delivery stream for one receiver (``per_station_rng`` mode)."""
        rng = self._rng_by_rx.get(rx_address)
        if rng is None:
            rng = self.sim.rng(f"radio.delivery.{rx_address}")
            self._rng_by_rx[rx_address] = rng
        return rng

    def _fading_rng_for(self, rx_address: str) -> np.random.Generator:
        rng = self._fading_rng_by_rx.get(rx_address)
        if rng is None:
            rng = self.sim.rng(f"radio.fading.{rx_address}")
            self._fading_rng_by_rx[rx_address] = rng
        return rng

    def busy_for(self, mac: "CsmaMac") -> bool:
        """Carrier sense at ``mac``: any audible overlapping transmission?"""
        cache = self.link_cache
        address = mac.address
        channel = mac._channel
        threshold = mac.cs_threshold_dbm
        culling = self.culling
        radius = self.interference_radius_m
        world = self.world
        for tx in self._active:
            if tx.sender is mac:
                return True  # half-duplex: own transmission occupies us
            factor = overlap_factor(channel, tx.channel)
            if factor <= 0.0:
                continue
            # The radius cut comes before the audible-set probe so it
            # never touches the culling caches: the probe's build/reuse
            # counters stay a pure function of in-radius traffic.
            if (radius is not None
                    and world.distance_between(tx.sender.address,
                                               address) > radius):
                continue
            # Inaudible stations can never carrier-sense the sender (their
            # best-case power is below every threshold), so one set probe
            # replaces the gain lookup and comparison.
            if culling and address not in self._audible_entry(tx.sender)[3]:
                continue
            power = cache.rx_power_dbm(tx.power_dbm, tx.sender.address,
                                       address)
            # Adjacent-channel energy is attenuated by the overlap factor.
            if power + 10.0 * _log10(factor) >= threshold:
                return True
        return False

    def expected_sinr_db(self, src: "CsmaMac", dst_address: str) -> float:
        """Interference-free SINR estimate src->dst (rate-adaptation input)."""
        if dst_address not in self._macs:
            raise NetworkError(f"no station {dst_address!r} on this medium")
        signal = self.link_cache.rx_power_dbm(
            src.tx_power_dbm, src.address, dst_address)
        return signal - NOISE_FLOOR_DBM

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def transmit(self, mac: "CsmaMac", frame: Frame, rate: RateMode) -> Transmission:
        now = self.sim.now
        duration = frame.airtime(rate.bits_per_second, PREAMBLE_S)
        tx = Transmission(mac, frame, mac.channel, rate, mac.tx_power_dbm,
                          now, now + duration)
        radius = self.interference_radius_m
        if radius is None:
            for other in self._active:
                other.interferers.append(tx)
                tx.interferers.append(other)
        else:
            world = self.world
            address = mac.address
            for other in self._active:
                if world.distance_between(address,
                                          other.sender.address) <= radius:
                    other.interferers.append(tx)
                    tx.interferers.append(other)
        self._active.append(tx)
        self._m_transmissions.add()
        self.channel_airtime[mac.channel] = \
            self.channel_airtime.get(mac.channel, 0.0) + duration
        if self.sim.tracer.enabled:
            # The airtime span: parented under whatever caused this frame
            # (e.g. a transport send) and ambient while the finish event is
            # scheduled, so delivery work nests beneath it.
            tx.span = self.sim.span_begin(
                "mac.tx", mac.address, frame=frame.frame_id, dst=frame.dst,
                channel=mac.channel, rate=rate.name)
        self._schedule_finish(duration, payload=tx)
        self.sim.trace("mac.tx", mac.address,
                       f"tx #{frame.frame_id} -> {frame.dst} @{rate.name}",
                       bytes=frame.wire_bytes, channel=mac.channel)
        return tx

    def _finish(self, tx: Transmission) -> None:
        self._active.remove(tx)
        frame = tx.frame
        sender = tx.sender
        channel = tx.channel
        delivered_to_dst: Optional[bool] = None
        if frame.dst == BROADCAST:
            if self.culling:
                # Grid-backed audible set, cached across frames: per-frame
                # cost is O(audible neighbours), not O(stations).
                for mac in self._audible_entry(sender)[2]:
                    if mac._channel == channel and self._decode(tx, mac):
                        mac._deliver(frame, tx.rate)
            else:
                # Exhaustive reference scan: every station, every frame,
                # gated by the same audibility predicate so outcomes (and
                # RNG consumption) match the culled path byte-for-byte.
                for mac in self._macs.values():
                    if (mac is not sender and mac._channel == channel
                            and self._audible_to(sender, mac)
                            and self._decode(tx, mac)):
                        mac._deliver(frame, tx.rate)
        else:
            dst = self._macs.get(frame.dst)
            if dst is None or dst._channel != channel:
                delivered_to_dst = False
            elif not self._audible_to(sender, dst):
                # Below the decode floor the FER is exactly 1.0: the
                # attempt can never succeed, so skip it outright.
                delivered_to_dst = False
            else:
                delivered_to_dst = self._decode(tx, dst)
                if delivered_to_dst:
                    dst._deliver(frame, tx.rate)
            # Promiscuous stations (bridges/access points) overhear
            # unicast frames destined elsewhere, so they can forward them
            # toward the wired network.  An off-segment destination (dst
            # is None) that a bridge picks up counts as delivered — the
            # bridge's genie-ACK, like a real AP acking on behalf of the
            # distribution system.  The cached promiscuous partition keeps
            # this loop off the full station dict.
            for mac in self._promiscuous_macs():
                if (mac is not sender
                        and mac is not dst
                        and mac._channel == channel
                        and mac.address != frame.dst
                        and self._audible_to(sender, mac)
                        and self._decode(tx, mac)):
                    mac._deliver(frame, tx.rate)
                    if dst is None:
                        delivered_to_dst = True
        tx.sender._tx_done(tx, delivered_to_dst)
        if tx.span is not None:
            # Ended after _tx_done so the ACK-turnaround event (and any
            # retry it triggers) is causally chained under this attempt.
            self.sim.span_end(
                tx.span, "failed" if delivered_to_dst is False else "ok")

    def _decode(self, tx: Transmission, rx: "CsmaMac") -> bool:
        """Did ``rx`` successfully decode ``tx``?  SINR through FER."""
        if rx.receiving_disabled:
            return False
        cache = self.link_cache
        rx_address = rx.address
        signal = cache.rx_power_dbm(tx.power_dbm, tx.sender.address,
                                    rx_address)
        if self.fast_fading:
            # Rayleigh envelope: exponentially-distributed power with unit
            # mean; deep fades (-10 dB and worse) hit ~10% of frames.
            fading_rng = (self._fading_rng_for(rx_address)
                          if self.per_station_rng else self._fading_rng)
            signal += 10.0 * _math_log10(
                max(fading_rng.exponential(1.0), 1e-6))
        interference_mw = 0.0
        if tx.interferers:
            rx_channel = rx.channel
            interferer_powers = []
            overlaps = []
            for other in tx.interferers:
                if other.sender is rx:
                    return False  # half-duplex: we were transmitting
                factor = overlap_factor(rx_channel, other.channel)
                if factor <= 0.0:
                    continue
                interferer_powers.append(cache.rx_power_dbm(
                    other.power_dbm, other.sender.address, rx_address))
                overlaps.append(factor)
            if len(interferer_powers) >= _VECTORISE_MIN:
                # One vectorised NumPy pass over all interferers.
                interference_mw = interference_sum_mw(
                    np.asarray(interferer_powers), np.asarray(overlaps))
            else:
                for power, factor in zip(interferer_powers, overlaps):
                    interference_mw += 10.0 ** (power / 10.0) * factor
        ratio = sinr_from_mw(10.0 ** (signal / 10.0), interference_mw)
        failure_probability = tx.rate.fer(ratio, tx.frame.wire_bytes)
        rng = (self._delivery_rng(rx_address) if self.per_station_rng
               else self._rng)
        ok = bool(rng.random() >= failure_probability)
        if ok:
            self._m_deliveries.add()
        else:
            self._m_decode_failures.add()
            self.sim.trace("mac.loss", rx.address,
                           f"decode failure #{tx.frame.frame_id} sinr={ratio:.1f}dB",
                           sinr_db=ratio, fer=failure_probability)
        return ok


def _log10(x: float) -> float:
    return _math_log10(x) if x > 0 else -20.0


class CsmaMac:
    """CSMA/CA MAC instance for one station.

    Args:
        sim: the simulator.
        medium: shared medium (the station is attached on construction).
        address: station address; must match a world placement name.
        channel: 2.4 GHz channel number.
        tx_power_dbm: transmit power (15 dBm ≈ a 1999 PCMCIA card).
        fixed_rate: pin the PHY rate; default is SINR-driven adaptation.
        queue_limit: outgoing queue capacity in frames.
        retry_limit: unicast retransmission budget.
    """

    CW_MIN = 32
    CW_MAX = 1024

    def __init__(self, sim: Simulator, medium: WirelessMedium, address: str,
                 channel: int = 6, tx_power_dbm: float = 15.0,
                 cs_threshold_dbm: float = -82.0,
                 fixed_rate: Optional[RateMode] = None,
                 queue_limit: int = 64, retry_limit: int = 7,
                 fer_target: float = 0.1) -> None:
        validate_channel(channel)
        if queue_limit < 1 or retry_limit < 0:
            raise ConfigurationError("bad queue_limit/retry_limit")
        self.sim = sim
        self.medium = medium
        # Pre-bound handler table for the per-frame timer producers:
        # ``_kick``/``_backoff``/``_tx_done`` fire once per frame attempt,
        # and the two-attribute walk to the shared batch queues was
        # measurable at storm rates.
        self._schedule_attempt = medium._attempt_q.schedule
        self._schedule_ack = medium._ack_q.schedule
        self.address = address
        self.channel = channel
        self.tx_power_dbm = float(tx_power_dbm)
        self.cs_threshold_dbm = float(cs_threshold_dbm)
        self.fixed_rate = fixed_rate
        self.queue_limit = queue_limit
        self.retry_limit = retry_limit
        self.fer_target = fer_target
        self.receiving_disabled = False
        # bridge/AP mode: overhear unicast frames destined elsewhere
        # (property: toggling invalidates the medium's promiscuous cache).
        self.promiscuous = False
        self.on_receive: Optional[Callable[[Frame], None]] = None

        self._queue: deque = deque()
        self._in_flight: Optional[Frame] = None
        self._retries = 0
        self._cw = self.CW_MIN
        self._rng = sim.rng(f"mac.{address}")
        self._attempt_pending = False

        # Statistics
        self.stats: Dict[str, float] = {
            "enqueued": 0, "queue_drops": 0, "tx_attempts": 0,
            "tx_success": 0, "tx_retry_drops": 0, "rx_frames": 0,
            "busy_time": 0.0, "backoffs": 0,
        }
        # Health signals in the shared registry: aggregate drop counters
        # (cold paths only) plus a live per-station probe over ``stats``.
        metrics = sim.metrics
        self._m_queue_drops = metrics.counter("mac.queue_drops")
        self._m_retry_drops = metrics.counter("mac.retry_drops")
        metrics.register_probe(f"mac.{address}", lambda: {
            **self.stats, "queue_depth": len(self._queue),
            "channel": self.channel,
        })
        medium.attach(self)

    # ------------------------------------------------------------------
    # Radio configuration (assignments invalidate medium caches)
    # ------------------------------------------------------------------
    @property
    def channel(self) -> int:
        """Current 2.4 GHz channel; assigning retunes the radio and
        invalidates the medium's per-channel partitions."""
        return self._channel

    @channel.setter
    def channel(self, channel: int) -> None:
        validate_channel(channel)
        if getattr(self, "_channel", None) == channel:
            return
        self._channel = channel
        medium = getattr(self, "medium", None)
        if medium is not None:
            medium.notify_config_change()

    @property
    def promiscuous(self) -> bool:
        """Bridge/AP mode: overhear unicast frames destined elsewhere."""
        return self._promiscuous

    @promiscuous.setter
    def promiscuous(self, value: bool) -> None:
        value = bool(value)
        if getattr(self, "_promiscuous", None) == value:
            return
        self._promiscuous = value
        medium = getattr(self, "medium", None)
        if medium is not None:
            medium.notify_config_change()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> bool:
        """Queue a frame; returns False (and counts a drop) when full."""
        if len(self._queue) >= self.queue_limit:
            self.stats["queue_drops"] += 1
            self._m_queue_drops.add()
            self.sim.trace("mac.qdrop", self.address,
                           f"queue full, dropping #{frame.frame_id}")
            return False
        self._queue.append(frame)
        self.stats["enqueued"] += 1
        self._kick()
        return True

    def queue_depth(self) -> int:
        return len(self._queue)

    def _kick(self) -> None:
        if self._in_flight is None and self._queue and not self._attempt_pending:
            self._attempt_pending = True
            self._schedule_attempt(DIFS_S, payload=self)

    def _attempt(self) -> None:
        self._attempt_pending = False
        if self._in_flight is not None or not self._queue:
            return
        if self.medium.busy_for(self):
            self._backoff()
            return
        frame = self._queue.popleft()
        self._in_flight = frame
        self.stats["tx_attempts"] += 1
        rate = self.select_rate(frame)
        tx = self.medium.transmit(self, frame, rate)
        self.stats["busy_time"] += tx.end - tx.start

    def _backoff(self) -> None:
        self.stats["backoffs"] += 1
        slots = int(self._rng.integers(0, self._cw))
        self._cw = min(self._cw * 2, self.CW_MAX)
        self._attempt_pending = True
        self._schedule_attempt(DIFS_S + slots * SLOT_S, payload=self)

    def select_rate(self, frame: Frame) -> RateMode:
        """PHY rate for this frame: pinned, or SINR-driven adaptation.

        Broadcasts always use the base rate, as real DCF does, so every
        station can decode discovery announcements.
        """
        from ..env.radio import RATES, best_rate

        if self.fixed_rate is not None:
            return self.fixed_rate
        if frame.dst == BROADCAST or frame.dst not in self.medium._macs:
            return RATES[0]
        estimate = self.medium.expected_sinr_db(self, frame.dst)
        return best_rate(estimate, frame.wire_bytes, self.fer_target)

    # ------------------------------------------------------------------
    # Outcome handling (genie-ACK)
    # ------------------------------------------------------------------
    def _tx_done(self, tx: Transmission, delivered: Optional[bool]) -> None:
        frame = tx.frame
        if delivered is None:  # broadcast: no ACK, no retry
            self._complete(success=True)
            return
        # Sender learns the outcome one SIFS + ACK airtime later.
        self.stats["busy_time"] += ACK_TURNAROUND_S
        self._schedule_ack(ACK_TURNAROUND_S,
                           payload=(self, frame, delivered))

    def _ack_outcome(self, frame: Frame, delivered: bool) -> None:
        if delivered:
            self._complete(success=True)
            return
        if self._retries < self.retry_limit:
            self._retries += 1
            self._queue.appendleft(frame)
            self._in_flight = None
            self._backoff()
            return
        self.stats["tx_retry_drops"] += 1
        self._m_retry_drops.add()
        self.sim.issue("radio", self.address,
                       f"frame to {frame.dst} dropped after "
                       f"{self.retry_limit} retries (collisions or poor link)",
                       dst=frame.dst)
        self._complete(success=False)

    def _complete(self, success: bool) -> None:
        if success and self._in_flight is not None:
            self.stats["tx_success"] += 1
        self._in_flight = None
        self._retries = 0
        self._cw = self.CW_MIN
        self._kick()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _deliver(self, frame: Frame, rate: RateMode) -> None:
        self.stats["rx_frames"] += 1
        self.sim.trace("mac.rx", self.address,
                       f"rx #{frame.frame_id} from {frame.src} @{rate.name}")
        if self.on_receive is not None:
            self.on_receive(frame)

    def set_channel(self, channel: int) -> None:
        """Retune the radio (takes effect for future transmissions)."""
        validate_channel(channel)
        self.channel = channel

    def scan_and_select(self, window_s: Optional[float] = None) -> int:
        """Self-configuration: survey per-channel load and retune to the
        least-congested channel.

        "Users are not system administrators, so networking features
        should be automatically available, self-configuring" — this is
        the radio half of that requirement.  The survey uses the medium's
        accumulated per-channel airtime (what a passive scan across the
        band observes); ``window_s`` is accepted for interface
        compatibility but the cumulative survey is already load-ordered.
        Returns the selected channel.
        """
        from ..env.spectrum import least_congested

        loads = dict(self.medium.channel_airtime)
        choice = least_congested(loads)
        if choice != self.channel:
            self.sim.trace("mac.retune", self.address,
                           f"self-configured from channel {self.channel} "
                           f"to {choice}")
            self.set_channel(choice)
        return choice
