"""The shared wireless medium and a CSMA/CA-style MAC.

Together with :mod:`repro.env.radio` this is the executable version of the
paper's Aroma wireless substrate (a 1999-era 2.4 GHz 802.11-class LAN).
The model is an "802.11b-lite":

* **Medium** — tracks every in-flight transmission.  Interference is
  mutual: any two transmissions that overlap in time interfere, weighted
  by their spectral overlap (:func:`repro.env.spectrum.overlap_factor`).
  Delivery is decided at transmission end from the receiver's SINR through
  the rate's frame-error-rate curve.  Hidden terminals emerge naturally:
  carrier sense happens at the *sender*, SINR at the *receiver*.
* **CSMA/CA MAC** — DIFS + carrier sense + binary-exponential backoff with
  retry limit.  Unicast success is observed through a "genie ACK": the
  sender learns the receiver-side outcome after SIFS + ACK airtime without
  putting the ACK on the air (a standard simulator simplification that
  preserves timing and loss shape while halving event count).

Timing constants follow 802.11b long-preamble numbers.
"""

from __future__ import annotations

from collections import deque
from math import log10 as _math_log10
from typing import Callable, Dict, List, Optional

import numpy as np

from ..env.linkcache import LinkCache
from ..env.radio import (
    NOISE_FLOOR_DBM,
    PropagationModel,
    RateMode,
    interference_sum_mw,
    sinr_from_mw,
)
from ..env.spectrum import overlap_factor, validate_channel
from ..env.world import World
from ..kernel.errors import ConfigurationError, NetworkError
from ..kernel.events import Priority
from ..kernel.scheduler import Simulator
from ..net.addresses import BROADCAST
from ..net.frames import Frame

#: 802.11b long-preamble PLCP duration (s).
PREAMBLE_S: float = 192e-6
#: Slot time (s).
SLOT_S: float = 20e-6
#: Short interframe space (s).
SIFS_S: float = 10e-6
#: DCF interframe space (s).
DIFS_S: float = 50e-6
#: ACK frame airtime at the 2 Mb/s control rate incl. preamble (s).
ACK_S: float = PREAMBLE_S + (14 * 8) / 2e6

#: Genie-ACK turnaround: the one delay every unicast frame schedules.
ACK_TURNAROUND_S: float = SIFS_S + ACK_S

#: Priorities as plain ints for the scheduler fast path.
_MEDIUM_PRI: int = int(Priority.MEDIUM)
_PROTOCOL_PRI: int = int(Priority.PROTOCOL)

#: Interferer count at which the SINR sum switches from a scalar loop to
#: one vectorised NumPy pass (array setup only pays off beyond a handful).
_VECTORISE_MIN: int = 8


class Transmission:
    """One in-flight frame on the medium."""

    __slots__ = ("sender", "frame", "channel", "rate", "power_dbm",
                 "start", "end", "interferers", "span")

    def __init__(self, sender: "CsmaMac", frame: Frame, channel: int,
                 rate: RateMode, power_dbm: float, start: float, end: float) -> None:
        self.sender = sender
        self.frame = frame
        self.channel = channel
        self.rate = rate
        self.power_dbm = power_dbm
        self.start = start
        self.end = end
        #: transmissions that overlapped this one in time at any point.
        self.interferers: List["Transmission"] = []
        #: causal span covering the airtime (None with tracing disabled).
        self.span = None


class WirelessMedium:
    """The shared 2.4 GHz medium for one deployment."""

    def __init__(self, sim: Simulator, world: World,
                 propagation: Optional[PropagationModel] = None,
                 fast_fading: bool = False) -> None:
        self.sim = sim
        self.world = world
        self.propagation = propagation or PropagationModel(
            rng=sim.rng("radio.shadowing"))
        #: topology-epoch-keyed cache of per-pair link attenuation; the
        #: single biggest win in stationary dense-medium sweeps.
        self.link_cache = LinkCache(world, self.propagation)
        #: per-frame Rayleigh fading on the wanted signal — models a busy
        #: multipath room where even a static link flutters.  Off by
        #: default (log-normal shadowing alone keeps links stable, which
        #: most experiments want).
        self.fast_fading = fast_fading
        self._macs: Dict[str, "CsmaMac"] = {}
        self._active: List[Transmission] = []
        self._rng = sim.rng("radio.delivery")
        self._fading_rng = sim.rng("radio.fading")
        # Medium health lives in the per-simulator registry; ``unique=True``
        # because tests legitimately run several media on one simulator.
        metrics = sim.metrics
        self._m_transmissions = metrics.counter("medium.transmissions",
                                                unique=True)
        self._m_deliveries = metrics.counter("medium.deliveries", unique=True)
        self._m_decode_failures = metrics.counter("medium.decode_failures",
                                                  unique=True)
        metrics.register_probe("medium", lambda: {
            "active_transmissions": len(self._active),
            "stations": len(self._macs),
            "channel_airtime": {str(ch): t for ch, t
                                in sorted(self.channel_airtime.items())},
        })
        #: cumulative airtime per channel — what a passive scan observes.
        self.channel_airtime: Dict[int, float] = {}

    # Back-compat attribute names; the counters are the source of truth.
    @property
    def total_transmissions(self) -> int:
        return int(self._m_transmissions.value)

    @property
    def total_deliveries(self) -> int:
        return int(self._m_deliveries.value)

    @property
    def total_decode_failures(self) -> int:
        return int(self._m_decode_failures.value)

    # ------------------------------------------------------------------
    def attach(self, mac: "CsmaMac") -> None:
        if mac.address in self._macs:
            raise ConfigurationError(f"MAC {mac.address!r} already attached")
        if mac.address not in self.world:
            raise ConfigurationError(
                f"{mac.address!r} has no placement in the world; place the "
                "device before attaching its NIC")
        self._macs[mac.address] = mac

    def stations(self) -> List[str]:
        return sorted(self._macs)

    # ------------------------------------------------------------------
    # Channel state as seen by one station
    # ------------------------------------------------------------------
    def _rx_power(self, tx: Transmission, rx_address: str) -> float:
        return self.link_cache.rx_power_dbm(
            tx.power_dbm, tx.sender.address, rx_address)

    def busy_for(self, mac: "CsmaMac") -> bool:
        """Carrier sense at ``mac``: any audible overlapping transmission?"""
        cache = self.link_cache
        address = mac.address
        channel = mac.channel
        threshold = mac.cs_threshold_dbm
        for tx in self._active:
            if tx.sender is mac:
                return True  # half-duplex: own transmission occupies us
            factor = overlap_factor(channel, tx.channel)
            if factor <= 0.0:
                continue
            power = cache.rx_power_dbm(tx.power_dbm, tx.sender.address,
                                       address)
            # Adjacent-channel energy is attenuated by the overlap factor.
            if power + 10.0 * _log10(factor) >= threshold:
                return True
        return False

    def expected_sinr_db(self, src: "CsmaMac", dst_address: str) -> float:
        """Interference-free SINR estimate src->dst (rate-adaptation input)."""
        if dst_address not in self._macs:
            raise NetworkError(f"no station {dst_address!r} on this medium")
        signal = self.link_cache.rx_power_dbm(
            src.tx_power_dbm, src.address, dst_address)
        return signal - NOISE_FLOOR_DBM

    # ------------------------------------------------------------------
    # Transmission lifecycle
    # ------------------------------------------------------------------
    def transmit(self, mac: "CsmaMac", frame: Frame, rate: RateMode) -> Transmission:
        now = self.sim.now
        duration = frame.airtime(rate.bits_per_second, PREAMBLE_S)
        tx = Transmission(mac, frame, mac.channel, rate, mac.tx_power_dbm,
                          now, now + duration)
        for other in self._active:
            other.interferers.append(tx)
            tx.interferers.append(other)
        self._active.append(tx)
        self._m_transmissions.add()
        self.channel_airtime[mac.channel] = \
            self.channel_airtime.get(mac.channel, 0.0) + duration
        if self.sim.tracer.enabled:
            # The airtime span: parented under whatever caused this frame
            # (e.g. a transport send) and ambient while the finish event is
            # scheduled, so delivery work nests beneath it.
            tx.span = self.sim.span_begin(
                "mac.tx", mac.address, frame=frame.frame_id, dst=frame.dst,
                channel=mac.channel, rate=rate.name)
        self.sim.schedule_bound(duration, self._finish, (tx,),
                                priority=_MEDIUM_PRI)
        self.sim.trace("mac.tx", mac.address,
                       f"tx #{frame.frame_id} -> {frame.dst} @{rate.name}",
                       bytes=frame.wire_bytes, channel=mac.channel)
        return tx

    def _finish(self, tx: Transmission) -> None:
        self._active.remove(tx)
        frame = tx.frame
        delivered_to_dst: Optional[bool] = None
        if frame.dst == BROADCAST:
            for address, mac in self._macs.items():
                if mac is tx.sender:
                    continue
                if mac.channel == tx.channel and self._decode(tx, mac):
                    mac._deliver(frame, tx.rate)
        else:
            dst = self._macs.get(frame.dst)
            if dst is None or dst.channel != tx.channel:
                delivered_to_dst = False
            else:
                delivered_to_dst = self._decode(tx, dst)
                if delivered_to_dst:
                    dst._deliver(frame, tx.rate)
            # Promiscuous stations (bridges/access points) overhear
            # unicast frames destined elsewhere, so they can forward them
            # toward the wired network.  An off-segment destination (dst
            # is None) that a bridge picks up counts as delivered — the
            # bridge's genie-ACK, like a real AP acking on behalf of the
            # distribution system.
            for mac in self._macs.values():
                if (mac.promiscuous and mac is not tx.sender
                        and mac is not dst
                        and mac.channel == tx.channel
                        and mac.address != frame.dst
                        and self._decode(tx, mac)):
                    mac._deliver(frame, tx.rate)
                    if dst is None:
                        delivered_to_dst = True
        tx.sender._tx_done(tx, delivered_to_dst)
        if tx.span is not None:
            # Ended after _tx_done so the ACK-turnaround event (and any
            # retry it triggers) is causally chained under this attempt.
            self.sim.span_end(
                tx.span, "failed" if delivered_to_dst is False else "ok")

    def _decode(self, tx: Transmission, rx: "CsmaMac") -> bool:
        """Did ``rx`` successfully decode ``tx``?  SINR through FER."""
        if rx.receiving_disabled:
            return False
        cache = self.link_cache
        rx_address = rx.address
        signal = cache.rx_power_dbm(tx.power_dbm, tx.sender.address,
                                    rx_address)
        if self.fast_fading:
            # Rayleigh envelope: exponentially-distributed power with unit
            # mean; deep fades (-10 dB and worse) hit ~10% of frames.
            signal += 10.0 * _math_log10(
                max(self._fading_rng.exponential(1.0), 1e-6))
        interference_mw = 0.0
        if tx.interferers:
            rx_channel = rx.channel
            interferer_powers = []
            overlaps = []
            for other in tx.interferers:
                if other.sender is rx:
                    return False  # half-duplex: we were transmitting
                factor = overlap_factor(rx_channel, other.channel)
                if factor <= 0.0:
                    continue
                interferer_powers.append(cache.rx_power_dbm(
                    other.power_dbm, other.sender.address, rx_address))
                overlaps.append(factor)
            if len(interferer_powers) >= _VECTORISE_MIN:
                # One vectorised NumPy pass over all interferers.
                interference_mw = interference_sum_mw(
                    np.asarray(interferer_powers), np.asarray(overlaps))
            else:
                for power, factor in zip(interferer_powers, overlaps):
                    interference_mw += 10.0 ** (power / 10.0) * factor
        ratio = sinr_from_mw(10.0 ** (signal / 10.0), interference_mw)
        failure_probability = tx.rate.fer(ratio, tx.frame.wire_bytes)
        ok = bool(self._rng.random() >= failure_probability)
        if ok:
            self._m_deliveries.add()
        else:
            self._m_decode_failures.add()
            self.sim.trace("mac.loss", rx.address,
                           f"decode failure #{tx.frame.frame_id} sinr={ratio:.1f}dB",
                           sinr_db=ratio, fer=failure_probability)
        return ok


def _log10(x: float) -> float:
    return _math_log10(x) if x > 0 else -20.0


class CsmaMac:
    """CSMA/CA MAC instance for one station.

    Args:
        sim: the simulator.
        medium: shared medium (the station is attached on construction).
        address: station address; must match a world placement name.
        channel: 2.4 GHz channel number.
        tx_power_dbm: transmit power (15 dBm ≈ a 1999 PCMCIA card).
        fixed_rate: pin the PHY rate; default is SINR-driven adaptation.
        queue_limit: outgoing queue capacity in frames.
        retry_limit: unicast retransmission budget.
    """

    CW_MIN = 32
    CW_MAX = 1024

    def __init__(self, sim: Simulator, medium: WirelessMedium, address: str,
                 channel: int = 6, tx_power_dbm: float = 15.0,
                 cs_threshold_dbm: float = -82.0,
                 fixed_rate: Optional[RateMode] = None,
                 queue_limit: int = 64, retry_limit: int = 7,
                 fer_target: float = 0.1) -> None:
        validate_channel(channel)
        if queue_limit < 1 or retry_limit < 0:
            raise ConfigurationError("bad queue_limit/retry_limit")
        self.sim = sim
        self.medium = medium
        self.address = address
        self.channel = channel
        self.tx_power_dbm = float(tx_power_dbm)
        self.cs_threshold_dbm = float(cs_threshold_dbm)
        self.fixed_rate = fixed_rate
        self.queue_limit = queue_limit
        self.retry_limit = retry_limit
        self.fer_target = fer_target
        self.receiving_disabled = False
        #: bridge/AP mode: overhear unicast frames destined elsewhere.
        self.promiscuous = False
        self.on_receive: Optional[Callable[[Frame], None]] = None

        self._queue: deque = deque()
        self._in_flight: Optional[Frame] = None
        self._retries = 0
        self._cw = self.CW_MIN
        self._rng = sim.rng(f"mac.{address}")
        self._attempt_pending = False

        # Statistics
        self.stats: Dict[str, float] = {
            "enqueued": 0, "queue_drops": 0, "tx_attempts": 0,
            "tx_success": 0, "tx_retry_drops": 0, "rx_frames": 0,
            "busy_time": 0.0, "backoffs": 0,
        }
        # Health signals in the shared registry: aggregate drop counters
        # (cold paths only) plus a live per-station probe over ``stats``.
        metrics = sim.metrics
        self._m_queue_drops = metrics.counter("mac.queue_drops")
        self._m_retry_drops = metrics.counter("mac.retry_drops")
        metrics.register_probe(f"mac.{address}", lambda: {
            **self.stats, "queue_depth": len(self._queue),
            "channel": self.channel,
        })
        medium.attach(self)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> bool:
        """Queue a frame; returns False (and counts a drop) when full."""
        if len(self._queue) >= self.queue_limit:
            self.stats["queue_drops"] += 1
            self._m_queue_drops.add()
            self.sim.trace("mac.qdrop", self.address,
                           f"queue full, dropping #{frame.frame_id}")
            return False
        self._queue.append(frame)
        self.stats["enqueued"] += 1
        self._kick()
        return True

    def queue_depth(self) -> int:
        return len(self._queue)

    def _kick(self) -> None:
        if self._in_flight is None and self._queue and not self._attempt_pending:
            self._attempt_pending = True
            self.sim.schedule_bound(DIFS_S, self._attempt,
                                    priority=_PROTOCOL_PRI)

    def _attempt(self) -> None:
        self._attempt_pending = False
        if self._in_flight is not None or not self._queue:
            return
        if self.medium.busy_for(self):
            self._backoff()
            return
        frame = self._queue.popleft()
        self._in_flight = frame
        self.stats["tx_attempts"] += 1
        rate = self.select_rate(frame)
        tx = self.medium.transmit(self, frame, rate)
        self.stats["busy_time"] += tx.end - tx.start

    def _backoff(self) -> None:
        self.stats["backoffs"] += 1
        slots = int(self._rng.integers(0, self._cw))
        self._cw = min(self._cw * 2, self.CW_MAX)
        self._attempt_pending = True
        self.sim.schedule_bound(DIFS_S + slots * SLOT_S, self._attempt,
                                priority=_PROTOCOL_PRI)

    def select_rate(self, frame: Frame) -> RateMode:
        """PHY rate for this frame: pinned, or SINR-driven adaptation.

        Broadcasts always use the base rate, as real DCF does, so every
        station can decode discovery announcements.
        """
        from ..env.radio import RATES, best_rate

        if self.fixed_rate is not None:
            return self.fixed_rate
        if frame.dst == BROADCAST or frame.dst not in self.medium._macs:
            return RATES[0]
        estimate = self.medium.expected_sinr_db(self, frame.dst)
        return best_rate(estimate, frame.wire_bytes, self.fer_target)

    # ------------------------------------------------------------------
    # Outcome handling (genie-ACK)
    # ------------------------------------------------------------------
    def _tx_done(self, tx: Transmission, delivered: Optional[bool]) -> None:
        frame = tx.frame
        if delivered is None:  # broadcast: no ACK, no retry
            self._complete(success=True)
            return
        # Sender learns the outcome one SIFS + ACK airtime later.
        self.stats["busy_time"] += ACK_TURNAROUND_S
        self.sim.schedule_bound(ACK_TURNAROUND_S, self._ack_outcome,
                                (frame, delivered), priority=_PROTOCOL_PRI)

    def _ack_outcome(self, frame: Frame, delivered: bool) -> None:
        if delivered:
            self._complete(success=True)
            return
        if self._retries < self.retry_limit:
            self._retries += 1
            self._queue.appendleft(frame)
            self._in_flight = None
            self._backoff()
            return
        self.stats["tx_retry_drops"] += 1
        self._m_retry_drops.add()
        self.sim.issue("radio", self.address,
                       f"frame to {frame.dst} dropped after "
                       f"{self.retry_limit} retries (collisions or poor link)",
                       dst=frame.dst)
        self._complete(success=False)

    def _complete(self, success: bool) -> None:
        if success and self._in_flight is not None:
            self.stats["tx_success"] += 1
        self._in_flight = None
        self._retries = 0
        self._cw = self.CW_MIN
        self._kick()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _deliver(self, frame: Frame, rate: RateMode) -> None:
        self.stats["rx_frames"] += 1
        self.sim.trace("mac.rx", self.address,
                       f"rx #{frame.frame_id} from {frame.src} @{rate.name}")
        if self.on_receive is not None:
            self.on_receive(frame)

    def set_channel(self, channel: int) -> None:
        """Retune the radio (takes effect for future transmissions)."""
        validate_channel(channel)
        self.channel = channel

    def scan_and_select(self, window_s: Optional[float] = None) -> int:
        """Self-configuration: survey per-channel load and retune to the
        least-congested channel.

        "Users are not system administrators, so networking features
        should be automatically available, self-configuring" — this is
        the radio half of that requirement.  The survey uses the medium's
        accumulated per-channel airtime (what a passive scan across the
        band observes); ``window_s`` is accepted for interface
        compatibility but the cumulative survey is already load-ordered.
        Returns the selected channel.
        """
        from ..env.spectrum import least_congested

        loads = dict(self.medium.channel_airtime)
        choice = least_congested(loads)
        if choice != self.channel:
            self.sim.trace("mac.retune", self.address,
                           f"self-configured from channel {self.channel} "
                           f"to {choice}")
            self.set_channel(choice)
        return choice
