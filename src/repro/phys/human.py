"""The physical user: "the user's body and the signals it is capable of
sending and receiving".

The paper insists the physical layer contains the user's physiology, not
just hardware: speech and biometrics are *signals from the body* that
control flow depends on.  This module models those signals plus the body
characteristics ergonomics checks against, and a speech recogniser whose
accuracy degrades with acoustic SNR (experiment E8).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator


def _unit(value: float, name: str) -> float:
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


@dataclass
class PhysicalProfile:
    """Slow-changing physical characteristics of one user.

    Per the paper's temporal-specificity ordering these change the slowest
    of all user-column attributes.
    """

    name: str
    #: conversational speech level at 1 m, dB SPL.
    speech_level_db: float = 62.0
    #: articulation quality, 1.0 = studio announcer.
    speech_clarity: float = 0.95
    #: visual acuity, 1.0 = 20/20; scales minimum readable glyph size.
    vision_acuity: float = 1.0
    #: fine-motor control, scales minimum comfortable control size.
    dexterity: float = 1.0
    #: quietest audible level, dB SPL (≈ 25 for normal hearing).
    hearing_threshold_db: float = 25.0
    #: arm reach in metres.
    reach_m: float = 0.7
    #: sustained carrying comfort, kg.
    carry_limit_kg: float = 2.5

    def __post_init__(self) -> None:
        _unit(self.speech_clarity, "speech_clarity")
        _unit(self.vision_acuity, "vision_acuity")
        _unit(self.dexterity, "dexterity")
        if self.reach_m <= 0 or self.carry_limit_kg <= 0:
            raise ConfigurationError("reach and carry limit must be positive")

    def biometric_signature(self) -> str:
        """A stable identifier derived from the body (voice-print analog)."""
        digest = hashlib.sha256(
            f"{self.name}|{self.speech_level_db:.2f}|{self.speech_clarity:.3f}".encode()
        )
        return digest.hexdigest()[:16]


@dataclass
class SpeechSignal:
    """An utterance as a physical signal."""

    speaker: str
    words: Sequence[str]
    level_db: float
    clarity: float


class PhysicalUser:
    """A user's body placed in the world."""

    def __init__(self, sim: Simulator, profile: PhysicalProfile) -> None:
        self.sim = sim
        self.profile = profile
        self.name = profile.name

    def speak(self, words: Sequence[str]) -> SpeechSignal:
        if not words:
            raise ConfigurationError("an utterance needs at least one word")
        return SpeechSignal(self.name, tuple(words),
                            self.profile.speech_level_db,
                            self.profile.speech_clarity)

    def can_hear(self, level_db: float) -> bool:
        """Is a sound at ``level_db`` (at the ear) audible to this user?"""
        return level_db >= self.profile.hearing_threshold_db


class SpeechRecognizer:
    """A speech recogniser whose word accuracy is a psychometric function
    of acoustic SNR.

    ``accuracy(snr) = clarity · σ((snr − snr50) / slope)`` — a logistic
    rising from ~0 in heavy noise to the speaker's articulation ceiling.
    ``snr50`` defaults to 12 dB, a typical machine-ASR midpoint.
    """

    def __init__(self, sim: Simulator, snr50_db: float = 12.0,
                 slope_db: float = 3.0, name: str = "asr") -> None:
        if slope_db <= 0:
            raise ConfigurationError("slope must be positive")
        self.sim = sim
        self.snr50_db = float(snr50_db)
        self.slope_db = float(slope_db)
        self.name = name
        self._rng = sim.rng(f"asr.{name}")
        self.words_heard = 0
        self.words_correct = 0

    def word_accuracy(self, snr_db: float, clarity: float = 1.0) -> float:
        """Expected per-word recognition probability."""
        sigma = 1.0 / (1.0 + np.exp(-(snr_db - self.snr50_db) / self.slope_db))
        return float(np.clip(clarity * sigma, 0.0, 1.0))

    def recognize(self, signal: SpeechSignal, snr_db: float) -> List[Optional[str]]:
        """Transcribe an utterance; misrecognised words come back as None."""
        accuracy = self.word_accuracy(snr_db, signal.clarity)
        out: List[Optional[str]] = []
        for word in signal.words:
            self.words_heard += 1
            if self._rng.random() < accuracy:
                self.words_correct += 1
                out.append(word)
            else:
                out.append(None)
        return out

    @property
    def measured_wer(self) -> float:
        """Word error rate over everything heard so far."""
        if self.words_heard == 0:
            return 0.0
        return 1.0 - self.words_correct / self.words_heard
