"""Physical compatibility between devices and users.

"A PDA that does not properly consider human physical characteristics in
its design is doomed to failure even though it may have a brilliant
software architecture."  The paper makes *physical compatibility* the
defining relation of the physical layer (Figure 2: entities "must be
compatible with" one another).  This module checks a device's form factor
against a user's :class:`~repro.phys.human.PhysicalProfile` and returns a
structured report that feeds the LPC physical-layer constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..kernel.errors import ConfigurationError
from .human import PhysicalProfile


@dataclass
class FormFactor:
    """Physical interaction characteristics of a device."""

    name: str
    #: smallest interactive control (button/key) dimension, mm.
    control_size_mm: float = 10.0
    #: smallest text glyph height, mm.
    glyph_size_mm: float = 3.0
    #: device weight, kg (matters for handhelds the user must carry).
    weight_kg: float = 0.3
    #: does using it require standing within reach of the device?
    requires_proximity: bool = False
    #: distance from which the user must operate it, metres.
    operating_distance_m: float = 0.5
    #: audio feedback level at the operating distance, dB SPL (0 = silent).
    feedback_level_db: float = 0.0
    #: is the device carried (True) or a fixture (False)?
    portable: bool = True

    def __post_init__(self) -> None:
        if self.control_size_mm <= 0 or self.glyph_size_mm <= 0:
            raise ConfigurationError("control/glyph sizes must be positive")
        if self.weight_kg < 0 or self.operating_distance_m < 0:
            raise ConfigurationError("weight and distance must be non-negative")


#: Minimum comfortable control size for perfect dexterity, mm.
BASE_CONTROL_MM: float = 7.0
#: Minimum readable glyph height for 20/20 vision at 0.5 m, mm.
BASE_GLYPH_MM: float = 2.0


@dataclass
class Mismatch:
    """One physical incompatibility between a device and a user."""

    aspect: str          #: "controls", "display", "weight", "proximity", "audio"
    description: str
    #: severity in (0, 1]; 1 means the device is unusable for this user.
    severity: float

    def __post_init__(self) -> None:
        if not (0.0 < self.severity <= 1.0):
            raise ConfigurationError("severity must be in (0, 1]")


@dataclass
class CompatibilityReport:
    """Outcome of checking one device against one user."""

    device: str
    user: str
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def compatible(self) -> bool:
        """No blocking mismatch (severity ≥ 0.8)."""
        return all(m.severity < 0.8 for m in self.mismatches)

    @property
    def score(self) -> float:
        """1.0 = perfect fit; multiplicative penalty per mismatch."""
        score = 1.0
        for m in self.mismatches:
            score *= 1.0 - m.severity
        return score


def check_compatibility(form: FormFactor, profile: PhysicalProfile) -> CompatibilityReport:
    """Check every physical aspect of ``form`` against ``profile``."""
    report = CompatibilityReport(form.name, profile.name)

    # Controls vs dexterity: required size grows as dexterity falls.
    needed_control = BASE_CONTROL_MM / max(profile.dexterity, 0.05)
    if form.control_size_mm < needed_control:
        deficit = 1.0 - form.control_size_mm / needed_control
        report.mismatches.append(Mismatch(
            "controls",
            f"controls {form.control_size_mm:.1f}mm < needed "
            f"{needed_control:.1f}mm for dexterity {profile.dexterity:.2f}",
            min(1.0, 0.4 + deficit)))

    # Display vs vision, scaled by operating distance relative to 0.5 m.
    distance_factor = max(form.operating_distance_m, 0.1) / 0.5
    needed_glyph = BASE_GLYPH_MM * distance_factor / max(profile.vision_acuity, 0.05)
    if form.glyph_size_mm < needed_glyph:
        deficit = 1.0 - form.glyph_size_mm / needed_glyph
        report.mismatches.append(Mismatch(
            "display",
            f"glyphs {form.glyph_size_mm:.1f}mm < needed {needed_glyph:.1f}mm "
            f"at {form.operating_distance_m:.1f}m for acuity "
            f"{profile.vision_acuity:.2f}",
            min(1.0, 0.3 + deficit)))

    # Weight vs carrying comfort (portables only).
    if form.portable and form.weight_kg > profile.carry_limit_kg:
        excess = form.weight_kg / profile.carry_limit_kg - 1.0
        report.mismatches.append(Mismatch(
            "weight",
            f"{form.weight_kg:.2f}kg exceeds comfortable "
            f"{profile.carry_limit_kg:.2f}kg",
            min(1.0, 0.3 + 0.5 * excess)))

    # Proximity: a fixture demanding arm's-length operation constrains the
    # user's movement — the paper's laptop-tether complaint.
    if form.requires_proximity and form.operating_distance_m > profile.reach_m:
        report.mismatches.append(Mismatch(
            "proximity",
            f"operation needs reach {form.operating_distance_m:.2f}m > "
            f"user reach {profile.reach_m:.2f}m",
            0.9))

    # Audio feedback vs hearing.
    if form.feedback_level_db > 0 and not form.feedback_level_db >= profile.hearing_threshold_db:
        report.mismatches.append(Mismatch(
            "audio",
            f"feedback at {form.feedback_level_db:.0f}dB below hearing "
            f"threshold {profile.hearing_threshold_db:.0f}dB",
            0.5))

    return report


def tether_constraint(form: FormFactor) -> Optional[str]:
    """The paper's physical-layer finding about the Smart Projector: using
    a laptop to control the projector "directly constrains the presenter by
    requiring physical proximity to the laptop".  Returns a description of
    the tether a form factor imposes, or None for an untethered design."""
    if form.requires_proximity:
        return (f"user must stay within {form.operating_distance_m:.1f} m of "
                f"{form.name} to operate it")
    return None
