"""The physical layer: hardware *and* the physical user.

The paper's second structural claim: "for pervasive computing, the
physical user must also be included" in the physical layer.  So this
package holds radios, MACs, batteries and appliances next to human bodies,
speech signals and ergonomic compatibility — with the layer's defining
relation (entities "must be compatible with" one another) in
:mod:`repro.phys.ergonomics`.
"""

from .devices import (
    AromaAdapter,
    Device,
    DigitalProjector,
    Laptop,
    PDA,
    laptop_form,
    pda_form,
    projector_form,
)
from .ergonomics import (
    BASE_CONTROL_MM,
    BASE_GLYPH_MM,
    CompatibilityReport,
    FormFactor,
    Mismatch,
    check_compatibility,
    tether_constraint,
)
from .human import (
    PhysicalProfile,
    PhysicalUser,
    SpeechRecognizer,
    SpeechSignal,
)
from .mac import (
    ACK_S,
    DIFS_S,
    PREAMBLE_S,
    SIFS_S,
    SLOT_S,
    CsmaMac,
    Transmission,
    WirelessMedium,
)
from .nic import WirelessNIC
from .power import DEFAULT_DRAW_W, Battery, EnergyMeter

__all__ = [
    "ACK_S",
    "AromaAdapter",
    "BASE_CONTROL_MM",
    "BASE_GLYPH_MM",
    "Battery",
    "CompatibilityReport",
    "CsmaMac",
    "DEFAULT_DRAW_W",
    "DIFS_S",
    "Device",
    "DigitalProjector",
    "EnergyMeter",
    "FormFactor",
    "Laptop",
    "Mismatch",
    "PDA",
    "PREAMBLE_S",
    "PhysicalProfile",
    "PhysicalUser",
    "SIFS_S",
    "SLOT_S",
    "SpeechRecognizer",
    "SpeechSignal",
    "Transmission",
    "WirelessMedium",
    "WirelessNIC",
    "check_compatibility",
    "laptop_form",
    "pda_form",
    "projector_form",
    "tether_constraint",
]
