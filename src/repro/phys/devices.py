"""Physical devices: the hardware entities of the Aroma scenario.

"There are four major physical and logical entities in our example: a
user ...; the laptop ...; the smart projector consisting of the projector,
the Aroma Adapter and related software; and the Jini Lookup Service."
This module builds the hardware half: :class:`Laptop`, :class:`AromaAdapter`
(the embedded PC that makes a dumb appliance pervasive),
:class:`DigitalProjector` (the dumb appliance itself — no radio, fed over a
video cable), and :class:`PDA`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..env.radio import RateMode
from ..env.world import World
from ..kernel.errors import ConfigurationError
from ..kernel.scheduler import Simulator
from ..net.multicast import MulticastService
from ..net.stack import NetworkStack
from ..net.transport import ReliableEndpoint
from ..resource.platform import (
    PlatformProfile,
    adapter_platform,
    laptop_platform,
    pda_platform,
)
from .ergonomics import FormFactor
from .mac import WirelessMedium
from .nic import WirelessNIC
from .power import Battery


class Device:
    """Base class: a placed, optionally networked piece of hardware.

    Args:
        sim: simulator.
        world: shared geometry; the device is placed under ``name``.
        name: unique name, also the station address when networked.
        position: initial ``(x, y)`` in metres.
        medium: attach a wireless NIC on this medium when given.
        channel: 2.4 GHz channel for the NIC.
        platform: resource-layer descriptor (subclasses pick presets).
        form: physical form factor for ergonomic checks.
        battery: optional battery; mains power otherwise.
        fixed_rate: pin the PHY rate.
    """

    def __init__(self, sim: Simulator, world: World, name: str,
                 position: Sequence[float], *,
                 medium: Optional[WirelessMedium] = None,
                 channel: int = 6,
                 platform: Optional[PlatformProfile] = None,
                 form: Optional[FormFactor] = None,
                 battery: Optional[Battery] = None,
                 fixed_rate: Optional[RateMode] = None,
                 tx_power_dbm: float = 15.0) -> None:
        self.sim = sim
        self.world = world
        self.name = name
        self.placement = world.place(name, position)
        self.platform = platform
        self.form = form or FormFactor(name=name)
        self.battery = battery
        self.nic: Optional[WirelessNIC] = None
        self.stack: Optional[NetworkStack] = None
        self.multicast: Optional[MulticastService] = None
        if medium is not None:
            self.nic = WirelessNIC(sim, medium, name, channel=channel,
                                   battery=battery, fixed_rate=fixed_rate,
                                   tx_power_dbm=tx_power_dbm)
            self.stack = NetworkStack(sim, self.nic)
            self.multicast = MulticastService(sim, self.stack)

    @property
    def networked(self) -> bool:
        return self.stack is not None

    def reliable(self, port: int,
                 on_message: Optional[Callable[[str, Any, int], None]] = None,
                 **kwargs) -> ReliableEndpoint:
        """Open a reliable message endpoint on ``port``."""
        if self.stack is None:
            raise ConfigurationError(f"{self.name!r} has no network stack")
        return ReliableEndpoint(self.sim, self.stack, port, on_message, **kwargs)

    @property
    def position(self):
        return self.placement.position

    def __repr__(self) -> str:  # pragma: no cover
        net = f" ch{self.nic.channel}" if self.nic else " (offline)"
        return f"<{type(self).__name__} {self.name}{net}>"


# ---------------------------------------------------------------------------
# Form-factor presets (1999/2000 hardware)
# ---------------------------------------------------------------------------

def laptop_form(name: str = "laptop") -> FormFactor:
    """A presentation laptop: fine controls, good screen, but *tethering* —
    operating it requires standing at it, the paper's physical-layer
    complaint about controlling the projector from the laptop."""
    return FormFactor(name=name, control_size_mm=17.0, glyph_size_mm=3.0,
                      weight_kg=3.2, requires_proximity=True,
                      operating_distance_m=0.5, portable=True)


def pda_form(name: str = "pda") -> FormFactor:
    return FormFactor(name=name, control_size_mm=6.0, glyph_size_mm=1.8,
                      weight_kg=0.25, requires_proximity=True,
                      operating_distance_m=0.4, portable=True)


def projector_form(name: str = "projector") -> FormFactor:
    """The projector as a fixture; its on-body buttons are small and the
    user operates them from wherever the projector is mounted."""
    return FormFactor(name=name, control_size_mm=8.0, glyph_size_mm=2.5,
                      weight_kg=8.0, requires_proximity=True,
                      operating_distance_m=0.5, portable=False)


# ---------------------------------------------------------------------------
# Concrete devices
# ---------------------------------------------------------------------------

class Laptop(Device):
    """The presenter's laptop: wireless, GUI platform, battery powered."""

    def __init__(self, sim: Simulator, world: World, name: str,
                 position: Sequence[float], medium: WirelessMedium,
                 channel: int = 6, **kwargs) -> None:
        battery = kwargs.pop("battery", Battery(sim, 150_000.0, f"{name}.battery"))
        super().__init__(sim, world, name, position, medium=medium,
                         channel=channel,
                         platform=kwargs.pop("platform", laptop_platform(name)),
                         form=kwargs.pop("form", laptop_form(name)),
                         battery=battery, **kwargs)


class PDA(Device):
    """A personal digital assistant — small, constrained, battery powered."""

    def __init__(self, sim: Simulator, world: World, name: str,
                 position: Sequence[float], medium: WirelessMedium,
                 channel: int = 6, **kwargs) -> None:
        battery = kwargs.pop("battery", Battery(sim, 5_000.0, f"{name}.battery"))
        super().__init__(sim, world, name, position, medium=medium,
                         channel=channel,
                         platform=kwargs.pop("platform", pda_platform(name)),
                         form=kwargs.pop("form", pda_form(name)),
                         battery=battery, **kwargs)


class DigitalProjector:
    """The commercially available digital projector — a *dumb* appliance.

    It has no radio: it displays whatever arrives on its video input and
    obeys front-panel commands.  The :class:`AromaAdapter` is what makes it
    pervasive.
    """

    def __init__(self, sim: Simulator, world: World, name: str,
                 position: Sequence[float],
                 resolution: tuple = (1024, 768)) -> None:
        if resolution[0] <= 0 or resolution[1] <= 0:
            raise ConfigurationError("bad resolution")
        self.sim = sim
        self.name = name
        self.placement = world.place(name, position)
        self.form = projector_form(name)
        self.resolution = tuple(resolution)
        self.lamp_on = False
        self.brightness = 0.8
        self.input_source: Optional[str] = None
        self.frames_displayed = 0
        self.pixels_displayed = 0
        self.display_times: List[float] = []

    def power(self, on: bool) -> None:
        self.lamp_on = bool(on)
        self.sim.trace("projector.power", self.name, f"lamp {'on' if on else 'off'}")

    def select_input(self, source: str) -> None:
        self.input_source = source

    def set_brightness(self, level: float) -> float:
        """Set lamp brightness, clamped to [0.1, 1.0]; returns the level."""
        self.brightness = float(min(1.0, max(0.1, level)))
        return self.brightness

    def display(self, source: str, pixels: int) -> bool:
        """Show an update arriving on the video input.

        Returns False (nothing shown) if the lamp is off or the wrong
        input is selected — the failure modes a user's mental model must
        track.
        """
        if not self.lamp_on or self.input_source != source:
            self.sim.trace("projector.blackout", self.name,
                           f"update from {source} not displayable "
                           f"(lamp={self.lamp_on}, input={self.input_source})")
            return False
        self.frames_displayed += 1
        self.pixels_displayed += pixels
        self.display_times.append(self.sim.now)
        return True

    def displayed_fps(self, window_s: float = 5.0) -> float:
        """Frames per second over the trailing ``window_s``."""
        cutoff = self.sim.now - window_s
        recent = [t for t in self.display_times if t >= cutoff]
        elapsed = min(window_s, self.sim.now) or 1.0
        return len(recent) / elapsed


class AromaAdapter(Device):
    """The Aroma Adapter: "an embedded PC capable of running pervasive
    computing software", bridging the wireless world to a dumb appliance
    over a video cable."""

    VIDEO_SOURCE = "video-in"

    def __init__(self, sim: Simulator, world: World, name: str,
                 position: Sequence[float], medium: WirelessMedium,
                 channel: int = 6, **kwargs) -> None:
        super().__init__(sim, world, name, position, medium=medium,
                         channel=channel,
                         platform=kwargs.pop("platform", adapter_platform(name)),
                         form=kwargs.pop("form", FormFactor(
                             name=name, control_size_mm=10.0, glyph_size_mm=3.0,
                             weight_kg=1.5, portable=False)),
                         **kwargs)
        self.projector: Optional[DigitalProjector] = None

    def connect_projector(self, projector: DigitalProjector) -> None:
        """Plug the video cable in and select our input on the appliance."""
        self.projector = projector
        projector.select_input(self.VIDEO_SOURCE)

    def drive_display(self, pixels: int) -> bool:
        """Push decoded framebuffer content out the video port."""
        if self.projector is None:
            self.sim.issue("physical", self.name,
                           "no projector connected to the adapter")
            return False
        return self.projector.display(self.VIDEO_SOURCE, pixels)
