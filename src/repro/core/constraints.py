"""The four cross-column constraint relations, as checkable objects.

Each LPC layer's defining relation (Figures 2-5) is implemented by
delegating to the concrete engine built in the corresponding substrate
package — the conceptual model *is* the library's integration layer:

======================  =====================================  =============
Layer                   relation                               engine
======================  =====================================  =============
Environment             entities must cope with environment    radio SINR / acoustics
Physical                must be compatible with                :func:`repro.phys.ergonomics.check_compatibility`
Resource                must not be frustrated by              :func:`repro.resource.matching.match`
Abstract                must be consistent with                :meth:`repro.user.mental.MentalModel.consistency`
Intentional             must be in harmony with                :func:`repro.user.goals.harmony`
======================  =====================================  =============
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..env.noise import AcousticField
from ..env.radio import NOISE_FLOOR_DBM, PropagationModel, best_rate
from ..kernel.errors import ConstraintViolation
from ..phys.ergonomics import FormFactor, check_compatibility
from ..phys.human import PhysicalProfile
from ..resource.faculties import FacultyProfile
from ..resource.matching import match
from ..resource.platform import PlatformProfile
from ..user.goals import DesignPurpose, Goal, harmony
from ..user.mental import MentalModel
from .layers import Layer, RELATIONS


@dataclass
class ConstraintResult:
    """Outcome of one constraint check."""

    layer: Layer
    relation: str
    subject: str            #: what was checked against what
    satisfied: bool
    score: float            #: in [0, 1]
    details: List[str] = field(default_factory=list)

    def require(self) -> "ConstraintResult":
        """Raise :class:`ConstraintViolation` when unsatisfied."""
        if not self.satisfied:
            raise ConstraintViolation(
                f"{self.layer.title}: {self.subject}: " + "; ".join(self.details))
        return self


def _result(layer: Layer, subject: str, satisfied: bool, score: float,
            details: List[str]) -> ConstraintResult:
    return ConstraintResult(layer, RELATIONS[layer], subject, satisfied,
                            max(0.0, min(1.0, score)), details)


# ---------------------------------------------------------------------------
# Environment layer
# ---------------------------------------------------------------------------

def check_radio_environment(propagation: PropagationModel, distance_m: float,
                            tx_power_dbm: float = 15.0,
                            required_rate_bps: float = 1e6,
                            subject: str = "link") -> ConstraintResult:
    """Can a link cope with its RF environment at this distance?"""
    sinr = (propagation.received_power_dbm(tx_power_dbm, distance_m)
            - NOISE_FLOOR_DBM)
    mode = best_rate(sinr)
    ok = mode.bits_per_second >= required_rate_bps and mode.fer(sinr, 1500) <= 0.1
    details = [f"SINR {sinr:.1f} dB at {distance_m:.1f} m supports {mode.name}"]
    if not ok:
        details.append(f"required {required_rate_bps / 1e6:.1f} Mb/s not sustainable")
    score = min(1.0, mode.bits_per_second / max(required_rate_bps, 1.0))
    return _result(Layer.ENVIRONMENT, subject, ok, score, details)


def check_acoustic_environment(field_: AcousticField, entity: str,
                               profile: PhysicalProfile,
                               needs_voice: bool = False,
                               min_snr_db: float = 15.0) -> ConstraintResult:
    """Can a (voice) interface cope with the acoustic environment here?"""
    ambient = field_.level_at(entity)
    details = [f"ambient {ambient:.1f} dB SPL at {entity}"]
    if not needs_voice:
        return _result(Layer.ENVIRONMENT, entity, True, 1.0, details)
    snr = field_.speech_snr_db(profile.speech_level_db, entity)
    social = field_.socially_appropriate(entity, profile.speech_level_db)
    ok = snr >= min_snr_db and social
    details.append(f"speech SNR {snr:.1f} dB (need {min_snr_db:.0f})")
    if not social:
        details.append("speaking here would be socially inappropriate")
    score = max(0.0, min(1.0, snr / max(min_snr_db, 1.0))) * (1.0 if social else 0.5)
    return _result(Layer.ENVIRONMENT, entity, ok, score, details)


# ---------------------------------------------------------------------------
# Physical layer
# ---------------------------------------------------------------------------

def check_physical_compatibility(form: FormFactor,
                                 profile: PhysicalProfile) -> ConstraintResult:
    report = check_compatibility(form, profile)
    details = [m.description for m in report.mismatches]
    subject = f"{form.name} vs {profile.name}"
    return _result(Layer.PHYSICAL, subject, report.compatible, report.score,
                   details or ["physically compatible"])


# ---------------------------------------------------------------------------
# Resource layer
# ---------------------------------------------------------------------------

def check_resource_match(platform: PlatformProfile,
                         faculties: FacultyProfile) -> ConstraintResult:
    report = match(platform, faculties)
    details = [f.description for f in report.frustrations]
    subject = f"{platform.name} vs {faculties.name}"
    return _result(Layer.RESOURCE, subject, report.usable, report.score,
                   details or ["no frustrations"])


# ---------------------------------------------------------------------------
# Abstract layer
# ---------------------------------------------------------------------------

def check_abstract_consistency(mental: MentalModel,
                               application_state: Dict[str, Any],
                               threshold: float = 0.8) -> ConstraintResult:
    score = mental.consistency(application_state)
    wrong = [key for key, value in application_state.items()
             if mental.belief(key, _ABSENT) != value]
    details = ([f"misbeliefs: {wrong}"] if wrong else ["model matches reality"])
    details.append(f"{len(mental.surprises)} surprises so far")
    subject = f"{mental.owner} vs application"
    return _result(Layer.ABSTRACT, subject, score >= threshold, score, details)


_ABSENT = object()


# ---------------------------------------------------------------------------
# Intentional layer
# ---------------------------------------------------------------------------

def check_intentional_harmony(purpose: DesignPurpose, goal: Goal,
                              user: Optional[FacultyProfile] = None) -> ConstraintResult:
    report = harmony(purpose, goal, user)
    subject = f"{purpose.name} vs {goal.name}"
    return _result(Layer.INTENTIONAL, subject, report.in_harmony,
                   report.score, report.notes or ["in harmony"])


#: convenient access by layer for generic callers (the LPCModel).
CHECKERS = {
    Layer.ENVIRONMENT: check_radio_environment,
    Layer.PHYSICAL: check_physical_compatibility,
    Layer.RESOURCE: check_resource_match,
    Layer.ABSTRACT: check_abstract_consistency,
    Layer.INTENTIONAL: check_intentional_harmony,
}
