"""Concerns and their classification into LPC layers.

The model's stated use: "properly classifying issues raised during
discussion" and providing context.  A :class:`Concern` is one such issue;
:class:`ConcernClassifier` assigns it a layer from (a) the topic tag the
emitting component chose, and (b) keyword heuristics over the free text —
so both live simulation issues (``sim.issue(...)``) and prose items from a
design review land in the right place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..kernel.errors import ModelError
from ..kernel.trace import TraceRecord
from .layers import Column, Layer

#: topic tag (the ``sim.issue`` first argument) -> layer.
TOPIC_LAYERS: Dict[str, Layer] = {
    # environment
    "radio": Layer.ENVIRONMENT,
    "interference": Layer.ENVIRONMENT,
    "noise": Layer.ENVIRONMENT,
    "environment": Layer.ENVIRONMENT,
    "social": Layer.ENVIRONMENT,
    # physical
    "physical": Layer.PHYSICAL,
    "power": Layer.PHYSICAL,
    "ergonomics": Layer.PHYSICAL,
    "bandwidth": Layer.PHYSICAL,
    "fault": Layer.PHYSICAL,
    # resource
    "resource": Layer.RESOURCE,
    "execution": Layer.RESOURCE,
    "storage": Layer.RESOURCE,
    "faculty": Layer.RESOURCE,
    "language": Layer.RESOURCE,
    "admin": Layer.RESOURCE,
    "infrastructure": Layer.RESOURCE,
    # abstract
    "session": Layer.ABSTRACT,
    "discovery": Layer.ABSTRACT,
    "vnc": Layer.ABSTRACT,
    "mental": Layer.ABSTRACT,
    "application": Layer.ABSTRACT,
    # intentional
    "intentional": Layer.INTENTIONAL,
    "purpose": Layer.INTENTIONAL,
    "goal": Layer.INTENTIONAL,
}

#: keyword -> layer, applied to free text when the topic is unknown.
KEYWORD_LAYERS: Tuple[Tuple[str, Layer], ...] = (
    ("interferen", Layer.ENVIRONMENT),
    ("2.4", Layer.ENVIRONMENT),
    ("noise", Layer.ENVIRONMENT),
    ("weather", Layer.ENVIRONMENT),
    ("socially", Layer.ENVIRONMENT),
    ("battery", Layer.PHYSICAL),
    ("hardware", Layer.PHYSICAL),
    ("proximity", Layer.PHYSICAL),
    ("bandwidth", Layer.PHYSICAL),
    ("ergonomic", Layer.PHYSICAL),
    ("biometric", Layer.PHYSICAL),
    ("languag", Layer.RESOURCE),
    ("skill", Layer.RESOURCE),
    ("administrat", Layer.RESOURCE),
    ("operating system", Layer.RESOURCE),
    ("lookup service present", Layer.RESOURCE),
    ("storage", Layer.RESOURCE),
    ("memory", Layer.RESOURCE),
    ("session", Layer.ABSTRACT),
    ("mental model", Layer.ABSTRACT),
    ("client", Layer.ABSTRACT),
    ("relinquish", Layer.ABSTRACT),
    ("hijack", Layer.ABSTRACT),
    ("icon", Layer.ABSTRACT),
    ("goal", Layer.INTENTIONAL),
    ("purpose", Layer.INTENTIONAL),
    ("abandon", Layer.INTENTIONAL),
    ("harmony", Layer.INTENTIONAL),
)


@dataclass
class Concern:
    """One classified issue."""

    description: str
    layer: Layer
    column: Column = Column.DEVICE
    source: str = "observed"   #: "observed" (simulation) or "stated" (review)
    topic: str = ""
    entity: str = ""
    time: Optional[float] = None
    count: int = 1             #: duplicate observations folded together


class ConcernClassifier:
    """Maps issues (live or prose) to LPC layers."""

    def __init__(self,
                 extra_topics: Optional[Dict[str, Layer]] = None,
                 default: Optional[Layer] = None) -> None:
        self.topic_layers = dict(TOPIC_LAYERS)
        if extra_topics:
            self.topic_layers.update(extra_topics)
        self.default = default
        self.unclassified: List[str] = []

    # ------------------------------------------------------------------
    def classify_topic(self, topic: str) -> Optional[Layer]:
        return self.topic_layers.get(topic)

    def classify_text(self, text: str) -> Optional[Layer]:
        lowered = text.lower()
        for keyword, layer in KEYWORD_LAYERS:
            if keyword in lowered:
                return layer
        return None

    def classify(self, topic: str, text: str) -> Layer:
        """Topic tag wins; fall back to keywords, then the default."""
        layer = self.classify_topic(topic)
        if layer is None:
            layer = self.classify_text(text)
        if layer is None:
            if self.default is None:
                self.unclassified.append(f"{topic}: {text}")
                raise ModelError(
                    f"cannot classify issue topic={topic!r} text={text!r}")
            layer = self.default
        return layer

    # ------------------------------------------------------------------
    def from_trace(self, record: TraceRecord,
                   user_sources: Iterable[str] = ()) -> Concern:
        """Build a concern from an ``issue.*`` trace record."""
        if not record.category.startswith("issue"):
            raise ModelError(f"not an issue record: {record.category}")
        topic = record.category.split(".", 1)[1] if "." in record.category else ""
        layer = self.classify(topic, record.message)
        column = (Column.USER if record.source in set(user_sources)
                  else Column.DEVICE)
        return Concern(record.message, layer, column, "observed", topic,
                       record.source, record.time)
