"""Design-review checklists generated from an LPC model.

The paper offers the model as "a framework for discussion about the
success or failure of a particular pervasive technology".  This module
operationalises that: given an :class:`~repro.core.model.LPCModel`
populated with entities, it emits a structured checklist — one section per
layer, one question per cross-column entity pair plus the layer's generic
questions — that a design review can walk through and tick off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .layers import Layer, RELATIONS
from .model import LPCModel

#: Generic review questions per layer, distilled from the paper's text.
GENERIC_QUESTIONS: Dict[Layer, List[str]] = {
    Layer.ENVIRONMENT: [
        "What range, interference and scaling constraints does the radio "
        "environment impose?",
        "Does the acoustic/social environment permit the planned "
        "interaction modality?",
        "What happens when the device moves to a very different "
        "environment?",
    ],
    Layer.PHYSICAL: [
        "Are all physical entities (devices AND users) mutually "
        "compatible?",
        "Does any interaction tether the user to a particular location?",
        "Which body signals (speech, biometrics) does control flow depend "
        "on?",
    ],
    Layer.RESOURCE: [
        "What logical resources does the application assume present "
        "(runtime, lookup service, network)?",
        "Which user faculties are assumed (language, GUI literacy, "
        "administration skill), and for which population are those "
        "assumptions valid?",
        "Can the user abort any running task?  Can they organise their "
        "own data?",
    ],
    Layer.ABSTRACT: [
        "How many concepts must the user hold to operate the system, and "
        "is that within the intended population's capacity?",
        "How does the user learn the application state changed behind "
        "their back (sessions expiring, services vanishing)?",
        "What happens when multiple users act in conflicting orders, or "
        "forget the closing steps?",
    ],
    Layer.INTENTIONAL: [
        "Whose goals is this design in harmony with — and who else will "
        "try to use it?",
        "Which stated requirements serve the builders rather than the "
        "users?",
    ],
}


@dataclass
class ChecklistItem:
    """One review question."""

    layer: Layer
    question: str
    #: entities the question is about (empty for generic questions).
    entities: List[str] = field(default_factory=list)
    checked: bool = False
    finding: str = ""

    def resolve(self, finding: str = "") -> None:
        self.checked = True
        self.finding = finding


@dataclass
class Checklist:
    """A layered review checklist."""

    system: str
    items: List[ChecklistItem]

    def section(self, layer: Layer) -> List[ChecklistItem]:
        return [item for item in self.items if item.layer == layer]

    @property
    def progress(self) -> float:
        if not self.items:
            return 1.0
        return sum(item.checked for item in self.items) / len(self.items)

    def open_items(self) -> List[ChecklistItem]:
        return [item for item in self.items if not item.checked]

    def findings(self) -> List[ChecklistItem]:
        return [item for item in self.items if item.checked and item.finding]

    def render(self) -> str:
        lines = [f"Design-review checklist for {self.system!r}",
                 "=" * (29 + len(self.system))]
        for layer in sorted(Layer, reverse=True):
            section = self.section(layer)
            if not section:
                continue
            lines.append("")
            lines.append(f"[{layer.title}] — {RELATIONS[layer]}")
            for item in section:
                mark = "x" if item.checked else " "
                lines.append(f"  [{mark}] {item.question}")
                if item.finding:
                    lines.append(f"        finding: {item.finding}")
        lines.append("")
        lines.append(f"progress: {self.progress:.0%} "
                     f"({len(self.findings())} findings)")
        return "\n".join(lines)


def build_checklist(model: LPCModel) -> Checklist:
    """Generate the checklist for a populated model.

    Pairwise questions are generated for every (user-entity, device-entity)
    pair that share a layer, phrased with the layer's defining relation;
    generic questions follow.
    """
    items: List[ChecklistItem] = []
    entities = model.entities()
    users = [e for e in entities if e.kind == "user"]
    others = [e for e in entities if e.kind != "user"]
    for layer in Layer:
        if layer != Layer.ENVIRONMENT:
            for user in users:
                if user.facet_at(layer) is None:
                    continue
                for other in others:
                    if other.facet_at(layer) is None:
                        continue
                    items.append(ChecklistItem(
                        layer,
                        f"does {user.name}'s "
                        f"{user.facet_at(layer).description} hold against "
                        f"{other.name}'s {other.facet_at(layer).description} "
                        f"({RELATIONS[layer]})?",
                        entities=[user.name, other.name]))
        for question in GENERIC_QUESTIONS[layer]:
            items.append(ChecklistItem(layer, question))
    return Checklist(model.name, items)
